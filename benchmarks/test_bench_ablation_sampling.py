"""Ablation bench: sampling rate vs detection vs battery lifetime.

The paper samples at 10 Hz.  Halving the rate roughly doubles node
lifetime -- but a 1.5 s pour only spans ~3 samples at 2 Hz, so the
3-of-n rule can barely ever see it.  This bench charts the trade-off
that justifies the paper's operating point.
"""

import numpy as np

from repro.core.config import SensingConfig
from repro.evalx.tables import format_table
from repro.sensors.battery import PowerProfile, estimate_lifetime_days
from repro.sensors.detector import KofNDetector
from repro.sensors.signals import SignalProfile, SignalSource

RATES = (2.0, 5.0, 10.0, 20.0)
#: The paper's hardest step: a 1.5 s pour with sparse pressure bursts.
POUR = SignalProfile(burst_probability=0.30)
HANDLING = 1.5


def _detection_rate(hz, trials=500, seed=0):
    rng = np.random.default_rng(seed)
    source = SignalSource(POUR, rng)
    config = SensingConfig(sampling_hz=hz)
    hits = 0
    for _ in range(trials):
        detector = KofNDetector(
            threshold=config.usage_threshold,
            k=config.threshold_count,
            n=config.window_size,
        )
        source.begin_use(0.0, HANDLING)
        trace = source.read_trace(0.0, int(HANDLING * hz) + 2 * int(hz), hz)
        source.end_use()
        if detector.observe_trace(trace) > 0:
            hits += 1
    return hits / trials


def _study():
    profile = PowerProfile()
    return [
        (hz, _detection_rate(hz), estimate_lifetime_days(profile, hz))
        for hz in RATES
    ]


def test_ablation_sampling_rate(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)
    print("\n" + format_table(
        ["Sampling rate", "Short-step detection", "Node lifetime"],
        [(f"{hz:.0f} Hz", f"{detection:.1%}", f"{days:.0f} days")
         for hz, detection, days in rows],
        title="Ablation: sampling rate (pour-profile handling, 1.5 s)",
    ))
    by_rate = {hz: (detection, days) for hz, detection, days in rows}
    # Lifetime decreases monotonically with the rate.
    lifetimes = [by_rate[hz][1] for hz in RATES]
    assert lifetimes == sorted(lifetimes, reverse=True)
    # Detection increases monotonically with the rate.
    detections = [by_rate[hz][0] for hz in RATES]
    assert detections == sorted(detections)
    # The paper's 10 Hz detects the short step most of the time; 2 Hz
    # essentially cannot.
    assert by_rate[10.0][0] >= 0.6
    assert by_rate[2.0][0] <= 0.2
    # And 10 Hz still leaves a practical battery life (> 100 days).
    assert by_rate[10.0][1] > 100
