"""Ablation bench: Dyna-Q (the "fast learning" future-work item).

Finding (documented in EXPERIMENTS.md): with the default optimistic
initialization, iterations-to-converge are bound by the ε-greedy
exploration schedule, so model-based replay cannot shorten the curve
-- the fast-learning demand of the paper's future work is already met
by the optimistic-initialization design.  The bench asserts Dyna-Q is
a safe drop-in (100% convergence, same band), and the unit tests
(tests/test_rl_dyna.py) show the regime where planning *does*
accelerate value propagation.
"""

from repro.evalx.ablations import dyna_sweep


def test_ablation_dyna(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        dyna_sweep,
        args=(adl,),
        kwargs={"planning_steps": (0, 5, 20), "seeds": tuple(range(8))},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    rows = [
        line
        for line in table.splitlines()
        if line.startswith("TD(") or line.startswith("Dyna-Q")
    ]
    assert len(rows) == 4
    for row in rows:
        cells = [cell.strip() for cell in row.split("|")]
        assert cells[2] == "100%"
        assert float(cells[1]) <= 120
