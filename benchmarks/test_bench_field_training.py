"""Bench: field training — observed episodes vs deployment readiness.

How many *watched* (unaided, through the real sensing pipeline)
episodes does `CoReDA.train_from_history` need before the system can
guide?  Two things must come out of the watching phase: the inferred
routine must be the user's actual routine, and the trained policy
must predict every next step.  The sweep shows both are reliable from
a handful of observed episodes, because segmentation + HMM repair
absorb the sensing misses of Table 3.
"""

from repro.adls.tea_making import POT, TEACUP
from repro.core.adl import Routine
from repro.core.config import CoReDAConfig
from repro.core.system import CoReDA
from repro.evalx.tables import format_table
from repro.planning.state import episode_states

OBSERVED_COUNTS = (5, 10, 20)
SEEDS = (0, 1, 2)
PERSONAL = [1, 3, 2, 4]
RELIABLE = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}


def _trial(definition, observed, seed):
    system = CoReDA.build(definition, CoReDAConfig(seed=300 + seed))
    routine = Routine(definition.adl, PERSONAL)
    for index in range(observed):
        resident = system.create_resident(
            routine=routine,
            handling_overrides=RELIABLE,
            name=f"watch-{index}",
        )
        system.observe_episode(resident)
        system.sim.run_until(system.sim.now + 120.0)
    result = system.train_from_history(require_converged=False)
    routine_ok = list(result.routine.step_ids) == PERSONAL
    states = episode_states(PERSONAL)
    predictions_ok = all(
        system.predictor.predict(states[i]).tool_id == states[i + 1].current
        for i in range(len(states) - 1)
    )
    return routine_ok, predictions_ok


def _study(definition):
    rows = []
    for observed in OBSERVED_COUNTS:
        routine_hits = 0
        prediction_hits = 0
        for seed in SEEDS:
            routine_ok, predictions_ok = _trial(definition, observed, seed)
            routine_hits += int(routine_ok)
            prediction_hits += int(predictions_ok)
        rows.append((observed, routine_hits, prediction_hits, len(SEEDS)))
    return rows


def test_field_training(benchmark, registry):
    definition = registry.get("tea-making")
    rows = benchmark.pedantic(
        _study, args=(definition,), rounds=1, iterations=1
    )
    print("\n" + format_table(
        ["Observed episodes", "Routine inferred", "Policy correct"],
        [(observed, f"{routine}/{total}", f"{policy}/{total}")
         for observed, routine, policy, total in rows],
        title="Field training: watched episodes vs readiness (tea-making, "
              "personal routine 1-3-2-4)",
    ))
    by_count = {observed: (routine, policy, total)
                for observed, routine, policy, total in rows}
    # Ten watched episodes suffice on every seed.
    routine, policy, total = by_count[10]
    assert routine == total
    assert policy == total
    routine, policy, total = by_count[20]
    assert routine == total and policy == total
