"""Sensitivity benches: learning rate α and exploration schedule ε.

Together with the λ ablation these pin the reproduction's central
engineering finding: on the paper's short ADL chains, convergence
speed is governed **entirely by the exploration schedule** -- α and λ
barely matter -- and the paper's "update all the while" setting
(ε never decaying) never satisfies the convergence criterion even
though the greedy policy is perfect.
"""

from repro.evalx.sensitivity import alpha_sweep, epsilon_sweep

SEEDS = tuple(range(8))


def _rows(table, prefix=None):
    rows = []
    for line in table.splitlines():
        cells = [cell.strip() for cell in line.split("|")]
        if len(cells) == 4 and cells[1] not in ("Mean iterations (95%)",):
            if prefix is None or cells[0].startswith(prefix):
                rows.append(cells)
    return rows


def test_sensitivity_alpha(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        alpha_sweep, args=(adl,), kwargs={"seeds": SEEDS}, rounds=1, iterations=1
    )
    print("\n" + table)
    rows = _rows(table)
    assert len(rows) == 5
    iterations = [float(row[1]) for row in rows]
    # α-insensitive: every α converges, spread stays tight.
    assert all(row[2] == "100%" for row in rows)
    assert all(row[3] == "100%" for row in rows)
    assert max(iterations) - min(iterations) <= 15


def test_sensitivity_epsilon(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        epsilon_sweep, args=(adl,), kwargs={"seeds": SEEDS}, rounds=1,
        iterations=1,
    )
    print("\n" + table)
    rows = {row[0]: row for row in _rows(table)}
    # More exploration -> later convergence (monotone in ε0).
    decaying = [rows[f"eps0={e} decay=0.978"] for e in (0.1, 0.2, 0.4)]
    iterations = [float(row[1]) for row in decaying]
    assert iterations == sorted(iterations)
    # The paper's "update all the while" mode: never converges, yet
    # the greedy policy is perfect.
    always = rows["eps0=0.4 decay=1.0"]
    assert always[1] == "-"
    assert always[2] == "0%"
    assert always[3] == "100%"
