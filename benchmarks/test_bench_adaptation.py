"""Bench: online adaptation speed (the §3.2 always-learning mode).

After a user changes their routine, how many lived episodes until the
deployed policy tracks the new one?  Single-digit episode counts --
far below the 120 of initial training, because the optimistic
rule-out only has to re-decide the states whose successors changed.
"""

from repro.evalx.ablations import adaptation_speed

EPSILONS = (0.05, 0.1, 0.3)


def test_adaptation_speed(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        adaptation_speed,
        args=(adl,),
        kwargs={"epsilons": EPSILONS, "seeds": tuple(range(5))},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    episodes = []
    for line in table.splitlines():
        cells = [cell.strip() for cell in line.split("|")]
        if len(cells) == 2 and cells[0].replace(".", "").isdigit():
            episodes.append(float(cells[1]))
    assert len(episodes) == len(EPSILONS)
    # Every ε re-learns within a handful of episodes -- orders of
    # magnitude below the 120-episode initial training.
    assert all(count <= 20 for count in episodes)
