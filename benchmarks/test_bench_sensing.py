"""Bench: the block-sampling sensing fast path.

Times the two sensing-bound experiment cells (``ablation.radio`` and
``table3.extract``) under the reference per-sample loop
(``batch_samples=1``) and the block fast path (the default), asserts
the outputs are identical (the byte-identity contract of
``docs/architecture.md``) and that the fast path wins by at least 3x,
then sweeps block sizes and re-times the full ``--fast`` runner.
Measurements land in ``BENCH_sensing.json`` at the repo root,
extending the perf trajectory of ``BENCH_runner.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

from repro.core.config import CoReDAConfig, SensingConfig
from repro.evalx.ablations import plan_radio_sweep
from repro.evalx.extract_precision import run_extract_precision
from repro.evalx.parallel import run_section
from repro.evalx.runner import run_all

_OUT = Path(__file__).resolve().parent.parent / "BENCH_sensing.json"
_JOBS = 4
#: The PR 1 baselines the runner must stay under (BENCH_runner.json).
_RUNNER_COLD_BUDGET = 1.808
_RUNNER_WARM_BUDGET = 1.208
_REQUIRED_SPEEDUP = 3.0


def _best_of(fn, rounds=3):
    """(best wall-clock seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _radio_cell(tea, batch):
    sensing = SensingConfig(batch_samples=batch)
    return run_section(plan_radio_sweep(tea, samples_per_step=8,
                                        sensing=sensing))


def _extract_cell(paper_adls, batch):
    config = replace(CoReDAConfig(),
                     sensing=SensingConfig(batch_samples=batch))
    result = run_extract_precision(
        paper_adls, samples_per_step=10, config=config, seed=0
    )
    return [
        (row.step_name, row.detections, row.trials) for row in result.rows
    ]


def test_sensing_fast_path(benchmark, paper_adls, tmp_path):
    tea = paper_adls[1]
    assert tea.adl.name == "tea-making"

    # --- sensing-bound cells: reference loop vs block fast path ------
    radio_slow_s, radio_slow = _best_of(lambda: _radio_cell(tea, 1))
    radio_fast_s, radio_fast = _best_of(lambda: _radio_cell(tea, 10))
    assert radio_fast == radio_slow  # identical merged table

    extract_slow_s, extract_slow = _best_of(
        lambda: _extract_cell(paper_adls, 1)
    )
    extract_fast_s, extract_fast = _best_of(
        lambda: _extract_cell(paper_adls, 10)
    )
    assert extract_fast == extract_slow  # identical Table 3 counts

    radio_speedup = radio_slow_s / radio_fast_s
    extract_speedup = extract_slow_s / extract_fast_s

    # --- block-size sweep on the extract cell ------------------------
    block_sizes = {}
    for batch in (1, 5, 10, 20):
        seconds, _ = _best_of(lambda b=batch: _extract_cell(paper_adls, b))
        block_sizes[str(batch)] = round(seconds, 3)

    # --- end-to-end runner, as BENCH_runner.json measures it ---------
    cache = str(tmp_path / "policy-cache")
    start = time.perf_counter()
    serial = run_all(fast=True)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    cold = run_all(fast=True, jobs=_JOBS, cache_dir=cache)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_all(fast=True, jobs=_JOBS, cache_dir=cache)
    warm_s = time.perf_counter() - start
    assert cold == serial
    assert warm == serial

    # The benchmarked quantity: the batched extract cell (the hottest
    # purely sensing-bound unit of work).
    benchmark.pedantic(
        _extract_cell, args=(paper_adls, 10), rounds=1, iterations=1
    )

    payload = {
        "batch_samples_default": SensingConfig().batch_samples,
        "equivalent_outputs": True,
        "cells": {
            "ablation.radio": {
                "serial_seconds": round(radio_slow_s, 3),
                "batched_seconds": round(radio_fast_s, 3),
                "speedup": round(radio_speedup, 2),
            },
            "table3.extract": {
                "serial_seconds": round(extract_slow_s, 3),
                "batched_seconds": round(extract_fast_s, 3),
                "speedup": round(extract_speedup, 2),
            },
        },
        "extract_seconds_by_block_size": block_sizes,
        "runner_fast_report": {
            "serial_seconds": round(serial_s, 3),
            "parallel_cold_cache_seconds": round(cold_s, 3),
            "parallel_warm_cache_seconds": round(warm_s, 3),
            "cold_budget_seconds": _RUNNER_COLD_BUDGET,
            "warm_budget_seconds": _RUNNER_WARM_BUDGET,
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))

    assert radio_speedup >= _REQUIRED_SPEEDUP
    assert extract_speedup >= _REQUIRED_SPEEDUP
    assert cold_s <= _RUNNER_COLD_BUDGET
    assert warm_s <= _RUNNER_WARM_BUDGET
