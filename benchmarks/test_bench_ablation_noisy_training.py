"""Ablation bench: training on gappy logs, raw vs HMM-repaired.

Table 3 says short steps are missed 15-20% of the time, so real
training logs are gappy.  Training raw on gappy logs corrupts the
learned routine (the policy learns the *gap* transitions); repairing
the log first with the routine-HMM (repro.recognition) restores full
accuracy.  This quantifies how the sensing imperfection of Table 3
propagates into the learning of Figure 4 -- and how to stop it.
"""

import numpy as np

from repro.core.metrics import mean
from repro.evalx.tables import format_table
from repro.planning.trainer import RoutineTrainer
from repro.recognition.repair import EpisodeRepairer
from repro.resident.routines import noisy_episodes

MISS_RATES = (0.0, 0.1, 0.2)
SEEDS = tuple(range(5))


def _study(adl):
    routine = adl.canonical_routine()
    rows = []
    for miss in MISS_RATES:
        raw_accuracy = []
        repaired_accuracy = []
        for seed in SEEDS:
            rng = np.random.default_rng(1000 + seed)
            log = noisy_episodes(routine, 120, rng, miss_probability=miss)
            repaired = EpisodeRepairer(
                routine, miss_probability=max(miss, 0.01)
            ).repair_all(log)
            for episodes, bucket in ((log, raw_accuracy),
                                     (repaired, repaired_accuracy)):
                trainer = RoutineTrainer(adl, rng=np.random.default_rng(seed))
                result = trainer.train(episodes, routine=routine)
                bucket.append(result.curve.greedy_accuracy[-1])
        rows.append((miss, mean(raw_accuracy), mean(repaired_accuracy)))
    return rows


def test_ablation_noisy_training(benchmark, registry):
    adl = registry.get("tea-making").adl
    rows = benchmark.pedantic(_study, args=(adl,), rounds=1, iterations=1)
    print("\n" + format_table(
        ["Miss rate", "Raw-log accuracy", "Repaired-log accuracy"],
        [(f"{miss:.0%}", f"{raw:.1%}", f"{repaired:.1%}")
         for miss, raw, repaired in rows],
        title="Ablation: gappy training logs, raw vs HMM-repaired "
              f"({adl.name})",
    ))
    by_miss = {miss: (raw, repaired) for miss, raw, repaired in rows}
    # Clean logs: both perfect.
    assert by_miss[0.0][0] == 1.0
    assert by_miss[0.0][1] == 1.0
    # Gappy logs corrupt raw training...
    assert by_miss[0.2][0] < 0.9
    # ...and repair restores it.
    assert by_miss[0.1][1] == 1.0
    assert by_miss[0.2][1] == 1.0
