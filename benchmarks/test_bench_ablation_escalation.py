"""Ablation bench: escalation vs low minimal-prompt compliance.

A resident who notices only ~35% of minimal prompts stalls on every
step.  Escalation upgrades unanswered minimal prompts to specific
(98% noticed), so rescue takes fewer repeats: the prompt load per
episode drops measurably versus a never-escalating policy.  This
validates the escalation design on exactly the population it exists
for.
"""

from repro.evalx.ablations import escalation_ablation


def _parse(table):
    rows = {}
    for line in table.splitlines():
        cells = [cell.strip() for cell in line.split("|")]
        if len(cells) == 3 and ("escalate" in cells[0] or "never" in cells[0]):
            rows[cells[0]] = float(cells[1])
    return rows


def test_ablation_escalation(benchmark, registry):
    definition = registry.get("tea-making")
    table = benchmark.pedantic(
        escalation_ablation,
        args=(definition,),
        kwargs={"episodes": 8},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    rows = _parse(table)
    assert set(rows) == {
        "escalate after 1 miss", "escalate after 2", "never escalate",
    }
    # Escalating needs fewer reminders per episode than never escalating.
    assert rows["escalate after 1 miss"] < rows["never escalate"]
