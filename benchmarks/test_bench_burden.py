"""Bench: caregiver-burden study (the paper's motivation, quantified).

Without a guidance system every resident error needs a caregiver;
with CoReDA deployed, errors are absorbed by prompts.  Shape asserted:
errors grow with dementia severity while caregiver interventions stay
near zero -- the burden-reduction claim of the paper's introduction.
"""

from repro.evalx.burden import run_burden_study

SEVERITIES = (0.2, 0.5, 0.8)


def test_burden_study(benchmark, registry):
    definition = registry.get("tea-making")
    result = benchmark.pedantic(
        run_burden_study,
        args=(definition,),
        kwargs={"severities": SEVERITIES, "episodes": 10},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_table())
    errors = [row.errors_per_episode for row in result.rows]
    # Severity drives error rate (monotone, and severe >> mild).
    assert errors == sorted(errors)
    assert errors[-1] >= 2 * errors[0]
    for row in result.rows:
        # Every episode still completes under guidance.
        assert row.completed == row.episodes
        # CoReDA absorbs (nearly) every error without a caregiver.
        reduction = row.burden_reduction
        if reduction is not None:
            assert reduction >= 0.8
