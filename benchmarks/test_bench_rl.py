"""Bench: the indexed dense RL core vs the sparse dict backend.

Times the training-dominated experiment cells (the Fig. 4 learning
curves, both hyper-parameter sensitivity sweeps and the three
RL-heavy ablations) under ``REPRO_Q_BACKEND=sparse`` and ``=dense``,
asserts the merged section outputs are byte-identical (the contract
of ``docs/architecture.md``) and that the dense backend wins.
Measurements land in ``BENCH_rl.json`` at the repo root, next to
``BENCH_sensing.json`` and ``BENCH_runner.json``.

Timing uses ``time.process_time`` (CPU seconds) with best-of-N per
backend: the cells are pure CPU, and process time is far less noisy
than wall clock on a shared machine.  The per-cell speedups still
wobble by ~±10%, so the hard assertion is on the *aggregate* ratio
(total sparse CPU / total dense CPU) with per-cell ratios recorded in
the JSON for the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.evalx.ablations import (
    plan_dyna_sweep,
    plan_lambda_sweep,
    plan_sarsa_comparison,
)
from repro.evalx.learning_curve import plan_learning_curve
from repro.evalx.parallel import run_section
from repro.evalx.runner import run_all
from repro.evalx.sensitivity import plan_alpha_sweep, plan_epsilon_sweep

_OUT = Path(__file__).resolve().parent.parent / "BENCH_rl.json"
_ROUNDS = 3
#: Aggregate dense-over-sparse floor.  Individual cells land around
#: 3x (recorded in the JSON); the hard gate leaves noise headroom.
_REQUIRED_AGGREGATE_SPEEDUP = 2.0

def _merge_into_payload(update: dict) -> dict:
    """Read-modify-write ``BENCH_rl.json``.

    Two bench tests share the file (the training-dominated cells here
    and the batched-inference cells below); each merges its own keys
    so running either one never drops the other's numbers.
    """
    try:
        payload = json.loads(_OUT.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = {}
    payload.update(update)
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


#: cell name -> planner(adl) for every training-dominated cell.
_CELLS = {
    "fig4.curve": plan_learning_curve,
    "sensitivity.alpha": plan_alpha_sweep,
    "sensitivity.epsilon": plan_epsilon_sweep,
    "ablation.dyna": plan_dyna_sweep,
    "ablation.lambda": plan_lambda_sweep,
    "ablation.sarsa": plan_sarsa_comparison,
}


def _run_cells(adls, backend):
    """(per-cell CPU seconds, per-cell merged output) under ``backend``.

    ``REPRO_Q_BACKEND`` is read by ``PlanningConfig()`` construction
    inside each cell, so flipping the environment variable switches
    every learner the cell builds.
    """
    os.environ["REPRO_Q_BACKEND"] = backend
    seconds = {}
    outputs = {}
    for adl in adls:
        for name, planner in _CELLS.items():
            key = f"{name}.{adl.name}"
            start = time.process_time()
            outputs[key] = run_section(planner(adl))
            seconds[key] = time.process_time() - start
    return seconds, outputs


def test_dense_rl_core(benchmark, paper_adls, monkeypatch):
    monkeypatch.delenv("REPRO_Q_BACKEND", raising=False)
    adls = [definition.adl for definition in paper_adls]
    tooth = adls[:1]

    # Warm both code paths once so neither backend's first timed round
    # pays import/JIT-warmup costs.
    _run_cells(tooth, "sparse")
    _run_cells(tooth, "dense")

    best_sparse = {}
    best_dense = {}
    outputs_equal = True
    for _ in range(_ROUNDS):
        sparse_s, sparse_out = _run_cells(adls, "sparse")
        dense_s, dense_out = _run_cells(adls, "dense")
        outputs_equal = outputs_equal and sparse_out == dense_out
        for key in sparse_s:
            best_sparse[key] = min(
                best_sparse.get(key, float("inf")), sparse_s[key]
            )
            best_dense[key] = min(
                best_dense.get(key, float("inf")), dense_s[key]
            )

    # The report itself must not depend on the backend either.
    os.environ["REPRO_Q_BACKEND"] = "sparse"
    report_sparse = run_all(fast=True)
    os.environ["REPRO_Q_BACKEND"] = "dense"
    report_dense = run_all(fast=True)
    os.environ.pop("REPRO_Q_BACKEND", None)
    reports_equal = report_sparse == report_dense

    total_sparse = sum(best_sparse.values())
    total_dense = sum(best_dense.values())
    aggregate = total_sparse / total_dense

    # The benchmarked quantity: the heaviest training-dominated cell
    # on the default (dense) backend.
    benchmark.pedantic(
        lambda: run_section(plan_dyna_sweep(adls[0])),
        rounds=1,
        iterations=1,
    )

    payload = {
        "backend_default": "dense",
        "equivalent_outputs": bool(outputs_equal),
        "fast_report_identical": bool(reports_equal),
        "cells": {
            key: {
                "sparse_seconds": round(best_sparse[key], 3),
                "dense_seconds": round(best_dense[key], 3),
                "speedup": round(best_sparse[key] / best_dense[key], 2),
            }
            for key in sorted(best_sparse)
        },
        "aggregate": {
            "sparse_seconds": round(total_sparse, 3),
            "dense_seconds": round(total_dense, 3),
            "speedup": round(aggregate, 2),
        },
    }
    _merge_into_payload(payload)
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))

    assert outputs_equal
    assert reports_equal
    assert aggregate >= _REQUIRED_AGGREGATE_SPEEDUP


# ---------------------------------------------------------------------------
# Batched inference: recognition stacks, greedy-policy tables, probes
# ---------------------------------------------------------------------------


def _recognition_workload(registry, streams=150, length=14):
    """A corpus of noisy usage streams drawn across every ADL."""
    from repro.sim.random import seeded_generator

    rng = seeded_generator(1234)
    adls = [registry.get(name).adl for name in registry.names()]
    corpus = []
    for index in range(streams):
        adl = adls[index % len(adls)]
        ids = list(adl.step_ids)
        picks = rng.integers(0, len(ids), size=length).tolist()
        corpus.append([ids[p] for p in picks])
    return adls, corpus


def _time_best_of(fn, rounds=_ROUNDS):
    """(best CPU seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.process_time()
        result = fn()
        best = min(best, time.process_time() - start)
    return best, result


def test_batched_inference(benchmark, registry, monkeypatch):
    from repro.planning.predictor import NextStepPredictor
    from repro.planning.trainer import RoutineTrainer
    from repro.recognition import ActivityRecognizer
    from repro.rl.dense import _VECTOR_MIN_ELEMENTS, DenseQTable
    from repro.sim.random import seeded_generator

    monkeypatch.delenv("REPRO_INFER_BACKEND", raising=False)

    # --- infer.recognition: classify a fleet-sized stream corpus.
    adls, corpus = _recognition_workload(registry)
    scalar_rec = ActivityRecognizer(adls, backend="scalar")
    batched_rec = ActivityRecognizer(adls, backend="batched")
    scalar_s, scalar_labels = _time_best_of(
        lambda: [scalar_rec.classify(stream) for stream in corpus]
    )
    batched_s, batched_labels = _time_best_of(
        lambda: batched_rec.classify_batch(corpus)
    )
    assert batched_labels == scalar_labels
    raw = {"infer.recognition": (scalar_s, batched_s)}
    cells = {
        "infer.recognition": {
            "scalar_seconds": round(scalar_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(scalar_s / batched_s, 2),
        }
    }

    # --- infer.predict: deployed next-step prediction sweep.
    tea = registry.get("tea-making").adl
    trainer = RoutineTrainer(tea, rng=seeded_generator(0))
    routine = tea.canonical_routine()
    training = trainer.train(
        [list(routine.step_ids)] * 120, routine=routine
    )
    ids = [0] + list(tea.step_ids)
    states = [(prev, cur) for prev in ids for cur in ids] * 500
    plain = NextStepPredictor(
        training.learner.q, training.actions, memoize=False
    )
    memo = NextStepPredictor(
        training.learner.q, training.actions, memoize=True
    )
    plain_s, plain_out = _time_best_of(
        lambda: [plain.predict(s) for s in states]
    )
    memo_s, memo_out = _time_best_of(
        lambda: [memo.predict(s) for s in states]
    )
    assert memo_out == plain_out
    raw["infer.predict"] = (plain_s, memo_s)
    cells["infer.predict"] = {
        "scalar_seconds": round(plain_s, 4),
        "batched_seconds": round(memo_s, 4),
        "speedup": round(plain_s / memo_s, 2),
    }

    # --- infer.probe: convergence-probe argmax over a large table.
    rng = seeded_generator(7)
    actions = tuple(training.actions)
    q = DenseQTable(0.0)
    n_states = (_VECTOR_MIN_ELEMENTS // len(actions)) * 4
    probe_states = list(range(n_states))
    for s in probe_states:
        for a in actions:
            q.set(s, a, float(rng.integers(0, 9)))
    vector_prober = q.argmax_prober(probe_states, actions)
    scalar_prober = q.argmax_prober(probe_states, actions)
    scalar_prober._vector = False
    assert vector_prober._vector
    probe_scalar_s, probe_scalar_out = _time_best_of(
        lambda: [scalar_prober() for _ in range(5)]
    )
    probe_vector_s, probe_vector_out = _time_best_of(
        lambda: [vector_prober() for _ in range(5)]
    )
    assert probe_vector_out == probe_scalar_out
    raw["infer.probe"] = (probe_scalar_s, probe_vector_s)
    cells["infer.probe"] = {
        "scalar_seconds": round(probe_scalar_s, 4),
        "batched_seconds": round(probe_vector_s, 4),
        "speedup": round(probe_scalar_s / probe_vector_s, 2),
    }

    # --- Pipeline byte-identity: report and fleet must not depend on
    # the inference backend (the repo's backend contract).
    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(
        adl_name="tea-making",
        homes=6,
        seed=0,
        episodes_per_home=1,
        training_episodes=40,
        seed_classes=2,
        shard_size=3,
    )
    os.environ["REPRO_INFER_BACKEND"] = "scalar"
    report_scalar = run_all(fast=True)
    fleet_scalar = run_fleet(spec, jobs=1).to_json()
    os.environ["REPRO_INFER_BACKEND"] = "batched"
    report_batched = run_all(fast=True)
    fleet_batched = run_fleet(spec, jobs=2).to_json()
    os.environ.pop("REPRO_INFER_BACKEND", None)
    reports_equal = report_scalar == report_batched
    fleets_equal = fleet_scalar == fleet_batched

    # The benchmarked quantity: the batched recognition sweep.
    benchmark.pedantic(
        lambda: batched_rec.classify_batch(corpus), rounds=1, iterations=1
    )

    # Aggregate over the recognition/probe-dominated cells (the
    # predict memo rides along in the JSON; its per-call win is large
    # but its absolute time is too small to gate on).
    gated = ("infer.recognition", "infer.probe")
    total_scalar = sum(raw[c][0] for c in gated)
    total_batched = sum(raw[c][1] for c in gated)
    aggregate = total_scalar / total_batched

    payload = {
        "inference": {
            "backend_default": "batched",
            "fast_report_identical": bool(reports_equal),
            "fleet_identical": bool(fleets_equal),
            "cells": cells,
            "aggregate": {
                "scalar_seconds": round(total_scalar, 4),
                "batched_seconds": round(total_batched, 4),
                "speedup": round(aggregate, 2),
            },
        }
    }
    _merge_into_payload(payload)
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))

    assert reports_equal
    assert fleets_equal
    assert aggregate >= _REQUIRED_AGGREGATE_SPEEDUP
