"""Bench: the indexed dense RL core vs the sparse dict backend.

Times the training-dominated experiment cells (the Fig. 4 learning
curves, both hyper-parameter sensitivity sweeps and the three
RL-heavy ablations) under ``REPRO_Q_BACKEND=sparse`` and ``=dense``,
asserts the merged section outputs are byte-identical (the contract
of ``docs/architecture.md``) and that the dense backend wins.
Measurements land in ``BENCH_rl.json`` at the repo root, next to
``BENCH_sensing.json`` and ``BENCH_runner.json``.

Timing uses ``time.process_time`` (CPU seconds) with best-of-N per
backend: the cells are pure CPU, and process time is far less noisy
than wall clock on a shared machine.  The per-cell speedups still
wobble by ~±10%, so the hard assertion is on the *aggregate* ratio
(total sparse CPU / total dense CPU) with per-cell ratios recorded in
the JSON for the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.evalx.ablations import (
    plan_dyna_sweep,
    plan_lambda_sweep,
    plan_sarsa_comparison,
)
from repro.evalx.learning_curve import plan_learning_curve
from repro.evalx.parallel import run_section
from repro.evalx.runner import run_all
from repro.evalx.sensitivity import plan_alpha_sweep, plan_epsilon_sweep

_OUT = Path(__file__).resolve().parent.parent / "BENCH_rl.json"
_ROUNDS = 3
#: Aggregate dense-over-sparse floor.  Individual cells land around
#: 3x (recorded in the JSON); the hard gate leaves noise headroom.
_REQUIRED_AGGREGATE_SPEEDUP = 2.0

#: cell name -> planner(adl) for every training-dominated cell.
_CELLS = {
    "fig4.curve": plan_learning_curve,
    "sensitivity.alpha": plan_alpha_sweep,
    "sensitivity.epsilon": plan_epsilon_sweep,
    "ablation.dyna": plan_dyna_sweep,
    "ablation.lambda": plan_lambda_sweep,
    "ablation.sarsa": plan_sarsa_comparison,
}


def _run_cells(adls, backend):
    """(per-cell CPU seconds, per-cell merged output) under ``backend``.

    ``REPRO_Q_BACKEND`` is read by ``PlanningConfig()`` construction
    inside each cell, so flipping the environment variable switches
    every learner the cell builds.
    """
    os.environ["REPRO_Q_BACKEND"] = backend
    seconds = {}
    outputs = {}
    for adl in adls:
        for name, planner in _CELLS.items():
            key = f"{name}.{adl.name}"
            start = time.process_time()
            outputs[key] = run_section(planner(adl))
            seconds[key] = time.process_time() - start
    return seconds, outputs


def test_dense_rl_core(benchmark, paper_adls, monkeypatch):
    monkeypatch.delenv("REPRO_Q_BACKEND", raising=False)
    adls = [definition.adl for definition in paper_adls]
    tooth = adls[:1]

    # Warm both code paths once so neither backend's first timed round
    # pays import/JIT-warmup costs.
    _run_cells(tooth, "sparse")
    _run_cells(tooth, "dense")

    best_sparse = {}
    best_dense = {}
    outputs_equal = True
    for _ in range(_ROUNDS):
        sparse_s, sparse_out = _run_cells(adls, "sparse")
        dense_s, dense_out = _run_cells(adls, "dense")
        outputs_equal = outputs_equal and sparse_out == dense_out
        for key in sparse_s:
            best_sparse[key] = min(
                best_sparse.get(key, float("inf")), sparse_s[key]
            )
            best_dense[key] = min(
                best_dense.get(key, float("inf")), dense_s[key]
            )

    # The report itself must not depend on the backend either.
    os.environ["REPRO_Q_BACKEND"] = "sparse"
    report_sparse = run_all(fast=True)
    os.environ["REPRO_Q_BACKEND"] = "dense"
    report_dense = run_all(fast=True)
    os.environ.pop("REPRO_Q_BACKEND", None)
    reports_equal = report_sparse == report_dense

    total_sparse = sum(best_sparse.values())
    total_dense = sum(best_dense.values())
    aggregate = total_sparse / total_dense

    # The benchmarked quantity: the heaviest training-dominated cell
    # on the default (dense) backend.
    benchmark.pedantic(
        lambda: run_section(plan_dyna_sweep(adls[0])),
        rounds=1,
        iterations=1,
    )

    payload = {
        "backend_default": "dense",
        "equivalent_outputs": bool(outputs_equal),
        "fast_report_identical": bool(reports_equal),
        "cells": {
            key: {
                "sparse_seconds": round(best_sparse[key], 3),
                "dense_seconds": round(best_dense[key], 3),
                "speedup": round(best_sparse[key] / best_dense[key], 2),
            }
            for key in sorted(best_sparse)
        },
        "aggregate": {
            "sparse_seconds": round(total_sparse, 3),
            "dense_seconds": round(total_dense, 3),
            "speedup": round(aggregate, 2),
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))

    assert outputs_equal
    assert reports_equal
    assert aggregate >= _REQUIRED_AGGREGATE_SPEEDUP
