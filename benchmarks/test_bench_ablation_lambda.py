"""Ablation bench: eligibility-trace decay λ.

Finding (documented in EXPERIMENTS.md): on the paper's short ADL
chains with correctness-contingent rewards and optimistic
initialization, convergence speed is bound by exploration rather than
by value propagation, so λ barely moves the needle -- TD(λ) is
*compatible* with the paper's setup rather than critical to it.  The
bench asserts robustness: every λ converges within the budget and no
λ is catastrophically worse.
"""

from repro.evalx.ablations import lambda_sweep

LAMBDAS = (0.0, 0.3, 0.7, 0.9)


def test_ablation_lambda(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        lambda_sweep,
        args=(adl,),
        kwargs={"lambdas": LAMBDAS, "seeds": tuple(range(8))},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    rows = [line for line in table.splitlines() if line[:1].isdigit()]
    assert len(rows) == len(LAMBDAS)
    iterations = []
    for row in rows:
        cells = [cell.strip() for cell in row.split("|")]
        assert cells[2] == "100%"  # every λ converges on every seed
        iterations.append(float(cells[1]))
    assert max(iterations) <= 120
    # Robustness: the spread across λ stays small.
    assert max(iterations) - min(iterations) <= 25
