"""Bench: event-kernel backends and the batched multi-home shard mode.

Three measurements, written to ``BENCH_kernel.json`` at the repo root:

1. **Sensing-cadence kernel cells** -- the pure scheduler workload
   that dominates sensing-bound experiment cells (recurring 1 Hz
   node timers with per-node phase offsets, recycled through the
   zero-allocation free list), heap vs calendar at three standing
   populations.  The calendar queue's win grows with queue depth:
   the heap pays ``log2(n)`` Python ``__lt__`` calls per operation
   while the calendar stays O(1), so the dense-fleet population
   (50 k live timers, the million-home direction's per-shard shape)
   is where the ≥2x requirement is asserted.
2. **Watchdog-reset cell** -- the cancel-heavy timer pattern
   (every activity event resets a 30 s timeout), exercising lazy
   cancellation and the calendar's eager bucket compaction.
3. **Batched shard mode** -- 1000 fleet homes simulated per-home
   vs batched (all homes of a shard on one shared kernel, one
   policy restore per distinct training per shard), asserting
   byte-identical fleet metrics and a homes/sec improvement.

Every cell replays identical workloads on both configurations and
asserts equality before recording speed, so the numbers can never
drift away from correctness.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.adls.library import default_registry
from repro.fleet import FleetSpec, run_fleet
from repro.sim.kernel import Simulator

_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Standing timer populations for the cadence cells.  200 ≈ one
#: 25-home shard's node timers; 5000 ≈ a 600-home wave; 50000 ≈ the
#: dense-fleet regime the calendar queue exists for.
CADENCE_CELLS = (
    ("shard-25-homes", 200, 120.0),
    ("wave-600-homes", 5000, 12.0),
    ("dense-fleet", 50000, 3.0),
)

FLEET_SPEC = FleetSpec(
    adl_name="tea-making",
    homes=1000,
    seed=0,
    episodes_per_home=1,
    training_episodes=120,
    seed_classes=4,
    shard_size=50,
)


def _cadence(backend: str, nodes: int, horizon: float):
    """Recurring 1 Hz ticks, one per node, reusable handles."""
    sim = Simulator(backend=backend)
    count = [0]

    def tick():
        count[0] += 1
        sim.schedule(1.0, tick, reusable=True)

    for i in range(nodes):
        sim.schedule(1.0 + i * 1e-4, tick, reusable=True)
    start = time.perf_counter()
    sim.run_until(horizon)
    return count[0], time.perf_counter() - start


def _watchdog(backend: str, nodes: int, horizon: float):
    """1 Hz activity per node, each event resetting a 30 s watchdog."""
    sim = Simulator(backend=backend)
    count = [0]
    watchdogs = {}

    def expire():
        pass

    def make_tick(node):
        def tick():
            count[0] += 1
            old = watchdogs.get(node)
            if old is not None:
                old.cancel()
            watchdogs[node] = sim.schedule(30.0, expire)
            sim.schedule(1.0, tick, reusable=True)
        return tick

    for i in range(nodes):
        sim.schedule(1.0 + i * 1e-4, make_tick(i), reusable=True)
    start = time.perf_counter()
    sim.run_until(horizon)
    return count[0], time.perf_counter() - start


def _best_of(cell, backend, nodes, horizon, reps=3):
    events = None
    best = float("inf")
    for _ in range(reps):
        count, seconds = cell(backend, nodes, horizon)
        assert events is None or events == count  # identical replays
        events = count
        best = min(best, seconds)
    return events, best


def test_kernel_backends_and_batched_shards(benchmark, tmp_path):
    cells = {}
    best_speedup = 0.0
    for name, nodes, horizon in CADENCE_CELLS:
        events, heap_s = _best_of(_cadence, "heap", nodes, horizon)
        events_c, cal_s = _best_of(_cadence, "calendar", nodes, horizon)
        assert events_c == events
        speedup = heap_s / cal_s
        best_speedup = max(best_speedup, speedup)
        cells[name] = {
            "nodes": nodes,
            "events": events,
            "heap_events_per_sec": round(events / heap_s, 1),
            "calendar_events_per_sec": round(events / cal_s, 1),
            "calendar_speedup": round(speedup, 2),
        }

    events, heap_s = _best_of(_watchdog, "heap", 1000, 60.0)
    events_c, cal_s = _best_of(_watchdog, "calendar", 1000, 60.0)
    assert events_c == events
    watchdog_cell = {
        "nodes": 1000,
        "events": events,
        "heap_events_per_sec": round(events / heap_s, 1),
        "calendar_events_per_sec": round(events / cal_s, 1),
        "calendar_speedup": round(heap_s / cal_s, 2),
    }

    # The issue's bar: at least one sensing-bound cell at ≥2x.
    assert best_speedup >= 2.0, cells

    # Batched shard mode at 1000 homes, warm shared cache.
    cache = str(tmp_path / "kernel-bench-cache")
    run_fleet(FLEET_SPEC, jobs=1, cache_dir=cache)  # warm the cache

    start = time.perf_counter()
    per_home = run_fleet(
        FLEET_SPEC, jobs=1, cache_dir=cache, batch_homes=False
    )
    per_home_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = run_fleet(
        FLEET_SPEC, jobs=1, cache_dir=cache, batch_homes=True
    )
    batched_s = time.perf_counter() - start

    assert batched.to_json() == per_home.to_json()
    assert batched_s < per_home_s, (batched_s, per_home_s)

    homes = FLEET_SPEC.homes
    shard_mode = {
        "homes": homes,
        "shard_size": FLEET_SPEC.shard_size,
        "byte_identical": True,
        "per_home_kernels": {
            "seconds": round(per_home_s, 3),
            "homes_per_sec": round(homes / per_home_s, 1),
        },
        "batched_shards": {
            "seconds": round(batched_s, 3),
            "homes_per_sec": round(homes / batched_s, 1),
        },
        "batched_speedup": round(per_home_s / batched_s, 2),
    }

    benchmark.pedantic(
        run_fleet,
        args=(FLEET_SPEC,),
        kwargs={"jobs": 1, "cache_dir": cache, "batch_homes": True},
        rounds=1,
        iterations=1,
    )

    payload = {
        "sensing_cadence_cells": cells,
        "watchdog_reset_cell": watchdog_cell,
        "best_calendar_speedup": round(best_speedup, 2),
        "batched_shard_mode": shard_mode,
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))
