"""Bench: the parallel experiment runner and the trained-policy cache.

Times the full ``--fast`` report three ways -- serial, ``--jobs 4``
with a cold policy cache, and ``--jobs 4`` again with the cache warm
-- asserts all three reports are byte-identical (the determinism
contract of :mod:`repro.evalx.parallel`), and writes the measurements
to ``BENCH_runner.json`` at the repo root: per-section cell seconds
plus the wall-clock of each mode and the warm-cache speedup.

On a single-core box the process pool cannot beat serial wall-clock;
the warm cache is what delivers the speedup there, which is why both
are recorded separately.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.evalx.runner import run_all

_OUT = Path(__file__).resolve().parent.parent / "BENCH_runner.json"
_JOBS = 4


def _timed_run(**kwargs):
    timings = {}
    start = time.perf_counter()
    report = run_all(fast=True, timings=timings, **kwargs)
    return report, time.perf_counter() - start, timings


def test_runner_parallel_and_cache(benchmark, tmp_path):
    cache = str(tmp_path / "policy-cache")

    serial, serial_s, sections = _timed_run()
    parallel_cold, cold_s, _ = _timed_run(jobs=_JOBS, cache_dir=cache)
    parallel_warm, warm_s, _ = _timed_run(jobs=_JOBS, cache_dir=cache)

    assert parallel_cold == serial
    assert parallel_warm == serial

    # The benchmarked quantity is the steady state: warm cache, jobs=4.
    benchmark.pedantic(
        run_all, kwargs={"fast": True, "jobs": _JOBS, "cache_dir": cache},
        rounds=1, iterations=1,
    )

    payload = {
        "mode": "--fast",
        "jobs": _JOBS,
        "serial_seconds": round(serial_s, 3),
        "parallel_cold_cache_seconds": round(cold_s, 3),
        "parallel_warm_cache_seconds": round(warm_s, 3),
        "warm_cache_speedup_vs_serial": round(serial_s / warm_s, 2),
        "byte_identical": True,
        "section_cell_seconds": {
            name: round(seconds, 3) for name, seconds in sections.items()
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))

    assert warm_s <= cold_s * 1.5  # warm cache must not regress badly
