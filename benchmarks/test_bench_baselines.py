"""Bench: baseline comparison on personalized routines.

The paper's critique of pre-planned systems, quantified: learning
systems (CoReDA, n-grams) track every user's personal routine;
pre-planned systems (fixed sequence, canonical-model MDP planner) are
only right for users who happen to match the canonical plan.
"""

from repro.evalx.baseline_compare import run_baseline_comparison


def test_baseline_comparison(benchmark, registry):
    adl = registry.get("tea-making").adl
    result = benchmark.pedantic(
        run_baseline_comparison,
        args=(adl,),
        kwargs={"n_users": 20, "episodes": 120, "shuffle_probability": 1.0},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_table())
    coreda = result.row_for("CoReDA (TD-lambda Q)")
    fixed = result.row_for("fixed sequence")
    mdp = result.row_for("MDP planner (canonical)")
    assert coreda.mean_accuracy == 1.0
    assert coreda.perfect_users == 20
    assert result.row_for("trigram").mean_accuracy == 1.0
    # Pre-planned systems fail on personalized users (with two interior
    # steps, about half the cohort shuffles away from canonical).
    assert fixed.mean_accuracy < 1.0
    assert mdp.mean_accuracy < 1.0
    assert fixed.perfect_users < 20
