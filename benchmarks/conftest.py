"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (or an
ablation) with paper-scale sample counts, asserts the shape claims
recorded in EXPERIMENTS.md, and prints the regenerated table (visible
with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

import pytest

from repro.adls.library import default_registry


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench``.

    Tier-1 collection never reaches here (``testpaths = ["tests"]``);
    the marker lets CI select or skip the perf suite explicitly with
    ``pytest benchmarks/ -m bench`` / ``-m "not bench"``.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def paper_adls(registry):
    """The two ADLs the paper evaluates, in Table 2 order."""
    return [registry.get("tooth-brushing"), registry.get("tea-making")]
