"""Bench: fleet-scale population simulation (``repro.fleet``).

Runs a 1000-home fleet serial and with ``--jobs 4`` on both policy
planes (the zero-copy shared-memory arena and the JSON reference
path), asserts the aggregate metrics are byte-identical everywhere
(the fleet inherits the parallel runner's determinism contract; the
plane is a speed knob, not a semantics knob) and that policy sharing
trained only the distinct (routine, seed class) combinations, then
writes the measurements to ``BENCH_fleet.json`` at the repo root:
homes/sec per mode, the scaling curve vs ``--jobs`` with the
``parallel_speedup_jobs4`` ratio, a per-plane timing section, the
shared-memory leak scan (``/dev/shm`` must hold no arena segments
after the runs), parent peak RSS per 1k homes (the streaming reducers
keep the parent O(1) in fleet size), and the byte-identity flags.

On a single-core box the process pool cannot beat serial wall-clock
(worker forking is pure overhead there); ``cpu_count`` is recorded
next to the ratio and a sub-1x speedup is *reported as a warning*,
not a failure, so the numbers stay honest either way.
"""

from __future__ import annotations

import glob
import json
import os
import resource
import time
from pathlib import Path

from repro.fleet import FleetSpec, distinct_trainings, run_fleet
from repro.adls.library import default_registry

_OUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
_HOMES = 1000

SPEC = FleetSpec(
    adl_name="tea-making",
    homes=_HOMES,
    seed=0,
    episodes_per_home=1,
    training_episodes=120,
    seed_classes=4,
    shard_size=50,
)


def _timed_fleet(jobs, cache_dir=None, policy_plane="shm"):
    start = time.perf_counter()
    result = run_fleet(
        SPEC, jobs=jobs, cache_dir=cache_dir, policy_plane=policy_plane
    )
    return result, time.perf_counter() - start


def test_fleet_scale(benchmark, tmp_path):
    definition = default_registry().get(SPEC.adl_name)
    distinct = len(distinct_trainings(SPEC.expand(definition)))

    runs = {
        (plane, jobs): _timed_fleet(jobs=jobs, policy_plane=plane)
        for plane in ("shm", "json")
        for jobs in (1, 4)
    }
    serial, serial_s = runs[("shm", 1)]
    parallel, parallel_s = runs[("shm", 4)]

    reference = serial.to_json()
    byte_identical = parallel.to_json() == reference
    planes_identical = all(
        result.to_json() == reference for result, _ in runs.values()
    )
    assert byte_identical
    assert planes_identical

    # Arena hygiene: every shared-memory segment the shm runs
    # published must be unlinked by the time run_fleet returns.
    leaked = sorted(glob.glob("/dev/shm/rpp*"))
    assert not leaked, f"leaked arena segments: {leaked}"

    # Policy sharing: a 1000-home fleet trains its distinct routines,
    # not one policy per home.
    assert serial.distinct_trainings == distinct
    assert serial.metrics.cache_misses == distinct
    assert serial.metrics.cache_hits == _HOMES
    assert distinct <= SPEC.seed_classes * 8

    speedup = serial_s / parallel_s if parallel_s else 0.0
    cpu_count = os.cpu_count() or 1
    if speedup < 1.0:
        print(
            f"\nWARNING: jobs=4 ran {speedup:.2f}x the serial speed "
            f"(cpu_count={cpu_count}); parallelism cannot pay for the "
            "fork overhead on this box"
        )

    # Streaming reducers: the parent never holds per-home reports.
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    worker_peak_rss_mb = (
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
    )

    # The benchmarked steady state: warm shared cache, jobs=4.
    cache = str(tmp_path / "fleet-cache")
    run_fleet(SPEC, jobs=4, cache_dir=cache)
    benchmark.pedantic(
        run_fleet, args=(SPEC,), kwargs={"jobs": 4, "cache_dir": cache},
        rounds=1, iterations=1,
    )

    payload = {
        "homes": _HOMES,
        "episodes_per_home": SPEC.episodes_per_home,
        "shard_size": SPEC.shard_size,
        "seed_classes": SPEC.seed_classes,
        "distinct_trainings": distinct,
        "trainings_executed": serial.metrics.cache_misses,
        "cache_hits": serial.metrics.cache_hits,
        "cpu_count": cpu_count,
        "byte_identical_jobs_1_vs_4": byte_identical,
        "byte_identical_shm_vs_json": planes_identical,
        "parallel_speedup_jobs4": round(speedup, 2),
        "scaling_vs_jobs": {
            "1": {
                "seconds": round(serial_s, 3),
                "homes_per_sec": round(_HOMES / serial_s, 1),
            },
            "4": {
                "seconds": round(parallel_s, 3),
                "homes_per_sec": round(_HOMES / parallel_s, 1),
            },
        },
        "policy_plane": {
            plane: {
                str(jobs): {
                    "seconds": round(seconds, 3),
                    "homes_per_sec": round(_HOMES / seconds, 1),
                }
                for (run_plane, jobs), (_, seconds) in runs.items()
                if run_plane == plane
            }
            for plane in ("shm", "json")
        },
        "shm_segments_leaked": leaked,
        "parent_peak_rss_mb": round(peak_rss_mb, 1),
        "parent_peak_rss_mb_per_1k_homes": round(
            peak_rss_mb / (_HOMES / 1000.0), 1
        ),
        "worker_peak_rss_mb": round(worker_peak_rss_mb, 1),
        "metrics": serial.metrics.to_dict(),
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))
