"""Bench: fleet-scale population simulation (``repro.fleet``).

Runs a 1000-home fleet serial and with ``--jobs 4``, asserts the
aggregate metrics are byte-identical (the fleet inherits the parallel
runner's determinism contract) and that policy sharing trained only
the distinct (routine, seed class) combinations, then writes the
measurements to ``BENCH_fleet.json`` at the repo root: homes/sec per
mode, the scaling curve vs ``--jobs``, parent peak RSS per 1k homes
(the streaming reducers keep the parent O(1) in fleet size), and the
byte-identity flag.

On a single-core box the process pool cannot beat serial wall-clock
(worker forking is pure overhead there); the per-mode homes/sec are
recorded separately so the scaling curve is honest either way.
"""

from __future__ import annotations

import json
import resource
import time
from pathlib import Path

from repro.fleet import FleetSpec, distinct_trainings, run_fleet
from repro.adls.library import default_registry

_OUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
_HOMES = 1000

SPEC = FleetSpec(
    adl_name="tea-making",
    homes=_HOMES,
    seed=0,
    episodes_per_home=1,
    training_episodes=120,
    seed_classes=4,
    shard_size=50,
)


def _timed_fleet(jobs, cache_dir=None):
    start = time.perf_counter()
    result = run_fleet(SPEC, jobs=jobs, cache_dir=cache_dir)
    return result, time.perf_counter() - start


def test_fleet_scale(benchmark, tmp_path):
    definition = default_registry().get(SPEC.adl_name)
    distinct = len(distinct_trainings(SPEC.expand(definition)))

    serial, serial_s = _timed_fleet(jobs=1)
    parallel, parallel_s = _timed_fleet(jobs=4)

    byte_identical = parallel.to_json() == serial.to_json()
    assert byte_identical

    # Policy sharing: a 1000-home fleet trains its distinct routines,
    # not one policy per home.
    assert serial.distinct_trainings == distinct
    assert serial.metrics.cache_misses == distinct
    assert serial.metrics.cache_hits == _HOMES
    assert distinct <= SPEC.seed_classes * 8

    # Streaming reducers: the parent never holds per-home reports.
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    # The benchmarked steady state: warm shared cache, jobs=4.
    cache = str(tmp_path / "fleet-cache")
    run_fleet(SPEC, jobs=4, cache_dir=cache)
    benchmark.pedantic(
        run_fleet, args=(SPEC,), kwargs={"jobs": 4, "cache_dir": cache},
        rounds=1, iterations=1,
    )

    payload = {
        "homes": _HOMES,
        "episodes_per_home": SPEC.episodes_per_home,
        "shard_size": SPEC.shard_size,
        "seed_classes": SPEC.seed_classes,
        "distinct_trainings": distinct,
        "trainings_executed": serial.metrics.cache_misses,
        "cache_hits": serial.metrics.cache_hits,
        "byte_identical_jobs_1_vs_4": byte_identical,
        "scaling_vs_jobs": {
            "1": {
                "seconds": round(serial_s, 3),
                "homes_per_sec": round(_HOMES / serial_s, 1),
            },
            "4": {
                "seconds": round(parallel_s, 3),
                "homes_per_sec": round(_HOMES / parallel_s, 1),
            },
        },
        "parent_peak_rss_mb": round(peak_rss_mb, 1),
        "parent_peak_rss_mb_per_1k_homes": round(
            peak_rss_mb / (_HOMES / 1000.0), 1
        ),
        "metrics": serial.metrics.to_dict(),
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {_OUT}")
    print(json.dumps(payload, indent=2))
