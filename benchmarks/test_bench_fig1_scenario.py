"""Bench: Figure 1 -- the typical CoReDA scenario.

Paper timeline: wrong tool (tea-cup) after step 1 -> 4-method prompt
at 13 s; praise at 23 s after the pot is used; 30 s stall after
pouring tea -> 3-method prompt at 71 s; praise and completion.  Exact
seconds depend on synthetic pacing; the bench asserts the structure
(ordering, trigger reasons, method counts, completion) and prints the
reconstructed timeline next to the paper's anchors.
"""

from repro.evalx.scenario import run_tea_scenario


def test_fig1_scenario(benchmark):
    result = benchmark.pedantic(run_tea_scenario, rounds=1, iterations=1)
    print("\n" + result.to_table())
    print(
        "paper anchors: wrong-tool prompt 13s, praise 23s, "
        "stall prompt 71s  |  measured: "
        f"{result.wrong_tool_prompt_time:.1f}s, "
        f"{result.first_praise_time:.1f}s, {result.stall_prompt_time:.1f}s"
    )
    assert result.structure_ok()
    assert result.completed
    # The wrong-tool prompt uses all four methods (text, picture,
    # green LED on target, red LED on the misused tool); the stall
    # prompt uses three (no tool is being misused).
    assert result.wrong_tool_methods == 4
    assert result.stall_methods == 3
    # The stall prompt comes ~30 s (the paper's "does not do anything
    # for 30s") after the last step activity.
    assert result.stall_prompt_time > result.first_praise_time + 30.0
