"""Bench: Table 2 -- Sensor and tool of ADL Step."""

from repro.evalx.hardware_table import table2_rows, table2_sensor_map


def test_table2_sensor_map(benchmark, paper_adls):
    table = benchmark(table2_sensor_map, paper_adls)
    print("\n" + table)
    rows = table2_rows(paper_adls)
    # Eight steps over the two evaluation ADLs, pressure only on the
    # electronic-pot -- exactly the paper's mapping.
    assert len(rows) == 8
    pressure_rows = [row for row in rows if row[2].startswith("Pressure")]
    assert pressure_rows == [
        ("tea-making", "Pour hot water into kettle", "Pressure on electronic-pot")
    ]
