"""Bench: the multi-routine extension (paper future-work item 1).

A dressing user with two personal routines: the multi-routine planner
identifies the routine in progress from the observed prefix and
predicts every following step; a single Q-table trained on the mixed
log cannot serve both routines.
"""

from repro.evalx.ablations import multi_routine_comparison


def test_multi_routine_dressing(benchmark):
    table = benchmark.pedantic(
        multi_routine_comparison,
        kwargs={"episodes_per_routine": 60},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    lines = [line for line in table.splitlines() if line.startswith("routine")]
    assert len(lines) == 2
    singles = []
    for line in lines:
        cells = [cell.strip() for cell in line.split("|")]
        multi, single = cells[1], cells[2]
        assert multi == "100%"
        singles.append(single)
    # The two dressing routines share the ⟨shirt, trousers⟩ state with
    # different successors; a single Q-table can only serve one of
    # them, so at least one routine must degrade.
    assert any(single != "100%" for single in singles)
