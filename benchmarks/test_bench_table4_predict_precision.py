"""Bench: Table 4 -- Predict precision of ADL step.

Paper: 30 test samples per ADL, the two reminder-trigger situations
equally examined; 100% precision on every step except the first
(untestable -- prediction needs a trigger).  This reproduction matches
it exactly.
"""

from repro.evalx.predict_precision import run_predict_precision

FIRST_STEPS = ("Put toothpaste on the brush", "Put tea-leaf into kettle")


def test_table4_predict_precision(benchmark, paper_adls):
    result = benchmark.pedantic(
        run_predict_precision,
        args=(paper_adls,),
        kwargs={"samples_per_adl": 30},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_table())
    assert len(result.rows) == 8
    for row in result.rows:
        if row.step_name in FIRST_STEPS:
            assert row.precision is None
        else:
            assert row.precision == 1.0
    tested = sum(row.trials or 0 for row in result.rows)
    assert tested == 60  # 30 per ADL
