"""Bench: Table 1 -- Hardware of PAVENET.

Static, but regenerated from the spec object the simulation actually
enforces (EEPROM byte budget, LED count), so doc/impl drift fails.
"""

from repro.evalx.hardware_table import table1_hardware
from repro.sensors.hardware import PAVENET_SPEC


def test_table1_hardware(benchmark):
    table = benchmark(table1_hardware)
    print("\n" + table)
    assert "Microchip PIC18LF4620" in table
    assert "ChipCon CC1000" in table
    assert PAVENET_SPEC.eeprom_bytes == 16 * 1024
    assert PAVENET_SPEC.led_count == 4
