"""Bench: Table 3 -- Extract precision of ADL step.

Paper: 320 samples (40 per tool), per-step precision 80-100%, the two
short steps lowest ("Pour hot water into kettle" 80%, "Dry with a
towel" 85%).  Shape asserted: long vigorous steps >= 90%, the pour is
the global minimum, both short steps miss sometimes.
"""

from repro.evalx.extract_precision import run_extract_precision

SHORT_STEPS = ("Pour hot water into kettle", "Dry with a towel")


def test_table3_extract_precision(benchmark, paper_adls):
    result = benchmark.pedantic(
        run_extract_precision,
        args=(paper_adls,),
        kwargs={"samples_per_step": 40, "seed": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.to_table())
    assert len(result.rows) == 8
    assert sum(row.trials for row in result.rows) == 320

    pour = result.row_for("Pour hot water into kettle").precision
    towel = result.row_for("Dry with a towel").precision
    long_steps = [
        row.precision for row in result.rows if row.step_name not in SHORT_STEPS
    ]
    assert all(precision >= 0.9 for precision in long_steps)
    assert pour <= min(long_steps)
    assert 0.6 <= pour < 1.0
    assert 0.6 <= towel < 1.0
