"""Bench: Figure 4 -- the TD(λ) Q-learning curve.

Paper: 120 training samples per ADL; convergence at the 95% criterion
after 49 (tooth-brushing) / 56 (tea-making) iterations and at 98%
after 91 / 98.  Single-run numbers are seed noise, so the bench runs
a seed set and asserts the shape: every seed converges within the
120-sample budget at both criteria, 98% needs at least as many
iterations as 95% (strictly more on average), and the mean 95% figure
falls in the paper's tens-of-iterations band.
"""

from repro.core.metrics import mean
from repro.evalx.learning_curve import run_learning_curve

SEEDS = tuple(range(10))


def _run_both(paper_adls):
    return [
        run_learning_curve(definition.adl, episodes=120, seeds=SEEDS)
        for definition in paper_adls
    ]


def test_fig4_learning_curve(benchmark, paper_adls):
    results = benchmark.pedantic(
        _run_both, args=(paper_adls,), rounds=1, iterations=1
    )
    for result in results:
        print("\n" + result.to_table())
        print(result.representative_plot())
        assert result.convergence_rate(0.95) == 1.0
        assert result.convergence_rate(0.98) == 1.0
        mean_95 = mean(result.converged_iterations(0.95))
        mean_98 = mean(result.converged_iterations(0.98))
        assert 10 <= mean_95 <= 80
        assert mean_98 > mean_95
        assert max(result.converged_iterations(0.98)) <= 120
        for run in result.runs:
            assert run.curve.greedy_accuracy[-1] == 1.0
            # Care principle 2: the converged policy prompts minimally.
            assert run.curve.minimal_fraction[-1] == 1.0
