"""Ablation bench: the correctness-contingent reward interpretation.

DESIGN.md documents the one interpretive step the reproduction takes:
the paper's 1000/100/50 rewards must be paid only when the prompt is
*followed into the observed next step*.  This bench is the evidence:
with wrong prompts paid 0 the policy learns the routine perfectly;
paying wrong prompts like correct ones (100) destroys the learning
signal entirely.
"""

from repro.evalx.ablations import wrong_reward_sweep


def test_ablation_wrong_reward(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        wrong_reward_sweep,
        args=(adl,),
        kwargs={"wrong_rewards": (0.0, 50.0, 100.0), "seeds": tuple(range(5))},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    accuracies = {}
    for line in table.splitlines():
        cells = [cell.strip() for cell in line.split("|")]
        if len(cells) == 2 and cells[0].replace(".", "").isdigit():
            accuracies[float(cells[0])] = float(cells[1].rstrip("%")) / 100
    assert accuracies[0.0] == 1.0
    # Paying unfollowed prompts the full correct-prompt amount removes
    # the signal; accuracy collapses toward chance.
    assert accuracies[100.0] < 0.7
    assert accuracies[100.0] < accuracies[0.0]
