"""Substrate microbenchmarks: kernel, detector, Q-update throughput.

These benches time the hot loops everything else is built on.  The
assertions are generous sanity floors (the real output is the timing
report pytest-benchmark prints); the paper ran its planner on a 2005
laptop, so throughput is not a bottleneck anywhere.
"""

import numpy as np

from repro.planning.action import action_space
from repro.planning.state import episode_states
from repro.planning.trainer import RoutineTrainer
from repro.rl.tdlambda import TDLambdaQLearner
from repro.sensors.detector import KofNDetector
from repro.sim.kernel import Simulator


def test_kernel_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.1, tick)

        sim.schedule(0.1, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 10_000


def test_detector_sample_throughput(benchmark):
    rng = np.random.default_rng(0)
    samples = rng.random(100_000) * 0.8  # below threshold

    def run():
        detector = KofNDetector(threshold=1.0, k=3, n=10)
        return detector.observe_trace(samples)

    detections = benchmark(run)
    assert detections == 0


def test_q_update_throughput(benchmark):
    learner = TDLambdaQLearner(learning_rate=0.1, discount=0.9, trace_decay=0.7)
    actions = list(range(8))

    def run():
        for i in range(1_000):
            state = (i % 5, (i + 1) % 5)
            next_state = ((i + 1) % 5, (i + 2) % 5)
            learner.observe(
                state, i % 8, 1.0, next_state, actions, done=(i % 4 == 3)
            )
        return learner.updates

    assert benchmark(run) > 0


def test_full_training_run_time(benchmark, registry):
    """Time one paper-scale training run (120 episodes, tea-making)."""
    adl = registry.get("tea-making").adl
    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * 120

    def run():
        trainer = RoutineTrainer(adl, rng=np.random.default_rng(0))
        return trainer.train(log, routine=routine)

    result = benchmark(run)
    assert result.curve.greedy_accuracy[-1] == 1.0


def test_state_action_space_construction(benchmark, registry):
    adl = registry.get("dressing").adl  # the largest ADL (6 steps)

    def run():
        return len(action_space(adl)) + len(episode_states(adl.step_ids))

    assert benchmark(run) == 12 + 6
