"""Ablation bench: Watkins Q(λ) vs SARSA(λ) on logged routine data.

CoReDA trains *off-policy* from logged episodes (the user's recorded
routine runs), which is exactly Q-learning's regime.  On-policy
SARSA(λ) lacks the strict trace cut and lets wrong-prompt TD errors
bleed into correct pairs, so it underperforms on the same logs --
evidence for the paper's choice of Q-learning.
"""

from repro.evalx.ablations import sarsa_comparison


def test_ablation_sarsa(benchmark, registry):
    adl = registry.get("tea-making").adl
    table = benchmark.pedantic(
        sarsa_comparison,
        args=(adl,),
        kwargs={"seeds": tuple(range(8))},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    lines = table.splitlines()
    q_row = next(line for line in lines if line.startswith("Watkins"))
    sarsa_row = next(line for line in lines if line.startswith("SARSA"))
    q_cells = [cell.strip() for cell in q_row.split("|")]
    assert q_cells[2] == "100%"
    accuracy = float(
        sarsa_row.split("accuracy")[1].split(")")[0].strip().rstrip("%")
    ) / 100
    assert accuracy < 1.0
