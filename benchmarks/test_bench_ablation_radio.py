"""Ablation bench: radio frame loss vs end-to-end extract precision.

A frame survives if *any* ARQ attempt's data half crosses the air
(a lost ack only causes a duplicate, which the base station filters),
so with 4 attempts even 40% loss leaves ~97% of frames delivered.
Only extreme loss rates erode the mean extract precision.
"""

from repro.evalx.ablations import radio_sweep

LOSS_RATES = (0.0, 0.05, 0.4, 0.8)


def _parse(table):
    rows = {}
    for line in table.splitlines():
        cells = [cell.strip() for cell in line.split("|")]
        if len(cells) == 2 and cells[0].endswith("%") and "loss" not in cells[0]:
            rows[float(cells[0].rstrip("%")) / 100] = (
                float(cells[1].rstrip("%")) / 100
            )
    return rows


def test_ablation_radio(benchmark, registry):
    definition = registry.get("tea-making")
    table = benchmark.pedantic(
        radio_sweep,
        args=(definition,),
        kwargs={"loss_rates": LOSS_RATES, "samples_per_step": 25, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    rows = _parse(table)
    assert set(rows) == set(LOSS_RATES)
    # ARQ absorbs even heavy loss (within sampling noise).
    assert abs(rows[0.05] - rows[0.0]) <= 0.05
    assert abs(rows[0.4] - rows[0.0]) <= 0.08
    # Extreme loss finally erodes precision.
    assert rows[0.8] < rows[0.0]
