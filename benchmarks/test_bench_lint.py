"""Bench: the whole-program analyzer over the full source tree.

The linter runs in the tier-1 gate on every test invocation, so its
own cost is a tax on every CI cycle.  This bench times the complete
two-pass run (parse + per-module rules + ProjectIndex + call graph +
cross-module rules) over all of ``src/repro`` and asserts the 5 s
budget, plus an index-only measurement so a regression can be
attributed to pass 1 or pass 2.  Results land in ``BENCH_lint.json``
at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.core import ModuleContext, iter_python_files
from repro.analysis.index import ProjectIndex

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src" / "repro"
_OUT = _ROOT / "BENCH_lint.json"

#: Wall-clock ceiling for one full-tree lint (all rules, both passes).
FULL_TREE_BUDGET_S = 5.0


def test_bench_full_tree_lint():
    # Warm-up run loads the rule modules so the measured pass times
    # analysis, not imports.
    lint_paths([str(_SRC)])

    start = time.perf_counter()
    report = lint_paths([str(_SRC)])
    full_s = time.perf_counter() - start
    assert not report.active, "bench requires a clean tree"
    assert report.files_checked > 50

    files = iter_python_files([str(_SRC)])
    sources = [(str(f), f.read_text("utf-8")) for f in files]

    start = time.perf_counter()
    modules = [ModuleContext(path, source) for path, source in sources]
    parse_s = time.perf_counter() - start

    start = time.perf_counter()
    project = ProjectIndex(modules)
    graph = project.callgraph()
    index_s = time.perf_counter() - start

    document = {
        "files": report.files_checked,
        "functions_indexed": len(project.functions),
        "callgraph_sites": sum(len(v) for v in graph.sites.values()),
        "full_tree_s": round(full_s, 4),
        "parse_s": round(parse_s, 4),
        "index_and_callgraph_s": round(index_s, 4),
        "budget_s": FULL_TREE_BUDGET_S,
    }
    _OUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"\nBENCH lint: {json.dumps(document, indent=2)}")

    assert full_s < FULL_TREE_BUDGET_S, (
        f"full-tree lint took {full_s:.2f}s, budget {FULL_TREE_BUDGET_S}s"
    )
