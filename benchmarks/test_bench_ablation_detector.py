"""Ablation bench: the 3-of-10 usage-detection rule.

The paper chose 3-of-10 "to protect detection against accidental
operation".  Sweeping k shows the trade: k=1 detects short handling
almost always but is the most exposed to noise spikes; k=5 misses most
short uses.  k=3 keeps idle false triggers at zero while detecting the
hardest (towel-profile) step most of the time.
"""

from repro.evalx.ablations import detector_sweep


def _parse(table):
    rows = {}
    for line in table.splitlines():
        cells = [cell.strip() for cell in line.split("|")]
        if len(cells) == 3 and "-of-" in cells[0]:
            detection = float(cells[1].rstrip("%")) / 100
            false_per_min = float(cells[2].split("/")[0])
            rows[cells[0]] = (detection, false_per_min)
    return rows


def test_ablation_detector(benchmark):
    table = benchmark.pedantic(
        detector_sweep,
        kwargs={"ks": (1, 2, 3, 5), "trials": 400, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print("\n" + table)
    rows = _parse(table)
    assert set(rows) == {"1-of-10", "2-of-10", "3-of-10", "5-of-10"}
    # Detection of short handling decreases monotonically with k.
    detections = [rows[f"{k}-of-10"][0] for k in (1, 2, 3, 5)]
    assert detections == sorted(detections, reverse=True)
    # The paper's operating point: good detection, zero idle noise.
    detection_3, false_3 = rows["3-of-10"]
    assert detection_3 >= 0.75
    assert false_3 == 0.0
    # k=5 cripples short-step detection.
    assert rows["5-of-10"][0] < 0.5
