"""Figure 1, live: Mr. Tanaka's guided tea-making episode.

Run with::

    python examples/tea_making_scenario.py

Replays the paper's typical scenario end to end -- wrong tool after
step 1 (prompted with all four methods), praise on recovery, a 30 s
stall before the final step (prompted with three methods), praise and
completion -- and prints the reconstructed timeline next to the
paper's anchor times.
"""

from repro.evalx.scenario import run_tea_scenario

PAPER_ANCHORS = [
    (13.0, "wrong-tool prompt (text + picture + green LED + red LED)"),
    (23.0, "praise after correctly using the electronic-pot"),
    (71.0, "stall prompt after 30 s of inactivity (3 methods)"),
]


def main() -> None:
    result = run_tea_scenario()
    print(result.to_table())
    print()
    print("Paper anchors vs this run:")
    measured = [
        result.wrong_tool_prompt_time,
        result.first_praise_time,
        result.stall_prompt_time,
    ]
    for (paper_time, label), time in zip(PAPER_ANCHORS, measured):
        print(f"  paper {paper_time:5.1f}s | measured {time:5.1f}s | {label}")
    print()
    status = "PASS" if result.structure_ok() else "FAIL"
    print(f"Figure 1 structural check: {status}")


if __name__ == "__main__":
    main()
