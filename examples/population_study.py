"""Cohort study: CoReDA across a care-home population.

Run with::

    python examples/population_study.py

The paper's partner NPO cares for 25 dementia patients aged 72-91.
This example generates a comparable synthetic cohort -- each member
with their own personal routine, dementia severity and prompt
compliance -- trains one CoReDA instance per resident on *their*
routine (care principle 1), runs guided episodes, and reports how
reminder load scales with severity.
"""

from repro import CoReDA, CoReDAConfig
from repro.adls import default_registry
from repro.core.metrics import mean
from repro.resident.population import generate_population
from repro.resident.routines import training_episodes
from repro.sim.random import RandomStreams

COHORT_SIZE = 12
EPISODES_PER_RESIDENT = 3


def main() -> None:
    definition = default_registry().get("tea-making")
    cohort = generate_population(
        definition.adl, COHORT_SIZE, RandomStreams(2024)
    )

    print(f"Cohort: {len(cohort)} residents, ages "
          f"{min(p.age for p in cohort)}-{max(p.age for p in cohort)}")
    print()
    print(f"{'resident':<14}{'age':>4}{'severity':>10}{'routine':>22}"
          f"{'reminders/ep':>14}{'completed':>11}")

    by_severity = []
    for index, profile in enumerate(cohort):
        system = CoReDA.build(definition, CoReDAConfig(seed=100 + index))
        system.train_offline(
            routine=profile.routine,
            episode_log=training_episodes(profile.routine, 120),
        )
        reliable = {
            step.step_id: max(step.handling_duration, 5.0)
            for step in definition.adl.steps
        }
        completed = 0
        reminder_counts = []
        for episode in range(EPISODES_PER_RESIDENT):
            resident = system.create_resident(
                routine=profile.routine,
                dementia=profile.dementia,
                compliance=profile.compliance,
                handling_overrides=reliable,
                name=f"{profile.name}-ep{episode}",
            )
            outcome = system.run_episode(resident, horizon=3600.0)
            completed += int(outcome.completed)
            reminder_counts.append(outcome.reminders_seen)
        per_episode = mean(reminder_counts)
        by_severity.append((profile.severity, per_episode))
        routine_text = "-".join(str(s) for s in profile.routine.step_ids)
        print(f"{profile.name:<14}{profile.age:>4}{profile.severity:>10.2f}"
              f"{routine_text:>22}{per_episode:>14.1f}"
              f"{completed:>8}/{EPISODES_PER_RESIDENT}")

    print()
    mild = [r for severity, r in by_severity if severity < 0.45]
    severe = [r for severity, r in by_severity if severity >= 0.45]
    if mild and severe:
        print(f"mean reminders/episode, mild cohort   (<0.45): {mean(mild):.1f}")
        print(f"mean reminders/episode, severe cohort (>=0.45): {mean(severe):.1f}")
        print("Reminder load grows with severity -- the system takes over "
              "exactly as much prompting as each resident needs.")


if __name__ == "__main__":
    main()
