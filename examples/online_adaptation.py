"""Online adaptation: the system follows a changing routine.

Run with::

    python examples/online_adaptation.py

Section 3.2 of the paper: "we can set the parameters ... to make the
learning update all the while instead of converging.  By doing this,
CoReDA can always learn the newest routines of a user."  This example
shows it live: the system is trained on Mr. Tanaka's old tea-making
routine, he then switches the order of two steps, and over a handful
of live episodes the deployed policy re-learns -- watch the drift
signal dip and recover and the prompts switch over.
"""

from repro import CoReDA, CoReDAConfig, Routine
from repro.adls import default_registry
from repro.adls.tea_making import KETTLE, POT, TEABOX, TEACUP

RELIABLE = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}


def main() -> None:
    definition = default_registry().get("tea-making")
    adl = definition.adl
    old_routine = adl.canonical_routine()                 # 1,2,3,4
    new_routine = Routine(adl, [TEABOX.tool_id, KETTLE.tool_id,
                                POT.tool_id, TEACUP.tool_id])  # 1,3,2,4

    system = CoReDA.build(definition, CoReDAConfig(seed=17))
    system.train_offline(routine=old_routine, episodes=120)
    adaptation = system.enable_online_adaptation()

    def show_policy(label):
        after_teabox = system.predictor.predict_next_tool(0, TEABOX.tool_id)
        print(f"{label}: after the tea-box the system prompts "
              f"'{adl.tool(after_teabox).name}'")

    show_policy("before the habit change")
    print("\nMr. Tanaka changes his habit: kettle before pot.\n")
    print(f"{'episode':>8}{'drift signal':>14}{'episodes learned':>18}")
    for index in range(14):
        resident = system.create_resident(
            routine=new_routine,
            handling_overrides=RELIABLE,
            name=f"tanaka-{index}",
        )
        system.run_episode(resident, horizon=3600.0)
        accuracy = adaptation.recent_accuracy
        print(f"{index:>8}{accuracy:>14.0%}{adaptation.episodes_learned:>18}")

    print()
    show_policy("after adaptation")
    followed = system.predictor.predict_next_tool(
        TEABOX.tool_id, KETTLE.tool_id
    )
    print(f"and after the kettle it prompts '{adl.tool(followed).name}' -- "
          "the new routine, learned simply by being lived.")


if __name__ == "__main__":
    main()
