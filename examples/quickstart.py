"""Quickstart: train CoReDA on tea-making and run a guided episode.

Run with::

    python examples/quickstart.py

Walks the full lifecycle: build the system for an ADL, learn the
user's routine from 120 recorded samples (the paper's training-set
size), then run a live episode in which the simulated resident makes
a mistake and is guided back by text + picture + LED reminders.
"""

from repro import CoReDA, CoReDAConfig
from repro.adls import default_registry
from repro.adls.tea_making import POT, TEACUP
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import ErrorKind, ScriptedError


def main() -> None:
    registry = default_registry()
    definition = registry.get("tea-making")

    print("=== 1. Build the system ===")
    system = CoReDA.build(definition, CoReDAConfig(seed=7))
    print(f"ADL: {definition.adl.name} with {len(definition.adl)} steps")
    print(f"Sensor nodes deployed: {sorted(system.network.nodes)}")

    print("\n=== 2. Learn the routine (TD-lambda Q-learning) ===")
    result = system.train_offline(episodes=120)
    for criterion, iteration in sorted(result.convergence.items()):
        print(f"converged at the {criterion:.0%} criterion after "
              f"{iteration} iterations")
    print(f"final greedy accuracy: {result.curve.greedy_accuracy[-1]:.0%}")
    print(f"minimal-prompt policy: {result.curve.minimal_fraction[-1]:.0%}")

    print("\n=== 3. A live episode with a wrong-tool error ===")
    resident = system.create_resident(
        compliance=ComplianceModel.perfect(),
        # After putting tea-leaf in the kettle, Mr. Tanaka incorrectly
        # grabs the tea-cup (the Figure 1 mistake).
        error_script={
            1: ScriptedError(ErrorKind.WRONG_TOOL, wrong_tool_id=TEACUP.tool_id)
        },
        handling_overrides={POT.tool_id: 6.0, TEACUP.tool_id: 5.0},
        error_use_duration=6.0,
        name="tanaka",
    )
    outcome = system.run_episode(resident)
    print(f"episode completed: {outcome.completed} "
          f"in {outcome.duration:.1f} simulated seconds")
    print(f"reminders delivered: {outcome.reminders_seen}, "
          f"followed: {outcome.reminders_followed}")

    print("\n=== 4. What the resident saw ===")
    for event in system.display.history:
        print(f"  t={event.time:6.1f}s  display: {event.text}")
    for reminder in system.reminding.reminders:
        print(f"  t={reminder.time:6.1f}s  {reminder.reason.name}: "
              f"{reminder.message}")


if __name__ == "__main__":
    main()
