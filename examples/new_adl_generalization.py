"""Generalization: deploy CoReDA on a brand-new ADL from scratch.

Run with::

    python examples/new_adl_generalization.py

The paper claims deploying on a new activity only needs "attach one
PAVENET to a tool, and configure its uid as the tool ID".  This
example proves the software equivalent: a *medication-taking* ADL is
defined right here -- tools, steps, signal profiles -- and the entire
pipeline (sensing, learning, prediction, reminding) works on it with
zero changes anywhere else.
"""

from repro import CoReDA, CoReDAConfig
from repro.adls.library import ADLDefinition
from repro.core.adl import ADL, ADLStep, SensorType, Tool
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import ErrorKind, ScriptedError
from repro.sensors.signals import SignalProfile

# --- the whole deployment definition -----------------------------------
PILLBOX = Tool(51, "pill-box", SensorType.ACCELEROMETER, picture="pillbox.png")
BOTTLE = Tool(52, "water-bottle", SensorType.ACCELEROMETER, picture="bottle.png")
GLASS = Tool(53, "glass", SensorType.ACCELEROMETER, picture="glass.png")
DIARY = Tool(54, "medication-diary", SensorType.ACCELEROMETER,
             picture="diary.png")


def medication_definition() -> ADLDefinition:
    adl = ADL(
        "medication-taking",
        [
            ADLStep("Take pills from the pill-box", PILLBOX,
                    typical_duration=8.0, handling_duration=4.0),
            ADLStep("Pour water from the bottle", BOTTLE,
                    typical_duration=6.0, handling_duration=3.0),
            ADLStep("Drink with the glass", GLASS,
                    typical_duration=7.0, handling_duration=3.5),
            ADLStep("Tick the medication diary", DIARY,
                    typical_duration=6.0, handling_duration=2.5),
        ],
    )
    profiles = {
        PILLBOX.tool_id: SignalProfile(burst_probability=0.45),
        BOTTLE.tool_id: SignalProfile(burst_probability=0.40),
        GLASS.tool_id: SignalProfile(burst_probability=0.35),
        DIARY.tool_id: SignalProfile(burst_probability=0.30),
    }
    return ADLDefinition(adl=adl, signal_profiles=profiles)
# ------------------------------------------------------------------------


def main() -> None:
    definition = medication_definition()
    print(f"New ADL defined: {definition.adl.name}")
    for step in definition.adl.steps:
        print(f"  step {step.step_id}: {step.name} "
              f"({step.tool.sensor.value} on {step.tool.name})")

    system = CoReDA.build(definition, CoReDAConfig(seed=3))
    result = system.train_offline(episodes=120)
    print(f"\nroutine learned: converged at 95% after "
          f"{result.convergence[0.95]} iterations")

    resident = system.create_resident(
        compliance=ComplianceModel.perfect(),
        # Forgets to tick the diary after drinking.
        error_script={3: ScriptedError(ErrorKind.STALL)},
        handling_overrides={tool_id: 5.0 for tool_id in (51, 52, 53, 54)},
        name="new-user",
    )
    outcome = system.run_episode(resident)
    print(f"guided episode completed: {outcome.completed}, "
          f"reminders: {outcome.reminders_seen}")
    for reminder in system.reminding.reminders:
        print(f"  t={reminder.time:5.1f}s {reminder.reason.name}: "
              f"{reminder.message}")
    print("\nNo code outside this file changed -- the pipeline is "
          "ADL-agnostic, as the paper claims.")


if __name__ == "__main__":
    main()
