"""Future-work item 1, implemented: multi-routine dressing.

Run with::

    python examples/multi_routine_dressing.py

The paper: "for some ADLs, such as dressing, one user may have
multiple routines to complete it."  This example trains the
multi-routine planner on a mixed log of two dressing routines,
identifies which routine is in progress from the first observed
steps, and guides each one correctly -- then shows why a single
Q-table cannot (the two routines share a state with different
successors).
"""

import numpy as np

from repro.adls.dressing import dressing_definition, dressing_routines
from repro.planning.multi_routine import MultiRoutinePlanner
from repro.planning.state import episode_states
from repro.planning.trainer import RoutineTrainer


def main() -> None:
    definition = dressing_definition()
    adl = definition.adl
    routine_a, routine_b = dressing_routines(adl)

    def names(step_ids):
        return " -> ".join(adl.step(s).tool.name for s in step_ids)

    print("Routine A:", names(routine_a.step_ids))
    print("Routine B:", names(routine_b.step_ids))

    log = [list(routine_a.step_ids)] * 60 + [list(routine_b.step_ids)] * 60
    rng = np.random.default_rng(0)
    mixed = [log[i] for i in rng.permutation(len(log))]

    print("\n=== Multi-routine planner ===")
    planner = MultiRoutinePlanner(adl, rng=np.random.default_rng(1))
    clusters = planner.train(mixed)
    for cluster in clusters:
        print(f"discovered routine {list(cluster.routine.step_ids)} "
              f"(support {cluster.support} episodes)")

    for label, routine in (("A", routine_a), ("B", routine_b)):
        steps = list(routine.step_ids)
        posterior = planner.posterior(steps[:1])
        confidence = posterior[planner.identify(steps[:1])]
        correct = sum(
            planner.predict(steps[: i + 1]).tool_id == steps[i + 1]
            for i in range(len(steps) - 1)
        )
        print(f"routine {label}: identified from first step "
              f"(P={confidence:.2f}), predictions {correct}/{len(steps) - 1}")

    print("\n=== Single Q-table on the same mixed log ===")
    trainer = RoutineTrainer(adl, rng=np.random.default_rng(2))
    result = trainer.train(mixed, routine=routine_a)
    for label, routine in (("A", routine_a), ("B", routine_b)):
        steps = list(routine.step_ids)
        states = episode_states(steps)
        correct = sum(
            trainer.learner.greedy_action(states[i], trainer.actions).tool_id
            == steps[i + 1]
            for i in range(len(steps) - 1)
        )
        print(f"routine {label}: predictions {correct}/{len(steps) - 1}")
    shared = episode_states(list(routine_a.step_ids))[2]
    print(f"\nThe routines share state {shared} with different successors -- "
          "one Q-table cannot serve both, the multi-routine planner can.")


if __name__ == "__main__":
    main()
