"""Field training: the system learns from what it watched.

Run with::

    python examples/field_training.py

A real deployment has no curated training file -- it has the
continuous detection stream its own sensors recorded.  This example
runs the full field flow:

1. **Watch** — the system is deployed with sensing only; Mrs. Sato
   makes tea her own way (kettle before pot!) for two weeks of
   episodes, unaided.
2. **Learn** — the continuous usage history is segmented into
   episodes at idle gaps, her routine is inferred as the modal
   complete episode, gappy episodes are HMM-repaired, and TD(λ)
   Q-learning trains on the result.
3. **Guide** — from then on she is prompted only when she errs.
"""

from repro import CoReDA, CoReDAConfig, Routine
from repro.adls import default_registry
from repro.adls.tea_making import KETTLE, POT, TEABOX, TEACUP
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import ErrorKind, ScriptedError

RELIABLE = {POT.tool_id: 6.0, TEACUP.tool_id: 5.0}


def main() -> None:
    definition = default_registry().get("tea-making")
    adl = definition.adl
    her_routine = Routine(adl, [TEABOX.tool_id, KETTLE.tool_id,
                                POT.tool_id, TEACUP.tool_id])

    system = CoReDA.build(definition, CoReDAConfig(seed=88))

    print("=== Phase 1: watch (sensing only, no guidance) ===")
    for index in range(14):
        resident = system.create_resident(
            routine=her_routine,
            handling_overrides=RELIABLE,
            name=f"sato-day{index}",
        )
        system.observe_episode(resident)
        system.sim.run_until(system.sim.now + 300.0)  # rest of the day
    print(f"observed {len(system.sensing.history)} tool detections "
          f"over 14 unaided episodes")

    print("\n=== Phase 2: learn from the recorded history ===")
    result = system.train_from_history()
    names = " -> ".join(adl.tool(s).name for s in result.routine.step_ids)
    print(f"inferred routine: {names}")
    print(f"converged at 95% after {result.convergence[0.95]} iterations")

    print("\n=== Phase 3: guide ===")
    resident = system.create_resident(
        routine=her_routine,
        compliance=ComplianceModel.perfect(),
        # She forgets the pot after the kettle one day...
        error_script={2: ScriptedError(ErrorKind.STALL)},
        handling_overrides=RELIABLE,
        name="sato-guided",
    )
    outcome = system.run_episode(resident)
    print(f"guided episode completed: {outcome.completed}, "
          f"reminders followed: {outcome.reminders_followed}")
    for reminder in system.reminding.reminders:
        print(f"  t={reminder.time:8.1f}s {reminder.reason.name}: "
              f"{reminder.message}")
    print("\nThe prompt names the electronic-pot -- *her* third step, "
          "learned purely from observation.")


if __name__ == "__main__":
    main()
