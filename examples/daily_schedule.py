"""A care-home day: several ADLs, one resident, one simulated world.

Run with::

    python examples/daily_schedule.py

Deploys CoReDA for three activities at once (tooth-brushing in the
morning, tea in the afternoon, hand-washing before dinner), trains
each on the resident's routine, runs the scheduled day on a shared
simulated clock, and prints the per-activity caregiver reports the
care team would read in the evening.
"""

from repro.core.config import CoReDAConfig
from repro.core.home import CareHome, ScheduledActivity
from repro.adls import default_registry
from repro.resident.dementia import DementiaProfile

MORNING = 8 * 3600.0
AFTERNOON = 15 * 3600.0
EVENING = 18 * 3600.0


def main() -> None:
    registry = default_registry()
    home = CareHome(
        [
            registry.get("tooth-brushing"),
            registry.get("tea-making"),
            registry.get("hand-washing"),
        ],
        CoReDAConfig(seed=42),
    )
    print("Training all deployments (120 episodes each)...")
    home.train_all()

    schedule = [
        ScheduledActivity("tooth-brushing", start_at=MORNING),
        ScheduledActivity("tea-making", start_at=AFTERNOON),
        ScheduledActivity("hand-washing", start_at=EVENING),
    ]
    print("Running the scheduled day (moderate dementia)...\n")
    result = home.run_day(
        schedule, dementia=DementiaProfile.from_severity(0.5)
    )

    for adl_name, outcome in result.outcomes:
        status = "completed" if outcome.completed else "ABANDONED"
        print(f"  {adl_name:<16} {status} in {outcome.duration:6.1f}s "
              f"with {outcome.reminders_seen} reminder(s)")
    print(f"\nDay total: {result.completed}/{len(result.outcomes)} activities, "
          f"{result.total_reminders} reminders, "
          f"clock now at {home.sim.now / 3600:.1f}h\n")

    for report in home.caregiver_reports():
        print(report.to_text())
        print()


if __name__ == "__main__":
    main()
