PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-sarif lint-bench test bench fleet-bench kernel-bench inference-bench report

lint:
	$(PYTHON) -m repro lint src/repro --baseline lint-baseline.json

lint-sarif:
	$(PYTHON) -m repro lint src/repro --baseline lint-baseline.json --format sarif > lint.sarif

lint-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_lint.py --benchmark-only -s

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regenerates BENCH_fleet.json: scaling vs --jobs, the policy-plane
# section (shm arena vs json reference), and the /dev/shm leak scan.
fleet-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_fleet.py --benchmark-only -s

kernel-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py --benchmark-only -s

inference-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_rl.py -k batched_inference --benchmark-only -s

report:
	$(PYTHON) -m repro report
