PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench report

lint:
	$(PYTHON) -m repro lint src/repro

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro report
