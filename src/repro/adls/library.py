"""The ADL registry.

Generalizing CoReDA to a new activity is (per the paper) just
"attach one PAVENET to a tool, and configure its uid as the tool ID".
In the reproduction that means: define the ADL's steps, tools and
signal profiles in one module and register it here.  Everything else
-- sensing, planning, reminding, evaluation -- is ADL-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.adl import ADL
from repro.core.errors import UnknownADLError
from repro.sensors.signals import SignalProfile

__all__ = ["ADLDefinition", "ADLRegistry", "default_registry"]


@dataclass(frozen=True)
class ADLDefinition:
    """An ADL plus its per-tool sensor signal profiles."""

    adl: ADL
    signal_profiles: Dict[int, SignalProfile] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.adl.name


class ADLRegistry:
    """Name -> definition lookup with lazy construction."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], ADLDefinition]] = {}
        self._cache: Dict[str, ADLDefinition] = {}

    def register(self, name: str, factory: Callable[[], ADLDefinition]) -> None:
        """Register a definition factory under ``name``."""
        if name in self._factories:
            raise ValueError(f"ADL {name!r} is already registered")
        self._factories[name] = factory

    def get(self, name: str) -> ADLDefinition:
        """The definition for ``name`` (built once, then cached)."""
        if name not in self._factories:
            raise UnknownADLError(
                f"unknown ADL {name!r}; registered: {self.names()}"
            )
        if name not in self._cache:
            self._cache[name] = self._factories[name]()
        return self._cache[name]

    def names(self) -> List[str]:
        """All registered ADL names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


def default_registry() -> ADLRegistry:
    """A registry with every ADL shipped in this package.

    The paper's two evaluation ADLs (tea-making, tooth-brushing) plus
    the generalization set (hand-washing, dressing, coffee-making).
    """
    # Imported here to avoid import cycles (ADL modules import nothing
    # from this module, but keeping registration central reads best).
    from repro.adls.coffee_making import coffee_making_definition
    from repro.adls.dressing import dressing_definition
    from repro.adls.hand_washing import hand_washing_definition
    from repro.adls.tea_making import tea_making_definition
    from repro.adls.tooth_brushing import tooth_brushing_definition

    registry = ADLRegistry()
    registry.register("tea-making", tea_making_definition)
    registry.register("tooth-brushing", tooth_brushing_definition)
    registry.register("hand-washing", hand_washing_definition)
    registry.register("dressing", dressing_definition)
    registry.register("coffee-making", coffee_making_definition)
    return registry
