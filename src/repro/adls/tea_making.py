"""The tea-making ADL (paper Table 2, Figure 1).

Mr. Tanaka's four steps:

1. put tea-leaf into kettle        -- accelerometer on tea-box
2. pour hot water into kettle      -- pressure sensor on electronic-pot
3. pour tea into tea cup           -- accelerometer on kettle
4. drink a cup of tea              -- accelerometer on tea-cup

Signal profiles are calibrated so the end-to-end extract precision
lands in the paper's Table 3 bands: the brief pour from the
electronic-pot is the hardest step (paper: 80%), taking a sip from
the tea-cup is intermediate (90%), the rest detect essentially always.
"""

from __future__ import annotations

from repro.adls.library import ADLDefinition
from repro.core.adl import ADL, ADLStep, SensorType, Tool

from repro.sensors.signals import SignalProfile

__all__ = [
    "TEABOX",
    "POT",
    "KETTLE",
    "TEACUP",
    "make_tea_making",
    "tea_making_definition",
]

#: ToolIDs 1-4 (uid of the PAVENET attached to each tool).
TEABOX = Tool(1, "tea-box", SensorType.ACCELEROMETER, picture="teabox.png")
POT = Tool(2, "electronic-pot", SensorType.PRESSURE, picture="pot.png")
KETTLE = Tool(3, "kettle", SensorType.ACCELEROMETER, picture="kettle.png")
TEACUP = Tool(4, "tea-cup", SensorType.ACCELEROMETER, picture="teacup.png")


def make_tea_making() -> ADL:
    """The tea-making ADL with canonical (Figure 1) step order."""
    return ADL(
        "tea-making",
        [
            ADLStep(
                "Put tea-leaf into kettle",
                TEABOX,
                typical_duration=9.0,
                duration_sd=1.5,
                handling_duration=6.0,
            ),
            ADLStep(
                "Pour hot water into kettle",
                POT,
                typical_duration=8.0,
                duration_sd=1.5,
                handling_duration=1.5,
            ),
            ADLStep(
                "Pour tea into tea cup",
                KETTLE,
                typical_duration=8.0,
                duration_sd=1.5,
                handling_duration=5.0,
            ),
            ADLStep(
                "Drink a cup of tea",
                TEACUP,
                typical_duration=12.0,
                duration_sd=2.0,
                handling_duration=3.0,
            ),
        ],
    )


def tea_making_definition() -> ADLDefinition:
    """Tea-making plus calibrated per-tool signal profiles."""
    profiles = {
        # Shaking leaves out of the box: sustained moderate activity.
        TEABOX.tool_id: SignalProfile(burst_probability=0.45),
        # A single brief press on the pot: short, sparse pressure
        # bursts -- the paper's weakest step (80%).
        POT.tool_id: SignalProfile(burst_probability=0.30),
        # Lifting and tilting the kettle: strong activity.
        KETTLE.tool_id: SignalProfile(burst_probability=0.50),
        # Sipping: short gentle motions (paper: 90%).
        TEACUP.tool_id: SignalProfile(burst_probability=0.24),
    }
    return ADLDefinition(adl=make_tea_making(), signal_profiles=profiles)
