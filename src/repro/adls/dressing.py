"""The dressing ADL (generalization set, multi-routine).

Dressing is the paper's named example of an activity where "one user
may have multiple routines to complete it" (future-work item 1): some
days socks go on before trousers, some days after.  The multi-routine
planner is evaluated on this ADL with two alternative routines
sharing the same six tools.
"""

from __future__ import annotations

from typing import List

from repro.adls.library import ADLDefinition
from repro.core.adl import ADL, ADLStep, Routine, SensorType, Tool
from repro.sensors.signals import SignalProfile

__all__ = [
    "SHIRT",
    "TROUSERS",
    "SOCKS",
    "SHOES",
    "BELT",
    "JACKET",
    "make_dressing",
    "dressing_definition",
    "dressing_routines",
]

#: ToolIDs 31-36.
SHIRT = Tool(31, "shirt", SensorType.ACCELEROMETER, picture="shirt.png")
TROUSERS = Tool(32, "trousers", SensorType.ACCELEROMETER, picture="trousers.png")
SOCKS = Tool(33, "socks", SensorType.ACCELEROMETER, picture="socks.png")
SHOES = Tool(34, "shoes", SensorType.ACCELEROMETER, picture="shoes.png")
BELT = Tool(35, "belt", SensorType.ACCELEROMETER, picture="belt.png")
JACKET = Tool(36, "jacket", SensorType.ACCELEROMETER, picture="jacket.png")


def make_dressing() -> ADL:
    """The dressing ADL (canonical order: shirt first, jacket last)."""
    return ADL(
        "dressing",
        [
            ADLStep(
                "Put on the shirt",
                SHIRT,
                typical_duration=20.0,
                duration_sd=4.0,
                handling_duration=10.0,
            ),
            ADLStep(
                "Put on the trousers",
                TROUSERS,
                typical_duration=18.0,
                duration_sd=3.5,
                handling_duration=9.0,
            ),
            ADLStep(
                "Put on the socks",
                SOCKS,
                typical_duration=12.0,
                duration_sd=2.5,
                handling_duration=6.0,
            ),
            ADLStep(
                "Put on the shoes",
                SHOES,
                typical_duration=14.0,
                duration_sd=2.5,
                handling_duration=7.0,
            ),
            ADLStep(
                "Fasten the belt",
                BELT,
                typical_duration=8.0,
                duration_sd=1.5,
                handling_duration=4.0,
            ),
            ADLStep(
                "Put on the jacket",
                JACKET,
                typical_duration=15.0,
                duration_sd=3.0,
                handling_duration=8.0,
            ),
        ],
    )


def dressing_routines(adl: ADL) -> List[Routine]:
    """The two personal routines used by the multi-routine benches.

    Routine A dresses top-down (socks after trousers); routine B puts
    socks on first.  Both end with the jacket.
    """
    a = Routine(
        adl,
        [
            SHIRT.tool_id,
            TROUSERS.tool_id,
            SOCKS.tool_id,
            SHOES.tool_id,
            BELT.tool_id,
            JACKET.tool_id,
        ],
    )
    b = Routine(
        adl,
        [
            SOCKS.tool_id,
            SHIRT.tool_id,
            TROUSERS.tool_id,
            BELT.tool_id,
            SHOES.tool_id,
            JACKET.tool_id,
        ],
    )
    return [a, b]


def dressing_definition() -> ADLDefinition:
    """Dressing plus per-tool signal profiles."""
    profiles = {
        tool.tool_id: SignalProfile(burst_probability=0.45)
        for tool in (SHIRT, TROUSERS, SOCKS, SHOES, JACKET)
    }
    # Fastening a belt is quick and subtle.
    profiles[BELT.tool_id] = SignalProfile(burst_probability=0.32)
    return ADLDefinition(adl=make_dressing(), signal_profiles=profiles)
