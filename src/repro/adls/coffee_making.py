"""The coffee-making ADL (generalization set).

A five-step kitchen activity mixing sensor modalities (pressure on
the kettle switch, accelerometers elsewhere), used by the examples
and the generalization tests to show that deploying a brand-new ADL
requires nothing beyond this one definition module.
"""

from __future__ import annotations

from repro.adls.library import ADLDefinition
from repro.core.adl import ADL, ADLStep, SensorType, Tool
from repro.sensors.signals import SignalProfile

__all__ = [
    "COFFEE_JAR",
    "KETTLE_SWITCH",
    "MUG",
    "MILK",
    "SPOON",
    "make_coffee_making",
    "coffee_making_definition",
]

#: ToolIDs 41-45.
COFFEE_JAR = Tool(41, "coffee-jar", SensorType.ACCELEROMETER, picture="jar.png")
KETTLE_SWITCH = Tool(42, "kettle-switch", SensorType.PRESSURE, picture="switch.png")
MUG = Tool(43, "mug", SensorType.ACCELEROMETER, picture="mug.png")
MILK = Tool(44, "milk-carton", SensorType.ACCELEROMETER, picture="milk.png")
SPOON = Tool(45, "spoon", SensorType.ACCELEROMETER, picture="spoon.png")


def make_coffee_making() -> ADL:
    """The coffee-making ADL with canonical step order."""
    return ADL(
        "coffee-making",
        [
            ADLStep(
                "Spoon coffee into the mug",
                COFFEE_JAR,
                typical_duration=8.0,
                duration_sd=1.5,
                handling_duration=4.0,
            ),
            ADLStep(
                "Switch the kettle on",
                KETTLE_SWITCH,
                typical_duration=6.0,
                duration_sd=1.0,
                handling_duration=1.5,
            ),
            ADLStep(
                "Pour water into the mug",
                MUG,
                typical_duration=9.0,
                duration_sd=1.5,
                handling_duration=4.0,
            ),
            ADLStep(
                "Add milk",
                MILK,
                typical_duration=6.0,
                duration_sd=1.0,
                handling_duration=2.5,
            ),
            ADLStep(
                "Stir with the spoon",
                SPOON,
                typical_duration=7.0,
                duration_sd=1.2,
                handling_duration=4.0,
            ),
        ],
    )


def coffee_making_definition() -> ADLDefinition:
    """Coffee-making plus per-tool signal profiles."""
    profiles = {
        COFFEE_JAR.tool_id: SignalProfile(burst_probability=0.45),
        # A single press on the switch: brief, like the paper's
        # electronic-pot step.
        KETTLE_SWITCH.tool_id: SignalProfile(burst_probability=0.30),
        MUG.tool_id: SignalProfile(burst_probability=0.45),
        MILK.tool_id: SignalProfile(burst_probability=0.35),
        SPOON.tool_id: SignalProfile(burst_probability=0.50),
    }
    return ADLDefinition(adl=make_coffee_making(), signal_profiles=profiles)
