"""The ADL library: the paper's two ADLs plus the generalization set."""

from repro.adls.coffee_making import coffee_making_definition, make_coffee_making
from repro.adls.dressing import (
    dressing_definition,
    dressing_routines,
    make_dressing,
)
from repro.adls.hand_washing import hand_washing_definition, make_hand_washing
from repro.adls.library import ADLDefinition, ADLRegistry, default_registry
from repro.adls.tea_making import make_tea_making, tea_making_definition
from repro.adls.tooth_brushing import (
    make_tooth_brushing,
    tooth_brushing_definition,
)

__all__ = [
    "ADLDefinition",
    "ADLRegistry",
    "coffee_making_definition",
    "default_registry",
    "dressing_definition",
    "dressing_routines",
    "hand_washing_definition",
    "make_coffee_making",
    "make_dressing",
    "make_hand_washing",
    "make_tea_making",
    "make_tooth_brushing",
    "tea_making_definition",
    "tooth_brushing_definition",
]
