"""The hand-washing ADL (generalization set).

Hand washing is the activity Boger et al.'s MDP planner (the paper's
related work [1]) was built for; including it lets the baseline
comparison bench run CoReDA and the Boger-style planner on the same
scenario.  Five steps, all accelerometer-instrumented.
"""

from __future__ import annotations

from repro.adls.library import ADLDefinition
from repro.core.adl import ADL, ADLStep, SensorType, Tool
from repro.sensors.signals import SignalProfile

__all__ = [
    "FAUCET",
    "SOAP",
    "BRUSH_HW",
    "TOWEL_HW",
    "LOTION",
    "make_hand_washing",
    "hand_washing_definition",
]

#: ToolIDs 21-25.
FAUCET = Tool(21, "faucet", SensorType.MOTION, picture="faucet.png")
SOAP = Tool(22, "soap", SensorType.ACCELEROMETER, picture="soap.png")
BRUSH_HW = Tool(23, "nail-brush", SensorType.ACCELEROMETER, picture="nailbrush.png")
TOWEL_HW = Tool(24, "hand-towel", SensorType.ACCELEROMETER, picture="handtowel.png")
LOTION = Tool(25, "lotion", SensorType.ACCELEROMETER, picture="lotion.png")


def make_hand_washing() -> ADL:
    """The hand-washing ADL with canonical step order."""
    return ADL(
        "hand-washing",
        [
            ADLStep(
                "Turn on the faucet",
                FAUCET,
                typical_duration=5.0,
                duration_sd=1.0,
                handling_duration=2.0,
            ),
            ADLStep(
                "Lather with soap",
                SOAP,
                typical_duration=15.0,
                duration_sd=3.0,
                handling_duration=8.0,
            ),
            ADLStep(
                "Scrub with the nail brush",
                BRUSH_HW,
                typical_duration=10.0,
                duration_sd=2.0,
                handling_duration=6.0,
            ),
            ADLStep(
                "Dry with the hand towel",
                TOWEL_HW,
                typical_duration=8.0,
                duration_sd=1.5,
                handling_duration=3.0,
            ),
            ADLStep(
                "Apply lotion",
                LOTION,
                typical_duration=7.0,
                duration_sd=1.5,
                handling_duration=2.5,
            ),
        ],
    )


def hand_washing_definition() -> ADLDefinition:
    """Hand-washing plus per-tool signal profiles."""
    profiles = {
        FAUCET.tool_id: SignalProfile(burst_probability=0.40),
        SOAP.tool_id: SignalProfile(burst_probability=0.45),
        BRUSH_HW.tool_id: SignalProfile(burst_probability=0.50),
        TOWEL_HW.tool_id: SignalProfile(burst_probability=0.35),
        LOTION.tool_id: SignalProfile(burst_probability=0.30),
    }
    return ADLDefinition(adl=make_hand_washing(), signal_profiles=profiles)
