"""The tooth-brushing ADL (paper Table 2).

Four steps:

1. put toothpaste on the brush  -- accelerometer on the paste tube
2. brush the teeth              -- accelerometer on the brush
3. gargle with water            -- accelerometer on the cup
4. dry with a towel             -- accelerometer on the towel

The towel step is brief, making it the hardest to detect (paper
Table 3: 85%); squeezing the paste tube is also short (90%); brushing
and gargling are long, vigorous activities that always detect.
"""

from __future__ import annotations

from repro.adls.library import ADLDefinition
from repro.core.adl import ADL, ADLStep, SensorType, Tool
from repro.sensors.signals import SignalProfile

__all__ = [
    "PASTE_TUBE",
    "BRUSH",
    "CUP",
    "TOWEL",
    "make_tooth_brushing",
    "tooth_brushing_definition",
]

#: ToolIDs 11-14.
PASTE_TUBE = Tool(11, "paste-tube", SensorType.ACCELEROMETER, picture="paste.png")
BRUSH = Tool(12, "toothbrush", SensorType.ACCELEROMETER, picture="brush.png")
CUP = Tool(13, "cup", SensorType.ACCELEROMETER, picture="cup.png")
TOWEL = Tool(14, "towel", SensorType.ACCELEROMETER, picture="towel.png")


def make_tooth_brushing() -> ADL:
    """The tooth-brushing ADL with canonical step order."""
    return ADL(
        "tooth-brushing",
        [
            ADLStep(
                "Put toothpaste on the brush",
                PASTE_TUBE,
                typical_duration=7.0,
                duration_sd=1.2,
                handling_duration=2.5,
            ),
            ADLStep(
                "Brush the teeth",
                BRUSH,
                typical_duration=45.0,
                duration_sd=8.0,
                handling_duration=12.0,
            ),
            ADLStep(
                "Gargle with water",
                CUP,
                typical_duration=12.0,
                duration_sd=2.0,
                handling_duration=8.0,
            ),
            ADLStep(
                "Dry with a towel",
                TOWEL,
                typical_duration=6.0,
                duration_sd=1.0,
                handling_duration=1.8,
            ),
        ],
    )


def tooth_brushing_definition() -> ADLDefinition:
    """Tooth-brushing plus calibrated per-tool signal profiles."""
    profiles = {
        # A short squeeze of the tube (paper: 90%).
        PASTE_TUBE.tool_id: SignalProfile(burst_probability=0.27),
        # Vigorous, long brushing: always detected.
        BRUSH.tool_id: SignalProfile(burst_probability=0.50),
        # Filling, swirling and rinsing with the cup: long enough to
        # always detect.
        CUP.tool_id: SignalProfile(burst_probability=0.40),
        # A quick dab with the towel -- the hardest step (paper: 85%).
        TOWEL.tool_id: SignalProfile(burst_probability=0.30),
    }
    return ADLDefinition(adl=make_tooth_brushing(), signal_profiles=profiles)
