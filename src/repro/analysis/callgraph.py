"""A conservative call graph over the :class:`ProjectIndex`.

Edges are *resolved where the source is explicit* and
*over-approximated where it is not*:

* ``helper(...)`` -- a bare name resolves to the module-level ``def``
  of the same module, else to the import it was bound by
  (``from m import helper``).
* ``alias.helper(...)`` -- an attribute call on an imported module
  alias resolves into that module.
* ``self.helper(...)`` -- resolves to the method of the enclosing
  class.
* ``obj.helper(...)`` -- dynamic dispatch; resolves to *every*
  indexed method named ``helper`` (the by-name fallback).  This
  over-approximation is the right direction for the dataflow rules:
  VER001 asks "could this call mutate a Q buffer without bumping the
  version?" and PAR002 asks "could worker code reach a global
  write?", and both must answer yes unless the graph proves
  otherwise.

The graph is demand-built once per lint run and shared by every
cross-module rule; like the index classes it is registered in the
PERF001 hot-path manifest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.analysis.core import dotted_name
from repro.analysis.index import FunctionInfo, ProjectIndex

__all__ = ["CallGraph", "CallSite"]

FuncKey = Tuple[str, str]


class CallSite:
    """One call expression linking a caller to resolved callees."""

    __slots__ = ("caller", "node", "callees")

    def __init__(
        self,
        caller: FunctionInfo,
        node: ast.Call,
        callees: Tuple[FunctionInfo, ...],
    ) -> None:
        self.caller = caller
        self.node = node
        self.callees = callees

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        targets = ",".join(c.qualname for c in self.callees)
        return f"CallSite({self.caller.qualname} -> {targets})"


class CallGraph:
    """Caller/callee adjacency over every indexed function."""

    __slots__ = ("project", "sites", "_callers", "_callees")

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        #: Every call site, grouped by calling function.
        self.sites: Dict[FuncKey, List[CallSite]] = {}
        self._callers: Dict[FuncKey, List[CallSite]] = {}
        self._callees: Dict[FuncKey, List[FuncKey]] = {}
        for info in project.iter_functions():
            self._link_function(info)

    # ------------------------------------------------------------------
    # construction

    def _link_function(self, info: FunctionInfo) -> None:
        sites: List[CallSite] = []
        for node in _own_calls(info.node):
            callees = tuple(self.resolve_call(info, node))
            site = CallSite(info, node, callees)
            sites.append(site)
            for callee in callees:
                self._callers.setdefault(callee.key, []).append(site)
                self._callees.setdefault(info.key, []).append(callee.key)
        self.sites[info.key] = sites

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> List[FunctionInfo]:
        """The indexed functions this call could dispatch to."""
        project = self.project
        module = project.modules.get(caller.module_path)
        if module is None:  # pragma: no cover - defensive
            return []
        func = call.func
        if isinstance(func, ast.Name):
            # Same-module def first, then the import table.
            target = project.functions.get((caller.module_path, func.id))
            if target is not None and target.owner_class is None:
                return [target]
            symbols = project.symbols[caller.module_path]
            imported = symbols.imported_from(func.id)
            if imported is not None:
                member = project.module_member(*imported)
                return [member] if member is not None else []
            return []
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "self" and caller.owner_class is not None:
                    owner = project.classes.get(
                        (caller.module_path, caller.owner_class)
                    )
                    if owner is not None and func.attr in owner.methods:
                        return [owner.methods[func.attr]]
                symbols = project.symbols[caller.module_path]
                alias = symbols.modules.get(base)
                if alias is not None:
                    member = project.module_member(alias, func.attr)
                    return [member] if member is not None else []
            dotted = dotted_name(func)
            if dotted is not None and "." in dotted:
                module_part, _, attr = dotted.rpartition(".")
                symbols = project.symbols[caller.module_path]
                alias = symbols.modules.get(module_part.split(".")[0])
                if alias is not None:
                    member = project.module_member(
                        alias + module_part[len(module_part.split(".")[0]):],
                        attr,
                    )
                    if member is not None:
                        return [member]
            # Dynamic dispatch: every method with this name, methods
            # only (module-level functions are never attribute-called
            # off an object in this codebase's idiom).
            return [
                target
                for target in self.project.functions_named(func.attr)
                if target.owner_class is not None
            ]
        return []

    # ------------------------------------------------------------------
    # queries

    def callers_of(self, key: FuncKey) -> List[CallSite]:
        """Every call site whose resolved callees include ``key``."""
        return self._callers.get(key, [])

    def reachable_from(
        self, roots: Sequence[FunctionInfo]
    ) -> List[FunctionInfo]:
        """Every function transitively callable from ``roots``
        (roots included), in deterministic key order."""
        seen: Dict[FuncKey, FunctionInfo] = {}
        stack = list(roots)
        while stack:
            info = stack.pop()
            if info.key in seen:
                continue
            seen[info.key] = info
            for callee_key in self._callees.get(info.key, ()):
                callee = self.project.functions.get(callee_key)
                if callee is not None and callee.key not in seen:
                    stack.append(callee)
        return [seen[key] for key in sorted(seen)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(len(v) for v in self._callees.values())
        return f"CallGraph(functions={len(self.sites)}, edges={edges})"


def _own_calls(function: ast.AST) -> Iterator[ast.Call]:
    """Call expressions in ``function``'s own body (nested defs,
    lambdas and classes own their calls)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
