"""The policy manifest: *which* code each analysis rule applies to.

The rules in :mod:`repro.analysis.rules` are generic AST checks; this
module pins them to the concrete invariants of this repository -- the
one module allowed to construct random generators, the directories
allowed to read wall clocks, the classes on the simulation hot path
that must declare ``__slots__``, and the identifier names the float
timestamp rule treats as simulation times.

Keeping the policy in one place means a reviewer can audit "what does
the linter actually enforce?" without reading any visitor code, and a
new hot-path class is added here, not inside a rule.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "ARENA_BUFFER_ATTRS",
    "ARENA_FROZEN_FLAG",
    "ARENA_THAW_ENTRY_POINTS",
    "ARENA_THAW_METHOD",
    "CELL_CONSTRUCTOR",
    "CELL_MODULES",
    "FREE_LIST_RELEASE_FUNCTIONS",
    "FREE_LIST_RELEASE_METHODS",
    "HOT_PATH_CLASSES",
    "ORDERED_WRAPPERS",
    "PROCESS_DIRECTIVES",
    "RNG_MODULE_SUFFIXES",
    "SCHEDULING_IMPORT_PREFIXES",
    "SUBMIT_METHODS",
    "TIMESTAMP_NAMES",
    "VERSIONED_BUFFER_ATTRS",
    "VERSION_COUNTER",
    "WALL_CLOCK_EXEMPT_PARTS",
    "is_rng_module",
    "is_wall_clock_exempt",
]

#: The only module that may construct ``numpy`` generators directly
#: (DET001).  Everything else must go through
#: :class:`repro.sim.random.RandomStreams` or
#: :func:`repro.sim.random.seeded_generator`.
RNG_MODULE_SUFFIXES: Tuple[str, ...] = ("repro/sim/random.py",)

#: Path segments whose files may read wall clocks (DET002).  The
#: benchmark harnesses measure real elapsed time by design.
WALL_CLOCK_EXEMPT_PARTS: Tuple[str, ...] = ("benchmarks",)

#: Modules importing any of these packages are considered to schedule
#: kernel events or draw randomness, and therefore fall under the
#: ordered-iteration rule (DET003).  ``numpy`` is deliberately broad:
#: in this codebase a module touching numpy is either drawing from a
#: generator or feeding data derived from one.
SCHEDULING_IMPORT_PREFIXES: Tuple[str, ...] = ("repro.sim", "numpy")

#: Callables that make an iteration order explicit and deterministic
#: (DET003 accepts ``sorted(...)`` and these ordered constructors).
ORDERED_WRAPPERS = frozenset({"sorted", "list", "tuple"})

#: Identifier names DET004 treats as simulation timestamps: float
#: ``==``/``!=`` on these is almost always a latent tie-break bug.
TIMESTAMP_NAMES = frozenset({"t", "time", "now", "deadline", "active_until"})

#: The directive types the simulation kernel recognises from a
#: :class:`repro.sim.process.Process` generator body (SIM001).
PROCESS_DIRECTIVES = frozenset({"Timeout", "Wait"})

#: Hot-path classes that must declare ``__slots__`` (PERF001): the
#: kernel allocates one ``Event`` per scheduled callback, every
#: 10 Hz sample touches a detector and a signal source, every RL
#: training transition goes through the dense Q/trace backend, and
#: the fleet reducers see one ``HomeReport`` per home and one
#: ``Welford`` update per observation.
#: Each entry is ``(module path suffix, class names in that module)``.
HOT_PATH_CLASSES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("repro/sim/kernel.py", ("Event", "_HeapQueue", "_CalendarQueue")),
    ("repro/sensors/detector.py", ("KofNDetector",)),
    ("repro/sensors/signals.py", ("SignalSource",)),
    (
        "repro/rl/dense.py",
        (
            "_ActionView",
            "StateActionIndex",
            "DenseQTable",
            "_ArgmaxProber",
            "DenseTraces",
        ),
    ),
    ("repro/fleet/metrics.py", ("Welford", "HomeReport")),
    ("repro/fleet/shard.py", ("_HomeRun",)),
    (
        "repro/rl/batch.py",
        ("GreedyPolicyTable", "MemoizedGreedyPolicy", "ShardPredictor"),
    ),
    ("repro/recognition/batch.py", ("BatchedHMM",)),
    ("repro/planning/predictor.py", ("NextStepPredictor",)),
    # The analyzer itself: the whole-program index allocates one
    # FunctionInfo/ClassInfo per definition in the tree on every lint
    # run, and the tier-1 gate plus BENCH_lint both lint all of
    # src/repro.
    (
        "repro/analysis/index.py",
        (
            "ModuleSymbols",
            "FunctionInfo",
            "ClassInfo",
            "AttributeWrite",
            "ProjectIndex",
        ),
    ),
    ("repro/analysis/callgraph.py", ("CallSite", "CallGraph")),
    ("repro/analysis/core.py", ("StatementOrder",)),
    # The zero-copy policy plane (PR 10): one PolicyArtifact per
    # distinct training per worker process, one HomeRuntime per shard
    # cell, and the arena itself -- all touched once per home
    # resolution on the fleet's hot path.
    ("repro/planning/binary.py", ("PolicyArtifact",)),
    ("repro/planning/shm.py", ("PolicyArena",)),
    ("repro/fleet/home.py", ("HomeRuntime",)),
)

#: Q-table buffer attributes whose element-wise mutation must bump
#: the monotone ``version`` counter (VER001): the dense flat buffer
#: and the sparse dict.  Whole-attribute rebinds (``clone._q = ...``
#: in ``copy()``) are exempt -- a fresh table starts its own counter.
VERSIONED_BUFFER_ATTRS: Tuple[str, ...] = ("_flat", "_q")

#: The monotone counter attribute every Q-table write path must bump
#: (VER001).  Policy caches revalidate against it; a write that skips
#: the bump leaves memoized predictions stale (the PR 8 bug class).
VERSION_COUNTER = "version"

#: Buffer attributes that may be *frozen* -- backed read-only by a
#: shared-memory arena segment or an mmap'd artifact (PAR003): the
#: dense flat Q buffer and the written-mask.  Element-wise writes to
#: either must be dominated by the copy-on-write guard; an unguarded
#: write raises at best (read-only NumPy view) and corrupts every
#: attached process's policy at worst.
ARENA_BUFFER_ATTRS: Tuple[str, ...] = ("_flat", "_written")

#: The flag marking a table as arena-backed, and the copy-on-write
#: entry point that clears it (PAR003).  ``if X._frozen: X._thaw()``
#: before the write -- or a bare ``X._thaw()`` -- is the guard shape
#: the rule accepts.
ARENA_FROZEN_FLAG = "_frozen"
ARENA_THAW_METHOD = "_thaw"

#: Qualified names allowed to touch frozen buffers without a guard
#: (PAR003): the thaw implementation itself is the guard.
ARENA_THAW_ENTRY_POINTS: Tuple[str, ...] = ("DenseQTable._thaw",)

#: Where the picklable work-cell constructor lives (PAR001): a call
#: resolving to ``Cell`` imported from one of these modules is a
#: parallel submission site.
CELL_MODULES: Tuple[str, ...] = ("repro.evalx.parallel", "repro.evalx")
CELL_CONSTRUCTOR = "Cell"

#: Executor-style ``.submit(fn, ...)`` method names whose first
#: argument crosses a process boundary (PAR001).
SUBMIT_METHODS = frozenset({"submit"})

#: Free-list release spellings (SIM003): the kernel's module-level
#: ``_release(free, event)`` helper and the method form.  After either
#: runs on an event, the event belongs to the free list.
FREE_LIST_RELEASE_FUNCTIONS = frozenset({"_release"})
FREE_LIST_RELEASE_METHODS = frozenset({"recycle"})


def is_rng_module(posix_path: str) -> bool:
    """True for the module sanctioned to construct generators."""
    return posix_path.endswith(RNG_MODULE_SUFFIXES)


def is_wall_clock_exempt(posix_path: str) -> bool:
    """True when ``posix_path`` sits under a wall-clock-exempt part."""
    return any(part in WALL_CLOCK_EXEMPT_PARTS
               for part in posix_path.split("/"))
