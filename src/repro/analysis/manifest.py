"""The policy manifest: *which* code each analysis rule applies to.

The rules in :mod:`repro.analysis.rules` are generic AST checks; this
module pins them to the concrete invariants of this repository -- the
one module allowed to construct random generators, the directories
allowed to read wall clocks, the classes on the simulation hot path
that must declare ``__slots__``, and the identifier names the float
timestamp rule treats as simulation times.

Keeping the policy in one place means a reviewer can audit "what does
the linter actually enforce?" without reading any visitor code, and a
new hot-path class is added here, not inside a rule.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "HOT_PATH_CLASSES",
    "ORDERED_WRAPPERS",
    "PROCESS_DIRECTIVES",
    "RNG_MODULE_SUFFIXES",
    "SCHEDULING_IMPORT_PREFIXES",
    "TIMESTAMP_NAMES",
    "WALL_CLOCK_EXEMPT_PARTS",
    "is_rng_module",
    "is_wall_clock_exempt",
]

#: The only module that may construct ``numpy`` generators directly
#: (DET001).  Everything else must go through
#: :class:`repro.sim.random.RandomStreams` or
#: :func:`repro.sim.random.seeded_generator`.
RNG_MODULE_SUFFIXES: Tuple[str, ...] = ("repro/sim/random.py",)

#: Path segments whose files may read wall clocks (DET002).  The
#: benchmark harnesses measure real elapsed time by design.
WALL_CLOCK_EXEMPT_PARTS: Tuple[str, ...] = ("benchmarks",)

#: Modules importing any of these packages are considered to schedule
#: kernel events or draw randomness, and therefore fall under the
#: ordered-iteration rule (DET003).  ``numpy`` is deliberately broad:
#: in this codebase a module touching numpy is either drawing from a
#: generator or feeding data derived from one.
SCHEDULING_IMPORT_PREFIXES: Tuple[str, ...] = ("repro.sim", "numpy")

#: Callables that make an iteration order explicit and deterministic
#: (DET003 accepts ``sorted(...)`` and these ordered constructors).
ORDERED_WRAPPERS = frozenset({"sorted", "list", "tuple"})

#: Identifier names DET004 treats as simulation timestamps: float
#: ``==``/``!=`` on these is almost always a latent tie-break bug.
TIMESTAMP_NAMES = frozenset({"t", "time", "now", "deadline", "active_until"})

#: The directive types the simulation kernel recognises from a
#: :class:`repro.sim.process.Process` generator body (SIM001).
PROCESS_DIRECTIVES = frozenset({"Timeout", "Wait"})

#: Hot-path classes that must declare ``__slots__`` (PERF001): the
#: kernel allocates one ``Event`` per scheduled callback, every
#: 10 Hz sample touches a detector and a signal source, every RL
#: training transition goes through the dense Q/trace backend, and
#: the fleet reducers see one ``HomeReport`` per home and one
#: ``Welford`` update per observation.
#: Each entry is ``(module path suffix, class names in that module)``.
HOT_PATH_CLASSES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("repro/sim/kernel.py", ("Event", "_HeapQueue", "_CalendarQueue")),
    ("repro/sensors/detector.py", ("KofNDetector",)),
    ("repro/sensors/signals.py", ("SignalSource",)),
    (
        "repro/rl/dense.py",
        (
            "_ActionView",
            "StateActionIndex",
            "DenseQTable",
            "_ArgmaxProber",
            "DenseTraces",
        ),
    ),
    ("repro/fleet/metrics.py", ("Welford", "HomeReport")),
    ("repro/fleet/shard.py", ("_HomeRun",)),
    (
        "repro/rl/batch.py",
        ("GreedyPolicyTable", "MemoizedGreedyPolicy", "ShardPredictor"),
    ),
    ("repro/recognition/batch.py", ("BatchedHMM",)),
    ("repro/planning/predictor.py", ("NextStepPredictor",)),
)


def is_rng_module(posix_path: str) -> bool:
    """True for the module sanctioned to construct generators."""
    return posix_path.endswith(RNG_MODULE_SUFFIXES)


def is_wall_clock_exempt(posix_path: str) -> bool:
    """True when ``posix_path`` sits under a wall-clock-exempt part."""
    return any(part in WALL_CLOCK_EXEMPT_PARTS
               for part in posix_path.split("/"))
