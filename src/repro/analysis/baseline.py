"""Committed lint baselines: land a new rule strict-on-new-findings.

A baseline is a committed JSON file of known findings.  With
``repro lint --baseline lint-baseline.json`` the gate fails only on
findings *not* in the file, so a freshly landed rule can ratchet: the
debt it found at introduction is recorded, every new violation is an
error, and paying debt down never requires touching the baseline
(stale entries are reported so the file shrinks monotonically).

Fingerprints are ``path::rule::message`` with a count -- deliberately
*line-free*, so unrelated edits that shift a known finding up or down
a file do not resurrect it, while a second identical violation in the
same file (count exceeded) still fails.  Paths are stored POSIX-style
relative to the invocation, matching :class:`Finding.path`.

File format::

    {"version": 1, "entries": {"src/m.py::DET002::message text": 1}}
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List

from repro.analysis.core import Finding, LintReport, LintUsageError

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


def _fingerprint(finding: Finding) -> str:
    path = finding.path.replace("\\", "/")
    return f"{path}::{finding.rule}::{finding.message}"


class Baseline:
    """Known-findings ledger keyed by line-free fingerprints."""

    __slots__ = ("entries",)

    def __init__(self, entries: Dict[str, int]) -> None:
        self.entries = dict(entries)

    # ------------------------------------------------------------------
    # construction / persistence

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline every unsuppressed finding (the ratchet start)."""
        entries: Dict[str, int] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            key = _fingerprint(finding)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        file = Path(path)
        if not file.is_file():
            raise LintUsageError(f"baseline file not found: {path}")
        try:
            document = json.loads(file.read_text("utf-8"))
        except json.JSONDecodeError as exc:
            raise LintUsageError(
                f"baseline file {path} is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(document, dict)
            or document.get("version") != BASELINE_VERSION
            or not isinstance(document.get("entries"), dict)
        ):
            raise LintUsageError(
                f"baseline file {path} is not a version-"
                f"{BASELINE_VERSION} baseline document"
            )
        entries: Dict[str, int] = {}
        for key, count in document["entries"].items():
            if not isinstance(key, str) or not isinstance(count, int):
                raise LintUsageError(
                    f"baseline file {path} has a malformed entry: "
                    f"{key!r}: {count!r}"
                )
            entries[key] = count
        return cls(entries)

    def save(self, path: str) -> None:
        document = {
            "version": BASELINE_VERSION,
            "entries": {key: self.entries[key] for key in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    # application

    def apply(self, report: LintReport) -> LintReport:
        """Mark matching findings ``baselined`` (up to each entry's
        count, in report order).  Suppressed findings never consume a
        baseline slot -- the suppression already justifies them."""
        remaining = dict(self.entries)
        findings: List[Finding] = []
        for finding in report.findings:
            if not finding.suppressed:
                key = _fingerprint(finding)
                if remaining.get(key, 0) > 0:
                    remaining[key] -= 1
                    finding = replace(finding, baselined=True)
            findings.append(finding)
        return LintReport(
            findings=tuple(findings),
            files_checked=report.files_checked,
        )

    def stale_entries(self, report: LintReport) -> List[str]:
        """Fingerprints with more baseline slots than live findings --
        debt that was paid down; the committed file should drop them."""
        remaining = dict(self.entries)
        for finding in report.findings:
            if finding.suppressed:
                continue
            key = _fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
        return sorted(key for key, count in remaining.items() if count > 0)

    def __len__(self) -> int:
        return sum(self.entries.values())
