"""Visitor core of the determinism / sim-safety static analyzer.

The framework has two passes:

1. **Per-module rules** (:class:`Rule`) walk one parsed module
   (:class:`ModuleContext`) and yield :class:`Finding` s.
2. **Whole-program rules** (:class:`ProjectRule`) run once per lint
   invocation against a :class:`repro.analysis.index.ProjectIndex`
   built over *every* module of the run, so they can follow dataflow
   across module boundaries (helper calls that mutate a Q buffer,
   worker entry points reaching global writes, ...).

A registry maps rule IDs to singleton rule instances; the driver
functions (:func:`lint_source`, :func:`lint_paths`) apply inline
suppressions and fold everything into a :class:`LintReport`.

Suppressions
------------
A finding is suppressed by a comment on the reported line::

    start = time.perf_counter()  # repro: allow[DET002] timing display

The comment may sit on *any line of the statement* that produced the
finding -- the closing-paren line of a multi-line call works -- and,
for findings anchored on a ``def``/``class`` header, on any of its
decorator lines.  Multiple rule IDs may be listed, comma-separated:
``# repro: allow[DET001,DET004] fixture``.  Anything after the
closing bracket is free-form justification.  Suppressed findings are
still collected (and shown in the JSON report) but do not fail the
lint gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "Finding",
    "LintReport",
    "LintUsageError",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "StatementOrder",
    "UnknownRuleError",
    "all_rule_ids",
    "dotted_name",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "register",
    "resolve_rules",
    "rule_families",
]

SUPPRESSION_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs suppressed by a comment on it."""
    table: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_PATTERN.search(token.string)
            if not match:
                continue
            ids = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if ids:
                table.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - parse guards first
        pass
    return table

SEVERITIES = ("error", "warning")

_FAMILY_PATTERN = re.compile(r"^[A-Z]+")


class LintUsageError(Exception):
    """The analyzer was invoked incorrectly (bad path, bad source)."""


class UnknownRuleError(LintUsageError):
    """A rule ID or family was requested that nothing registered."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str
    suppressed: bool = False
    #: True when a committed baseline claims this finding as known
    #: debt; baselined findings do not fail the gate.
    baselined: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)


class ModuleContext:
    """One parsed module plus the lookups every rule needs.

    The context owns the AST, the per-line suppression table and the
    set of imported module names (used by scope-sensitive rules such
    as DET003).  ``path`` is kept verbatim for reporting; rules match
    policy against :attr:`posix_path`.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = str(path)
        self.posix_path = self.path.replace("\\", "/")
        self.source = source
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintUsageError(f"{path}: cannot parse: {exc}") from exc
        self.suppressions = _collect_suppressions(source)
        self._imports: Optional[FrozenSet[str]] = None
        self._span_suppressions: Optional[Dict[int, Set[str]]] = None

    @property
    def imports(self) -> FrozenSet[str]:
        """Dotted module names this module imports (top-level walk)."""
        if self._imports is None:
            names: Set[str] = set()
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    names.update(alias.name for alias in node.names)
                elif isinstance(node, ast.ImportFrom) and node.module:
                    names.add(node.module)
            self._imports = frozenset(names)
        return self._imports

    def imports_prefix(self, prefix: str) -> bool:
        """True if any import is ``prefix`` or a submodule of it."""
        return any(
            name == prefix or name.startswith(prefix + ".")
            for name in self.imports
        )

    def suppressed_rules(self, line: int) -> FrozenSet[str]:
        """Rule IDs suppressed for a finding reported on ``line``.

        A suppression comment reaches a finding when it sits on the
        finding's own line, on any line of the (multi-line) statement
        spanning it, or -- for ``def``/``class`` findings -- on one of
        the decorator/header lines.
        """
        direct = self.suppressions.get(line, set())
        spanned = self._statement_spans().get(line, set())
        if not direct and not spanned:
            return frozenset()
        return frozenset(direct | spanned)

    def _statement_spans(self) -> Dict[int, Set[str]]:
        """Suppressions propagated across multi-line statement spans.

        For every statement whose span (decorators + header for
        compound statements, the whole extent for simple ones) holds
        a suppression comment, every line of that span inherits the
        suppressed rule IDs.  Comment lines *between* statements stay
        inert, which keeps "comment on the previous line" a non-
        suppression, as before.
        """
        if self._span_suppressions is not None:
            return self._span_suppressions
        table: Dict[int, Set[str]] = {}
        raw = self.suppressions
        if raw:
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                lines = _statement_span(node)
                ids: Set[str] = set()
                for line in lines:
                    ids.update(raw.get(line, ()))
                if ids:
                    for line in lines:
                        table.setdefault(line, set()).update(ids)
        self._span_suppressions = table
        return table


def _statement_span(node: ast.stmt) -> range:
    """The line range a suppression on this statement covers."""
    start = node.lineno
    end = getattr(node, "end_lineno", None) or node.lineno
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        start = min(start, min(d.lineno for d in decorators))
    body = getattr(node, "body", None)
    if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
        # Compound statement: the span is the header (decorators +
        # signature), not the whole body -- a comment deep inside a
        # function must not silence findings on its ``def`` line.
        end = body[0].lineno - 1
    return range(start, max(start, end) + 1)


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` of this rule anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )

    def finding_at(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        """Like :meth:`finding` for rules that span modules."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A whole-program rule: runs once against the project index.

    ``check`` is a no-op (pass 1 skips project rules); subclasses
    implement :meth:`check_project` against the
    :class:`repro.analysis.index.ProjectIndex` built over every module
    of the lint invocation.
    """

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        raise NotImplementedError


@dataclass(frozen=True)
class LintReport:
    """Every finding of one lint run, suppressed ones included."""

    findings: Tuple[Finding, ...]
    files_checked: int

    @property
    def active(self) -> Tuple[Finding, ...]:
        """Findings that fail the gate (not suppressed/baselined)."""
        return tuple(
            f for f in self.findings if not f.suppressed and not f.baselined
        )

    @property
    def suppressed(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def baselined(self) -> Tuple[Finding, ...]:
        return tuple(
            f for f in self.findings if f.baselined and not f.suppressed
        )


# --------------------------------------------------------------------
# Registry

_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"{rule.rule_id}: severity must be one of {SEVERITIES}"
        )
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def _load_rules() -> None:
    # The rule modules register themselves on import; importing here
    # (not at module top) keeps core free of circular imports.
    from repro.analysis import rules  # noqa: F401


def all_rule_ids() -> List[str]:
    """Every registered rule ID, sorted."""
    _load_rules()
    return sorted(_REGISTRY)


def rule_families() -> List[str]:
    """The registered rule families (leading-letter prefixes), sorted:
    ``["DET", "PAR", "PERF", "SIM", "VER"]`` for the shipped pack."""
    _load_rules()
    families = set()
    for rule_id in _REGISTRY:
        match = _FAMILY_PATTERN.match(rule_id)
        if match:
            families.add(match.group(0))
    return sorted(families)


def resolve_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule instances for ``rule_ids`` (all rules when ``None``).

    Each requested token may be an exact rule ID (``DET001``) or a
    family prefix (``DET`` selects every ``DET*`` rule).  Unknown
    tokens raise :class:`UnknownRuleError` naming the valid families.
    """
    _load_rules()
    if rule_ids is None:
        return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]
    selected: Set[str] = set()
    unknown: List[str] = []
    for token in rule_ids:
        if token in _REGISTRY:
            selected.add(token)
            continue
        matches = [
            rule_id for rule_id in _REGISTRY if rule_id.startswith(token)
        ] if token else []
        if matches:
            selected.update(matches)
        else:
            unknown.append(token)
    if unknown:
        raise UnknownRuleError(
            f"unknown rule(s) or famil(ies): {', '.join(sorted(set(unknown)))} "
            f"(families: {', '.join(rule_families())}; "
            f"rules: {', '.join(sorted(_REGISTRY))})"
        )
    return [_REGISTRY[rule_id] for rule_id in sorted(selected)]


# --------------------------------------------------------------------
# Drivers


def lint_modules(
    modules: Sequence[ModuleContext],
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """The two-pass driver: per-module rules, then project rules.

    Pass 1 applies every plain :class:`Rule` to each module; pass 2
    builds one :class:`~repro.analysis.index.ProjectIndex` over the
    whole module set and applies every :class:`ProjectRule` to it.
    Suppressions are resolved per finding against the module that
    reported it.  Returns sorted findings.
    """
    rules = resolve_rules(rule_ids)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    findings: List[Finding] = []
    for module in modules:
        for rule in module_rules:
            findings.extend(rule.check(module))
    if project_rules:
        from repro.analysis.index import ProjectIndex

        project = ProjectIndex(modules)
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    by_path = {module.path: module for module in modules}
    out: List[Finding] = []
    for found in findings:
        module = by_path.get(found.path)
        if module is not None and found.rule in module.suppressed_rules(
            found.line
        ):
            found = replace(found, suppressed=True)
        out.append(found)
    return sorted(out, key=Finding.sort_key)


def lint_source(
    source: str,
    path: str = "<string>",
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module given as a string; returns sorted findings.

    Project rules run against a single-module index, so cross-module
    rule fixtures can be exercised from one source string.
    """
    return lint_modules([ModuleContext(path, source)], rule_ids)


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a deduplicated, sorted list.

    Overlapping arguments (``repro lint src src/repro``, a file plus
    the directory containing it, relative/absolute spellings of one
    tree) contribute each file **once** -- deduplication is by
    resolved path -- and the result is sorted by resolved path, so
    the file order (and therefore the report) is identical no matter
    how the argument list spells or orders the inputs.
    """
    out: List[Tuple[str, Path]] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterator[Path] = iter(sorted(path.rglob("*.py")))
        elif path.is_file():
            candidates = iter([path])
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append((resolved.as_posix(), candidate))
    out.sort(key=lambda pair: pair[0])
    return [candidate for _, candidate in out]


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories; returns the aggregate report.

    All modules are parsed up front so the whole-program pass sees
    every file of the invocation at once.
    """
    files = iter_python_files(paths)
    modules = [
        ModuleContext(str(file), file.read_text("utf-8")) for file in files
    ]
    findings = lint_modules(modules, rule_ids)
    return LintReport(
        findings=tuple(findings),
        files_checked=len(files),
    )


# --------------------------------------------------------------------
# Shared AST helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Statements that unconditionally leave the enclosing block.
_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


class StatementOrder:
    """Structural execution order inside one function body.

    Used by the path-sensitive rules (VER001's "bumps the version on
    every path", SIM003's "never referenced after recycle").  Each
    statement gets a *path*: the chain of ``(block, index)`` steps
    from the function body down to it.  Two relations fall out:

    * :meth:`covers_after` -- ``b`` executes after ``a`` on **every**
      structural fall-through path (``b`` sits later in one of ``a``'s
      enclosing blocks, not nested inside a later conditional).
    * :meth:`may_follow` -- ``b`` **may** execute after ``a`` (``b``
      or an ancestor of ``b`` sits later in one of ``a``'s enclosing
      blocks), honouring ``return``/``raise``/``continue``/``break``
      barriers between ``a`` and the fall-through point.

    The model ignores exceptions and treats loop bodies as straight-
    line (a statement later in a loop body is "after" an earlier one);
    that is exactly the right fidelity for review-time contract
    checking, and both rules have fixture tests pinning it.
    """

    __slots__ = ("_paths", "_blocks", "_owner")

    def __init__(self, function: ast.AST) -> None:
        #: id(stmt) -> tuple of (block serial, index) steps.
        self._paths: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        #: block serial -> the statement list it stands for.
        self._blocks: Dict[int, List[ast.stmt]] = {}
        #: id(any node) -> its innermost enclosing statement.
        self._owner: Dict[int, ast.stmt] = {}
        serial = 0
        stack: List[Tuple[List[ast.stmt], Tuple[Tuple[int, int], ...]]] = []
        body = getattr(function, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            stack.append((body, ()))
        while stack:
            block, prefix = stack.pop()
            serial += 1
            self._blocks[serial] = block
            for index, stmt in enumerate(block):
                path = prefix + ((serial, index),)
                self._paths[id(stmt)] = path
                self._claim(stmt)
                for child in _child_blocks(stmt):
                    stack.append((child, path))

    def _claim(self, stmt: ast.stmt) -> None:
        """Map ``stmt``'s non-statement descendants to it."""
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    continue  # claimed by its own enclosing statement
                self._owner[id(child)] = stmt
                stack.append(child)

    def enclosing(self, node: ast.AST) -> Optional[ast.stmt]:
        """The innermost statement containing ``node`` (or ``node``)."""
        if isinstance(node, ast.stmt):
            return node if id(node) in self._paths else None
        owner = self._owner.get(id(node))
        while owner is not None and id(owner) not in self._paths:
            owner = self._owner.get(id(owner))
        return owner

    def statements(self) -> Iterator[ast.stmt]:
        """Every tracked statement (arbitrary order)."""
        for block in self._blocks.values():
            for stmt in block:
                yield stmt

    def covers_after(self, a: ast.stmt, b: ast.stmt) -> bool:
        """True when ``b`` runs after ``a`` on every fall-through path."""
        pa = self._paths.get(id(a))
        pb = self._paths.get(id(b))
        if pa is None or pb is None:
            return False
        depth = len(pb) - 1
        if depth >= len(pa):
            return False
        if pb[:depth] != pa[:depth]:
            return False
        block_b, index_b = pb[depth]
        block_a, index_a = pa[depth]
        return block_b == block_a and index_b > index_a

    def covers_before(self, a: ast.stmt, b: ast.stmt) -> bool:
        """True when ``b`` runs before ``a`` on every path reaching ``a``.

        The mirror of :meth:`covers_after`: ``b`` must sit *earlier*
        in one of ``a``'s enclosing blocks, so every structural path
        that reaches ``a`` has already executed ``b`` (a guard before
        the enclosing ``if``/``else`` covers writes in both branches;
        a guard in only one branch does not).  Loop bodies are
        straight-line here, same fidelity as :meth:`covers_after`.
        """
        pa = self._paths.get(id(a))
        pb = self._paths.get(id(b))
        if pa is None or pb is None:
            return False
        depth = len(pb) - 1
        if depth >= len(pa):
            return False
        if pb[:depth] != pa[:depth]:
            return False
        block_b, index_b = pb[depth]
        block_a, index_a = pa[depth]
        return block_b == block_a and index_b < index_a

    def may_follow(self, a: ast.stmt, b: ast.stmt) -> bool:
        """True when ``b`` may execute after ``a`` (fall-through
        reachability, stopping at terminator statements)."""
        pa = self._paths.get(id(a))
        pb = self._paths.get(id(b))
        if pa is None or pb is None:
            return False
        # Walk outward from a's innermost block; at each level, the
        # statements after a's ancestor are reachable unless a
        # terminator cuts the block off first.
        for depth in range(len(pa) - 1, -1, -1):
            block_serial, index = pa[depth]
            block = self._blocks[block_serial]
            for later_index in range(index + 1, len(block)):
                later = block[later_index]
                if self._contains(later, pb, depth, block_serial, later_index):
                    return True
                if isinstance(later, _TERMINATORS):
                    return False
            # The block fell through; if any statement *at or before*
            # a's ancestor ends in a terminator we would have exited
            # already.  Keep walking outward.
        return False

    def _contains(
        self,
        stmt: ast.stmt,
        pb: Tuple[Tuple[int, int], ...],
        depth: int,
        block_serial: int,
        index: int,
    ) -> bool:
        """True when path ``pb`` runs through ``stmt``."""
        return len(pb) > depth and pb[depth] == (block_serial, index)

    def fallthrough(self, a: ast.stmt) -> Iterator[ast.stmt]:
        """Statements that may execute after ``a``, in fall-through
        order (innermost block outward).  A terminator statement ends
        the scan: nothing past a ``return``/``raise``/``continue``/
        ``break`` on this path is reachable by falling through.
        Statements are yielded whole -- a later ``if`` arrives as one
        statement; callers inspect its subtree themselves."""
        pa = self._paths.get(id(a))
        if pa is None:
            return
        for depth in range(len(pa) - 1, -1, -1):
            block_serial, index = pa[depth]
            block = self._blocks[block_serial]
            for later in block[index + 1:]:
                yield later
                if isinstance(later, _TERMINATORS):
                    return


def _child_blocks(node: ast.AST) -> List[List[ast.stmt]]:
    """The statement lists directly under ``node``.  Nested defs,
    lambdas and classes own their statements: they contribute no
    blocks to the enclosing function's order."""
    if isinstance(
        node,
        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
    ):
        return []
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(node, name, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            blocks.append(block)
    for handler in getattr(node, "handlers", ()):
        if handler.body:
            blocks.append(list(handler.body))
    return blocks
