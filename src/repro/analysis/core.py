"""Visitor core of the determinism / sim-safety static analyzer.

The framework is deliberately small: a :class:`Rule` walks one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` s; a
registry maps rule IDs to singleton rule instances; and the driver
functions (:func:`lint_source`, :func:`lint_paths`) apply inline
suppressions and fold everything into a :class:`LintReport`.

Suppressions
------------
A finding is suppressed by a comment on the *reported line*::

    start = time.perf_counter()  # repro: allow[DET002] timing display

Multiple rule IDs may be listed, comma-separated:
``# repro: allow[DET001,DET004] fixture``.  Anything after the
closing bracket is free-form justification.  Suppressed findings are
still collected (and shown in the JSON report) but do not fail the
lint gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "Finding",
    "LintReport",
    "LintUsageError",
    "ModuleContext",
    "Rule",
    "UnknownRuleError",
    "all_rule_ids",
    "dotted_name",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
    "resolve_rules",
]

SUPPRESSION_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")

SEVERITIES = ("error", "warning")


class LintUsageError(Exception):
    """The analyzer was invoked incorrectly (bad path, bad source)."""


class UnknownRuleError(LintUsageError):
    """A rule ID was requested that no registered rule carries."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str
    suppressed: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)


class ModuleContext:
    """One parsed module plus the lookups every rule needs.

    The context owns the AST, the per-line suppression table and the
    set of imported module names (used by scope-sensitive rules such
    as DET003).  ``path`` is kept verbatim for reporting; rules match
    policy against :attr:`posix_path`.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = str(path)
        self.posix_path = self.path.replace("\\", "/")
        self.source = source
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintUsageError(f"{path}: cannot parse: {exc}") from exc
        self.suppressions = _collect_suppressions(source)
        self._imports: Optional[FrozenSet[str]] = None

    @property
    def imports(self) -> FrozenSet[str]:
        """Dotted module names this module imports (top-level walk)."""
        if self._imports is None:
            names: Set[str] = set()
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    names.update(alias.name for alias in node.names)
                elif isinstance(node, ast.ImportFrom) and node.module:
                    names.add(node.module)
            self._imports = frozenset(names)
        return self._imports

    def imports_prefix(self, prefix: str) -> bool:
        """True if any import is ``prefix`` or a submodule of it."""
        return any(
            name == prefix or name.startswith(prefix + ".")
            for name in self.imports
        )

    def suppressed_rules(self, line: int) -> FrozenSet[str]:
        """Rule IDs suppressed on ``line`` (empty set when none)."""
        return frozenset(self.suppressions.get(line, ()))


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` of this rule anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )


@dataclass(frozen=True)
class LintReport:
    """Every finding of one lint run, suppressed ones included."""

    findings: Tuple[Finding, ...]
    files_checked: int

    @property
    def active(self) -> Tuple[Finding, ...]:
        """Findings that fail the gate (not suppressed)."""
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def suppressed(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.suppressed)


# --------------------------------------------------------------------
# Registry

_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"{rule.rule_id}: severity must be one of {SEVERITIES}"
        )
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def _load_rules() -> None:
    # The rule modules register themselves on import; importing here
    # (not at module top) keeps core free of circular imports.
    from repro.analysis import rules  # noqa: F401


def all_rule_ids() -> List[str]:
    """Every registered rule ID, sorted."""
    _load_rules()
    return sorted(_REGISTRY)


def resolve_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule instances for ``rule_ids`` (all rules when ``None``)."""
    _load_rules()
    if rule_ids is None:
        return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]
    unknown = sorted(set(rule_ids) - set(_REGISTRY))
    if unknown:
        raise UnknownRuleError(
            f"unknown rule(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_REGISTRY))})"
        )
    return [_REGISTRY[rule_id] for rule_id in sorted(set(rule_ids))]


# --------------------------------------------------------------------
# Drivers


def lint_source(
    source: str,
    path: str = "<string>",
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module given as a string; returns sorted findings."""
    module = ModuleContext(path, source)
    findings: List[Finding] = []
    for rule in resolve_rules(rule_ids):
        for found in rule.check(module):
            if found.rule in module.suppressed_rules(found.line):
                found = replace(found, suppressed=True)
            findings.append(found)
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a sorted, deduplicated list."""
    out: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterator[Path] = iter(sorted(path.rglob("*.py")))
        elif path.is_file():
            candidates = iter([path])
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories; returns the aggregate report."""
    files = iter_python_files(paths)
    findings: List[Finding] = []
    for file in files:
        findings.extend(
            lint_source(file.read_text("utf-8"), str(file), rule_ids)
        )
    return LintReport(
        findings=tuple(sorted(findings, key=Finding.sort_key)),
        files_checked=len(files),
    )


# --------------------------------------------------------------------
# Shared AST helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _parse_ids(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs allowed on that line."""
    table: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_PATTERN.search(token.string)
            if match:
                table.setdefault(token.start[0], set()).update(
                    _parse_ids(match.group(1))
                )
    except tokenize.TokenError:  # pragma: no cover - defensive
        for number, text in enumerate(source.splitlines(), 1):
            match = SUPPRESSION_PATTERN.search(text)
            if match:
                table.setdefault(number, set()).update(
                    _parse_ids(match.group(1))
                )
    return table
