"""PERF001: hot-path classes must declare ``__slots__``.

The simulation allocates one :class:`~repro.sim.kernel.Event` per
scheduled callback and touches a detector and a signal source per
10 Hz sample, so instance-dict allocation on these classes is
measurable at experiment scale (the PR 2 benchmarks quantified it).
The hot-path set lives in :data:`repro.analysis.manifest.HOT_PATH_CLASSES`;
this rule also flags manifest drift (a listed class that no longer
exists in its module), so renames cannot silently disable the check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable

from repro.analysis import manifest
from repro.analysis.core import Finding, ModuleContext, Rule, register

__all__ = ["MissingSlots"]


@register
class MissingSlots(Rule):
    rule_id = "PERF001"
    severity = "warning"
    description = (
        "classes in the hot-path manifest (repro.analysis.manifest."
        "HOT_PATH_CLASSES) must declare __slots__ (directly or via "
        "@dataclass(slots=True))"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for suffix, class_names in manifest.HOT_PATH_CLASSES:
            if not module.posix_path.endswith(suffix):
                continue
            classes: Dict[str, ast.ClassDef] = {
                node.name: node
                for node in ast.walk(module.tree)
                if isinstance(node, ast.ClassDef)
            }
            for name in class_names:
                node = classes.get(name)
                if node is None:
                    yield Finding(
                        path=module.path,
                        line=1,
                        column=1,
                        rule=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"hot-path class {name} not found in module; "
                            "update repro.analysis.manifest.HOT_PATH_CLASSES"
                        ),
                    )
                elif not _declares_slots(node):
                    yield self.finding(
                        module,
                        node,
                        f"hot-path class {name} must declare __slots__ "
                        "(one instance per kernel event / per sample)",
                    )


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and any(
            keyword.arg == "slots"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in decorator.keywords
        ):
            return True
    return False
