"""PAR003: frozen arena buffers are copy-on-write, not write-through.

The zero-copy policy plane (PR 10) restores dense Q-tables as NumPy
views over shared-memory segments and mmap'd artifacts.  Those
buffers are read-only and *shared between processes*: the table
carries a ``_frozen`` flag, and the one sanctioned mutation path is
the copy-on-write guard -- ``if X._frozen: X._thaw()`` (or a bare
``X._thaw()``) before the first element-wise write.  An unguarded
write raises ``ValueError: assignment destination is read-only`` at
best; if a future backing is ever mapped writable, it silently
corrupts the policy of every attached worker.

The rule is the temporal mirror of VER001: where VER001 demands a
version bump *after* every buffer write on every path, PAR003 demands
a thaw guard *before* it
(:meth:`~repro.analysis.core.StatementOrder.covers_before`).  The
same write/alias detection is shared with VER001 (a local
``flat = q._flat`` alias is still the live buffer), the same
whole-attribute-rebind exemption applies (``self._flat = fresh``
installs a new buffer -- that is exactly what ``_thaw`` does), and
the same caller-absolution fallback holds: a helper with unguarded
writes is fine when every call site into it is itself dominated by a
guard (transitively, cycles treated as unguarded).  The declared
entry points in :data:`repro.analysis.manifest.ARENA_THAW_ENTRY_POINTS`
-- the thaw implementation itself -- are exempt outright.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis import manifest
from repro.analysis.core import (
    Finding,
    ProjectRule,
    StatementOrder,
    register,
)
from repro.analysis.index import FunctionInfo, ProjectIndex, _own_nodes
from repro.analysis.rules.versioning import (
    _buffer_aliases,
    _buffer_store,
    _mutating_call_target,
)

__all__ = ["UnguardedFrozenWrite"]

FuncKey = Tuple[str, str]


class _FunctionFacts:
    """Per-function PAR003 facts: writes, guards, statement order."""

    __slots__ = ("info", "order", "writes", "guards")

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.order = StatementOrder(info.node)
        #: (statement, anchor node, buffer attr) per element-wise write.
        self.writes: List[Tuple[ast.stmt, ast.AST, str]] = []
        #: Statements after which the table is guaranteed thawed.
        self.guards: List[ast.stmt] = []


@register
class UnguardedFrozenWrite(ProjectRule):
    rule_id = "PAR003"
    severity = "error"
    description = (
        "element-wise writes to arena-backed buffers (_flat/_written) "
        "must be dominated by the copy-on-write thaw guard, directly "
        "or in every caller"
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        graph = project.callgraph()
        facts: Dict[FuncKey, _FunctionFacts] = {}
        for info in project.iter_functions():
            if info.qualname in manifest.ARENA_THAW_ENTRY_POINTS:
                continue
            facts[info.key] = _collect_facts(info)

        unguarded: Dict[FuncKey, List[Tuple[ast.stmt, ast.AST, str]]] = {}
        for key, fact in facts.items():
            bad = [
                write
                for write in fact.writes
                if not any(
                    fact.order.covers_before(write[0], guard)
                    for guard in fact.guards
                )
            ]
            if bad:
                unguarded[key] = bad

        memo: Dict[FuncKey, bool] = {}

        def absolved(key: FuncKey, stack: Set[FuncKey]) -> bool:
            """True when every path into ``key`` thaws before the call."""
            if key in memo:
                return memo[key]
            if key in stack or len(stack) > 12:
                return False  # cycle / runaway depth: stay conservative
            sites = graph.callers_of(key)
            if not sites:
                memo[key] = False
                return False
            ok = True
            for site in sites:
                caller = facts.get(site.caller.key)
                if caller is None:
                    ok = False
                    break
                stmt = caller.order.enclosing(site.node)
                if stmt is not None and any(
                    caller.order.covers_before(stmt, guard)
                    for guard in caller.guards
                ):
                    continue
                if absolved(site.caller.key, stack | {key}):
                    continue
                ok = False
                break
            memo[key] = ok
            return ok

        findings: List[Finding] = []
        for key in sorted(unguarded):
            if absolved(key, set()):
                continue
            fact = facts[key]
            for _, anchor, attr in unguarded[key]:
                findings.append(
                    self.finding_at(
                        fact.info.module_path,
                        anchor,
                        f"{fact.info.qualname} writes into `{attr}` with "
                        f"no `{manifest.ARENA_THAW_METHOD}()` guard on "
                        "some path (and no caller guards before the call "
                        "either); the buffer may be a read-only shared-"
                        "memory view",
                    )
                )
        return findings


def _collect_facts(info: FunctionInfo) -> _FunctionFacts:
    fact = _FunctionFacts(info)
    buffers = manifest.ARENA_BUFFER_ATTRS
    aliases = _buffer_aliases(info.node, buffers)
    for node in _own_nodes(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _buffer_store(target, buffers, aliases)
                if attr is not None:
                    _note_write(fact, node, attr)
        elif isinstance(node, ast.Call):
            attr = _mutating_call_target(node, buffers, aliases)
            if attr is not None:
                _note_write(fact, node, attr)
            if _is_thaw_call(node):
                _note_guard(fact, node)
        elif isinstance(node, ast.If) and _is_thaw_conditional(node):
            stmt = fact.order.enclosing(node)
            if stmt is not None:
                fact.guards.append(stmt)
    return fact


def _note_write(fact: _FunctionFacts, node: ast.AST, attr: str) -> None:
    stmt = fact.order.enclosing(node)
    if stmt is not None:
        fact.writes.append((stmt, node, attr))


def _note_guard(fact: _FunctionFacts, node: ast.AST) -> None:
    stmt = fact.order.enclosing(node)
    if stmt is not None:
        fact.guards.append(stmt)


def _is_thaw_call(call: ast.Call) -> bool:
    """``<base>._thaw(...)`` -- the table is mutable afterwards."""
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == manifest.ARENA_THAW_METHOD
    )


def _is_thaw_conditional(node: ast.If) -> bool:
    """``if X._frozen: ... X._thaw() ...`` -- the canonical guard.

    The conditional as a whole guarantees "not frozen" on exit, so it
    is the statement that dominates later writes (the thaw call inside
    the branch covers nothing outside it).
    """
    mentions_flag = any(
        isinstance(sub, ast.Attribute)
        and sub.attr == manifest.ARENA_FROZEN_FLAG
        for sub in ast.walk(node.test)
    )
    if not mentions_flag:
        return False
    return any(
        isinstance(sub, ast.Call) and _is_thaw_call(sub)
        for stmt in node.body
        for sub in ast.walk(stmt)
    )
