"""VER001: every Q-buffer mutation must bump the version counter.

The batched-inference layer (PR 8) memoizes greedy policies and
revalidates them against a monotone ``version`` counter on each
Q-table.  The contract is global: *any* statement that mutates a
table's flat buffer (``_flat``) or sparse dict (``_q``) -- directly,
through a local alias (``flat = q._flat``), or inside a helper
reachable through the call graph -- must be followed by a
``version`` bump on every structural path, or memoized predictions go
stale under online adaptation.  PR 8 shipped exactly this bug in the
fused dense learner paths; the single-module rule pack could not see
it because the write and the contract live in different modules.

The rule is a :class:`~repro.analysis.core.ProjectRule`:

1. For every indexed function, collect *write statements* (subscript
   stores / in-place mutating calls on a versioned buffer attribute
   or a local alias of one; whole-attribute rebinds are exempt) and
   *bump statements* (assignments to ``.version``, or calls that
   resolve to a function whose own body bumps).
2. A write is **covered** when a bump executes after it on every
   fall-through path of the function
   (:meth:`~repro.analysis.core.StatementOrder.covers_after` -- a
   bump after the enclosing ``if``/``else`` covers writes in both
   branches; a bump in only one branch does not).
3. A function left with uncovered writes may still be **absolved by
   its callers**: if every call site into it is itself covered by a
   bump in the calling function (transitively, cycles treated as
   uncovered), the contract holds at a coarser granularity -- the
   idiom of ``DenseTraces.apply_update`` callers.  Otherwise each
   uncovered write is a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import manifest
from repro.analysis.core import (
    Finding,
    ProjectRule,
    StatementOrder,
    register,
)
from repro.analysis.index import FunctionInfo, ProjectIndex, _own_nodes

__all__ = ["StaleVersionWrite"]

FuncKey = Tuple[str, str]


class _FunctionFacts:
    """Per-function VER001 facts: writes, bumps, statement order."""

    __slots__ = ("info", "order", "writes", "bumps")

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.order = StatementOrder(info.node)
        #: (statement, anchor node, buffer attr) per uncoverable write.
        self.writes: List[Tuple[ast.stmt, ast.AST, str]] = []
        #: Statements that bump ``.version`` (directly or via helper).
        self.bumps: List[ast.stmt] = []


@register
class StaleVersionWrite(ProjectRule):
    rule_id = "VER001"
    severity = "error"
    description = (
        "statements mutating a Q-table buffer (_flat/_q) must bump the "
        "version counter on every path, directly or in every caller"
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        graph = project.callgraph()
        facts: Dict[FuncKey, _FunctionFacts] = {}
        bumpers: Set[FuncKey] = set()
        for info in project.iter_functions():
            fact = _collect_facts(info)
            facts[info.key] = fact
            if fact.bumps:
                bumpers.add(info.key)

        # A call to a function that itself bumps counts as a bump
        # statement at the call site (one level of helper indirection,
        # e.g. ``self._touch()``).
        for key, fact in facts.items():
            for site in graph.sites.get(key, ()):
                if any(c.key in bumpers for c in site.callees):
                    stmt = fact.order.enclosing(site.node)
                    if stmt is not None:
                        fact.bumps.append(stmt)

        uncovered: Dict[FuncKey, List[Tuple[ast.stmt, ast.AST, str]]] = {}
        for key, fact in facts.items():
            bad = [
                write
                for write in fact.writes
                if not any(
                    fact.order.covers_after(write[0], bump)
                    for bump in fact.bumps
                )
            ]
            if bad:
                uncovered[key] = bad

        memo: Dict[FuncKey, bool] = {}

        def absolved(key: FuncKey, stack: Set[FuncKey]) -> bool:
            """True when every path into ``key`` bumps after the call."""
            if key in memo:
                return memo[key]
            if key in stack or len(stack) > 12:
                return False  # cycle / runaway depth: stay conservative
            sites = graph.callers_of(key)
            if not sites:
                memo[key] = False
                return False
            ok = True
            for site in sites:
                caller = facts.get(site.caller.key)
                if caller is None:
                    ok = False
                    break
                stmt = caller.order.enclosing(site.node)
                if stmt is not None and any(
                    caller.order.covers_after(stmt, bump)
                    for bump in caller.bumps
                ):
                    continue
                if absolved(site.caller.key, stack | {key}):
                    continue
                ok = False
                break
            memo[key] = ok
            return ok

        findings: List[Finding] = []
        for key in sorted(uncovered):
            if absolved(key, set()):
                continue
            fact = facts[key]
            for _, anchor, attr in uncovered[key]:
                findings.append(
                    self.finding_at(
                        fact.info.module_path,
                        anchor,
                        f"{fact.info.qualname} mutates `{attr}` without "
                        f"bumping `{manifest.VERSION_COUNTER}` on every "
                        "path (no caller bumps after the call either); "
                        "memoized policies will serve stale predictions",
                    )
                )
        return findings


def _collect_facts(info: FunctionInfo) -> _FunctionFacts:
    fact = _FunctionFacts(info)
    buffers = manifest.VERSIONED_BUFFER_ATTRS
    aliases = _buffer_aliases(info.node, buffers)
    for node in _own_nodes(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _buffer_store(target, buffers, aliases)
                if attr is not None:
                    _note_write(fact, node, attr)
                if _is_version_bump(target):
                    stmt = fact.order.enclosing(node)
                    if stmt is not None:
                        fact.bumps.append(stmt)
        elif isinstance(node, ast.Call):
            attr = _mutating_call_target(node, buffers, aliases)
            if attr is not None:
                _note_write(fact, node, attr)
    return fact


def _note_write(fact: _FunctionFacts, node: ast.AST, attr: str) -> None:
    stmt = fact.order.enclosing(node)
    if stmt is not None:
        fact.writes.append((stmt, node, attr))


def _buffer_aliases(
    function: ast.AST, buffers: Tuple[str, ...]
) -> Set[str]:
    """Local names bound *from* a versioned buffer attribute
    (``flat = q._flat``).  A fresh local list (``flat = [0] * n`` in
    ``_grow``) is not an alias -- writes into it never reach a live
    table."""
    aliases: Set[str] = set()
    for node in _own_nodes(function):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Attribute)
            and node.value.attr in buffers
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _buffer_store(
    target: ast.AST, buffers: Tuple[str, ...], aliases: Set[str]
) -> Optional[str]:
    """The buffer attr a subscript store hits, else ``None``.

    Whole-attribute rebinds (``self._flat = fresh``) are exempt: they
    install a new buffer rather than mutating the live one, and the
    ``copy()``/``__init__`` idiom depends on that.
    """
    if not isinstance(target, ast.Subscript):
        return None
    base = target.value
    if isinstance(base, ast.Attribute) and base.attr in buffers:
        return base.attr
    if isinstance(base, ast.Name) and base.id in aliases:
        return base.id
    return None


def _mutating_call_target(
    call: ast.Call, buffers: Tuple[str, ...], aliases: Set[str]
) -> Optional[str]:
    """The buffer attr an in-place mutating method call hits."""
    from repro.analysis.index import _MUTATING_METHODS

    func = call.func
    if not (
        isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS
    ):
        return None
    base = func.value
    if isinstance(base, ast.Attribute) and base.attr in buffers:
        return base.attr
    if isinstance(base, ast.Name) and base.id in aliases:
        return base.id
    return None


def _is_version_bump(target: ast.AST) -> bool:
    return (
        isinstance(target, ast.Attribute)
        and target.attr == manifest.VERSION_COUNTER
    )
