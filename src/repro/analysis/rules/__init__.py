"""The shipped rule pack; importing this package registers every rule.

========== ========= ====================================================
DET001     error     randomness only via ``repro.sim.random``
DET002     error     no wall-clock reads outside ``benchmarks/``
DET003     warning   no unordered iteration where events/randomness flow
DET004     error     no float ``==``/``!=`` on simulation timestamps
PAR001     error     Cell/.submit callables module-level, payloads picklable
PAR002     error     worker-reachable code writes no module globals
PAR003     error     frozen arena buffers thawed before element-wise writes
PERF001    warning   hot-path manifest classes declare ``__slots__``
SIM001     error     process bodies yield only Timeout/Wait directives
SIM002     warning   capture/snapshot methods pair with restore methods
SIM003     error     reusable events recycled before callback, dead after
VER001     error     Q-buffer mutations bump ``version`` on every path
========== ========= ====================================================

DET/SIM001-2/PERF are per-module rules; VER001 and the PAR family are
whole-program rules running against the
:class:`~repro.analysis.index.ProjectIndex` (see
:mod:`repro.analysis.callgraph`).
"""

from repro.analysis.rules import (  # noqa: F401  (import = register)
    arena,
    determinism,
    parallel,
    performance,
    simulation,
    versioning,
)

__all__ = [
    "arena",
    "determinism",
    "parallel",
    "performance",
    "simulation",
    "versioning",
]
