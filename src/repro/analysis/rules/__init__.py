"""The shipped rule pack; importing this package registers every rule.

========== ========= ====================================================
DET001     error     randomness only via ``repro.sim.random``
DET002     error     no wall-clock reads outside ``benchmarks/``
DET003     warning   no unordered iteration where events/randomness flow
DET004     error     no float ``==``/``!=`` on simulation timestamps
SIM001     error     process bodies yield only Timeout/Wait directives
SIM002     warning   capture/snapshot methods pair with restore methods
PERF001    warning   hot-path manifest classes declare ``__slots__``
========== ========= ====================================================
"""

from repro.analysis.rules import (  # noqa: F401  (import = register)
    determinism,
    performance,
    simulation,
)

__all__ = ["determinism", "performance", "simulation"]
