"""DET00x: rules guarding byte-identical experiment reproduction.

Every experiment in this repository is required to produce identical
bytes across seeds of the hash randomizer, ``--jobs`` counts and
``batch_samples`` settings.  These rules encode the coding invariants
that proof rests on:

* **DET001** -- all randomness flows through named
  :class:`repro.sim.random.RandomStreams` streams (or the sanctioned
  :func:`repro.sim.random.seeded_generator` shim), so adding a
  component never perturbs another component's draws.
* **DET002** -- simulation code reads the kernel clock, never the
  wall clock; only the benchmark harnesses measure real time.
* **DET003** -- code that schedules kernel events or draws randomness
  never iterates an unordered collection: ``set`` iteration order
  depends on ``PYTHONHASHSEED``.
* **DET004** -- simulation timestamps are floats accumulated by
  addition; ``==``/``!=`` on them silently stops matching once a code
  path changes the accumulation pattern.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.analysis import manifest
from repro.analysis.core import Finding, ModuleContext, Rule, dotted_name, register

__all__ = [
    "DirectRngConstruction",
    "FloatTimestampEquality",
    "UnorderedIteration",
    "WallClockRead",
]

_NUMPY_RANDOM_PREFIXES = ("np.random.", "numpy.random.")
_BARE_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


@register
class DirectRngConstruction(Rule):
    rule_id = "DET001"
    severity = "error"
    description = (
        "random generators are constructed only inside repro.sim.random; "
        "everywhere else use RandomStreams.get(name) or seeded_generator(seed)"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if manifest.is_rng_module(module.posix_path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"import of {alias.name!r}: draw through "
                            "repro.sim.random.RandomStreams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                from_module = node.module or ""
                if from_module == "random" or from_module.startswith(
                    "numpy.random"
                ):
                    yield self.finding(
                        module,
                        node,
                        f"import from {from_module!r}: draw through "
                        "repro.sim.random.RandomStreams instead",
                    )
                elif from_module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.finding(
                        module,
                        node,
                        "import of numpy.random: draw through "
                        "repro.sim.random.RandomStreams instead",
                    )
            elif isinstance(node, ast.Call):
                message = self._call_violation(node)
                if message:
                    yield self.finding(module, node, message)

    @staticmethod
    def _call_violation(node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted and dotted.startswith(_NUMPY_RANDOM_PREFIXES):
            return (
                f"direct {dotted}(...) construction/draw; use "
                "repro.sim.random (RandomStreams or seeded_generator)"
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _BARE_RNG_CONSTRUCTORS
        ):
            return (
                f"direct {node.func.id}(...) generator construction; use "
                "repro.sim.random (RandomStreams or seeded_generator)"
            )
        return None


@register
class WallClockRead(Rule):
    rule_id = "DET002"
    severity = "error"
    description = (
        "no wall-clock reads in simulation code: simulated time comes from "
        "Simulator.now; real time belongs in benchmarks/ only"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if manifest.is_wall_clock_exempt(module.posix_path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if (node.module or "") == "time":
                    for alias in node.names:
                        if alias.name in _TIME_ATTRS:
                            yield self.finding(
                                module,
                                node,
                                f"import of time.{alias.name}: wall-clock "
                                "reads are restricted to benchmarks/",
                            )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if not dotted:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "time"
                    and parts[1] in _TIME_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() reads the wall clock; use the kernel "
                        "clock (Simulator.now) or move to benchmarks/",
                    )
                elif parts[-1] in _DATETIME_ATTRS and any(
                    part in ("datetime", "date") for part in parts[:-1]
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() reads the wall clock; simulation "
                        "timestamps must come from the kernel",
                    )


@register
class UnorderedIteration(Rule):
    rule_id = "DET003"
    severity = "warning"
    description = (
        "modules that schedule kernel events or draw randomness must not "
        "iterate bare set / dict.keys() / dict.values(); wrap the iterable "
        "in sorted(...) or an explicit ordered container (list/tuple)"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not any(
            module.imports_prefix(prefix)
            for prefix in manifest.SCHEDULING_IMPORT_PREFIXES
        ):
            return
        for node, iterable in _iteration_sources(module.tree):
            message = self._iterable_violation(iterable)
            if message:
                yield self.finding(module, iterable, message)

    @staticmethod
    def _iterable_violation(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Set):
            return (
                "iteration over a set literal: order depends on "
                "PYTHONHASHSEED; wrap in sorted(...)"
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return (
                    f"iteration over {func.id}(...): order depends on "
                    "PYTHONHASHSEED; wrap in sorted(...)"
                )
            if isinstance(func, ast.Attribute) and func.attr in (
                "keys",
                "values",
            ):
                return (
                    f"iteration over bare .{func.attr}(): make the order "
                    "explicit with sorted(...) or an ordered container "
                    "(list/tuple)"
                )
        return None


def _iteration_sources(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """Yield ``(owner, iterable)`` for every for-loop/comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                yield node, generator.iter


@register
class FloatTimestampEquality(Rule):
    rule_id = "DET004"
    severity = "error"
    description = (
        "no float ==/!= on simulation timestamps "
        f"(names: {', '.join(sorted(manifest.TIMESTAMP_NAMES))}); compare "
        "with <=/>= windows, except against float('inf') sentinels"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    sides = (left, right)
                    if any(map(_is_timestamp_name, sides)) and not any(
                        map(_is_exact_sentinel, sides)
                    ):
                        yield self.finding(
                            module,
                            node,
                            "float equality on a simulation timestamp; "
                            "use an ordering comparison or a tolerance",
                        )
                        break
                left = right


def _is_timestamp_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in manifest.TIMESTAMP_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in manifest.TIMESTAMP_NAMES
    return False


def _is_exact_sentinel(node: ast.AST) -> bool:
    """Comparands for which exact equality is well-defined.

    ``float("inf")`` / ``math.inf`` sentinels (and their negations)
    compare exactly; so do ``None`` / ``str`` / ``bool`` constants,
    which signal the comparison is not between two float times.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_exact_sentinel(node.operand)
    if isinstance(node, ast.Constant):
        return node.value is None or isinstance(node.value, (str, bool))
    if isinstance(node, ast.Call):
        func = node.func
        return (
            isinstance(func, ast.Name)
            and func.id == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and str(node.args[0].value).lstrip("+-") in ("inf", "Infinity")
        )
    if isinstance(node, ast.Attribute):
        return node.attr in ("inf", "infinity")
    return False
