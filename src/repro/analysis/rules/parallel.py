"""PAR001/PAR002: contracts on work crossing a process boundary.

``repro.evalx.parallel`` fans experiment cells out to worker
processes; the fleet executor builds on it.  Everything that crosses
the boundary is pickled, and the results must be byte-identical at
any ``--jobs``, which imposes two contracts the interpreter only
enforces at runtime (or worse, silently):

* **PAR001 (picklability)** -- the callable of a
  :class:`~repro.evalx.parallel.Cell` (and the first argument of any
  executor-style ``.submit``) must be a *module-level* function:
  lambdas and nested defs fail to pickle, and bound methods drag
  their whole instance across the boundary.  Cell payloads must not
  contain lambdas or generator expressions either -- payloads are
  scalars by design (PR 6), so a worker can be re-sharded without
  changing results.
* **PAR002 (state isolation)** -- code reachable from a worker entry
  point must not write module-level globals (``global`` statements or
  assignments to imported-module attributes).  Workers mutate a
  *copy* of the module; the parent never sees the write, which is
  the cross-process state-leak class PR 6 fixed in the cache-stats
  plumbing.

Worker entry points are discovered from the project index (every
resolved ``Cell`` fn and ``.submit`` target) and PAR002 walks the
conservative call graph from there.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.analysis import manifest
from repro.analysis.core import Finding, ModuleContext, ProjectRule, register
from repro.analysis.index import (
    FunctionInfo,
    ModuleSymbols,
    ProjectIndex,
    _own_nodes,
)

__all__ = ["UnpicklableSubmission", "WorkerGlobalWrite"]


class _Submission:
    """One Cell(...) or .submit(...) site with its callable/payload."""

    __slots__ = ("module", "call", "fn", "payload", "via")

    def __init__(
        self,
        module: ModuleContext,
        call: ast.Call,
        fn: Optional[ast.AST],
        payload: List[ast.AST],
        via: str,
    ) -> None:
        self.module = module
        self.call = call
        self.fn = fn
        self.payload = payload
        self.via = via  # "Cell" or "submit"


def _iter_submissions(project: ProjectIndex) -> Iterator[_Submission]:
    for path in sorted(project.modules):
        module = project.modules[path]
        symbols = project.symbols[path]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_cell_constructor(node.func, symbols):
                fn, payload = _split_cell_args(node)
                yield _Submission(module, node, fn, payload, "Cell")
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in manifest.SUBMIT_METHODS
                and node.args
            ):
                yield _Submission(
                    module, node, node.args[0], list(node.args[1:]), "submit"
                )


def _is_cell_constructor(func: ast.AST, symbols: ModuleSymbols) -> bool:
    if isinstance(func, ast.Name):
        imported = symbols.imported_from(func.id)
        return (
            imported is not None
            and imported[1] == manifest.CELL_CONSTRUCTOR
            and imported[0] in manifest.CELL_MODULES
        )
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.attr != manifest.CELL_CONSTRUCTOR:
            return False
        base = func.value.id
        dotted = symbols.modules.get(base)
        if dotted is None:
            imported = symbols.imported_from(base)
            if imported is not None:
                dotted = f"{imported[0]}.{imported[1]}"
        return dotted is not None and dotted in manifest.CELL_MODULES
    return False


def _split_cell_args(
    call: ast.Call,
) -> Tuple[Optional[ast.AST], List[ast.AST]]:
    """The ``fn`` argument and the payload arguments of a Cell call."""
    fn: Optional[ast.AST] = None
    payload: List[ast.AST] = []
    for index, arg in enumerate(call.args):
        if index == 0:
            fn = arg
        else:
            payload.append(arg)
    for keyword in call.keywords:
        if keyword.arg == "fn" and fn is None:
            fn = keyword.value
        else:
            payload.append(keyword.value)
    return fn, payload


def _resolve_submitted(
    submission: _Submission, project: ProjectIndex
) -> Tuple[Optional[FunctionInfo], Optional[str]]:
    """``(resolved function, problem)`` for a submission's callable.

    ``problem`` is a human-readable defect when the callable can be
    proven unpicklable; ``(None, None)`` means "cannot resolve, give
    the benefit of the doubt".
    """
    fn = submission.fn
    if fn is None:
        return None, None
    if isinstance(fn, ast.Lambda):
        return None, "a lambda (unpicklable)"
    if isinstance(fn, ast.Name):
        candidates = [
            info
            for info in project.functions_named(fn.id)
            if info.module_path == submission.module.path
        ]
        for info in candidates:
            if info.is_module_level:
                return info, None
        if candidates:
            info = candidates[0]
            kind = (
                "a method" if info.owner_class is not None
                else "a nested function"
            )
            return info, f"{kind} (`{info.qualname}`, unpicklable by name)"
        imported = project.symbols[submission.module.path].imported_from(
            fn.id
        )
        if imported is not None:
            member = project.module_member(*imported)
            if member is not None and not member.is_module_level:
                return member, (
                    f"not module-level in {member.module_name} "
                    f"(`{member.qualname}`)"
                )
            return member, None
        return None, None
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        base = fn.value.id
        symbols = project.symbols[submission.module.path]
        if base in symbols.modules:
            member = project.module_member(symbols.modules[base], fn.attr)
            return member, None  # module attribute: picklable by ref
        if base == "self":
            return None, f"a bound method (`self.{fn.attr}`)"
        return None, f"a bound method (`{base}.{fn.attr}`)"
    return None, None


@register
class UnpicklableSubmission(ProjectRule):
    rule_id = "PAR001"
    severity = "error"
    description = (
        "callables handed to Cell/.submit must be module-level and "
        "cell payloads free of lambdas/generator expressions"
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        for submission in _iter_submissions(project):
            _, problem = _resolve_submitted(submission, project)
            if problem is not None:
                anchor = submission.fn or submission.call
                yield self.finding_at(
                    submission.module.path,
                    anchor,
                    f"{submission.via} callable is {problem}; worker "
                    "submissions must be module-level functions",
                )
            for arg in submission.payload:
                for inner in ast.walk(arg):
                    if isinstance(inner, (ast.Lambda, ast.GeneratorExp)):
                        what = (
                            "lambda"
                            if isinstance(inner, ast.Lambda)
                            else "generator expression"
                        )
                        yield self.finding_at(
                            submission.module.path,
                            inner,
                            f"{submission.via} payload contains a {what}; "
                            "payloads must be picklable scalars so cells "
                            "re-shard without changing results",
                        )
                        break


@register
class WorkerGlobalWrite(ProjectRule):
    rule_id = "PAR002"
    severity = "error"
    description = (
        "code reachable from worker entry points must not write "
        "module-level globals"
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        roots: List[FunctionInfo] = []
        for submission in _iter_submissions(project):
            info, _ = _resolve_submitted(submission, project)
            if info is not None:
                roots.append(info)
        if not roots:
            return
        graph = project.callgraph()
        for info in graph.reachable_from(roots):
            for node in _own_nodes(info.node):
                if isinstance(node, ast.Global):
                    yield self.finding_at(
                        info.module_path,
                        node,
                        f"worker-reachable {info.qualname} declares "
                        f"`global {', '.join(node.names)}`; workers "
                        "mutate a copy the parent never sees",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    symbols = project.symbols[info.module_path]
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in symbols.modules
                        ):
                            yield self.finding_at(
                                info.module_path,
                                node,
                                f"worker-reachable {info.qualname} writes "
                                f"module attribute "
                                f"`{target.value.id}.{target.attr}`; "
                                "cross-process module state never "
                                "propagates back",
                            )
        return
