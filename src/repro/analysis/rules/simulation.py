"""SIM00x: rules guarding the simulation kernel's contracts.

* **SIM001** -- a :class:`repro.sim.process.Process` generator body
  may only yield the kernel's directives (``Timeout`` / ``Wait``).
  Yielding anything else raises at *dispatch* time, possibly hours
  into a long experiment; the linter catches it at review time.
* **SIM002** -- snapshot/restore is how the sensing fast path rolls a
  node back over an invalidated sample block.  A class that grows a
  ``capture_*``/``snapshot_*`` method without the matching
  ``restore_*`` cannot participate in rollback, which surfaces as a
  silent divergence, not an exception.
* **SIM003** -- the zero-allocation timeout path (PR 7) recycles
  ``reusable=True`` events through a free list.  Ownership transfers
  at ``_release(free, event)``/``event.recycle()``: the event must be
  recycled *before* its callback runs (the callback may schedule and
  pop the very same object back off the free list) and must never be
  referenced afterwards -- a read after recycle observes another
  timeout's fields.  PR 7 states this contract only in prose; SIM003
  enforces it structurally, terminator-aware so the kernel's
  ``release-then-continue`` drain loops stay clean.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.analysis import manifest
from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    StatementOrder,
    register,
)

__all__ = ["FreeListOwnership", "NonDirectiveYield", "UnpairedSnapshot"]

_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


@register
class NonDirectiveYield(Rule):
    rule_id = "SIM001"
    severity = "error"
    description = (
        "process generator bodies (functions yielding Timeout/Wait) may "
        "only yield kernel-recognised directives"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for function in _functions(module.tree):
            yields = list(_own_yields(function))
            if not any(
                _is_directive_call(node.value) for node in yields
            ):
                continue  # not a process body
            for node in yields:
                message = _yield_violation(node)
                if message:
                    yield self.finding(module, node, message)


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_yields(function: ast.AST) -> Iterator[ast.Yield]:
    """Yield expressions belonging to ``function`` itself.

    Nested functions, lambdas and classes open their own generator
    scopes, so their yields are not this function's.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        if isinstance(node, ast.Yield):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_directive_call(value: Optional[ast.AST]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in manifest.PROCESS_DIRECTIVES
    if isinstance(func, ast.Attribute):
        return func.attr in manifest.PROCESS_DIRECTIVES
    return False


def _yield_violation(node: ast.Yield) -> Optional[str]:
    """Why this yield cannot be a kernel directive, or ``None``.

    Names and attribute loads get the benefit of the doubt (they may
    hold a directive built elsewhere); literals, expressions and
    calls to non-directive constructors cannot.
    """
    value = node.value
    if value is None:
        return (
            "bare yield in a process body: the kernel only accepts "
            "Timeout/Wait directives"
        )
    if _is_directive_call(value):
        return None
    if isinstance(value, ast.Constant):
        return (
            f"process body yields constant {value.value!r}; the kernel "
            "only accepts Timeout/Wait directives"
        )
    if isinstance(
        value, (ast.Tuple, ast.List, ast.Dict, ast.Set, ast.JoinedStr)
    ):
        return (
            "process body yields a literal; the kernel only accepts "
            "Timeout/Wait directives"
        )
    if isinstance(value, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp)):
        return (
            "process body yields an expression result; the kernel only "
            "accepts Timeout/Wait directives"
        )
    if isinstance(value, ast.Call):
        return (
            "process body yields a non-directive call result; the kernel "
            "only accepts Timeout/Wait directives"
        )
    return None


@register
class UnpairedSnapshot(Rule):
    rule_id = "SIM002"
    severity = "warning"
    description = (
        "snapshot/restore methods must be paired per class: a "
        "capture_*/snapshot_* method needs the matching restore_*"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name in sorted(methods):
                expected = _expected_restore(name)
                if expected is not None and expected not in methods:
                    yield self.finding(
                        module,
                        methods[name],
                        f"{node.name}.{name} has no matching "
                        f"{expected}(); a snapshot that cannot be "
                        "restored breaks rollback",
                    )


def _expected_restore(method_name: str) -> Optional[str]:
    if method_name in ("capture", "snapshot"):
        return "restore"
    for prefix in ("capture_", "snapshot_"):
        if method_name.startswith(prefix):
            return "restore_" + method_name[len(prefix):]
    return None


@register
class FreeListOwnership(Rule):
    rule_id = "SIM003"
    severity = "error"
    description = (
        "reusable kernel events are recycled before their callback "
        "runs and never referenced after release"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if (
            "repro/sim/" not in module.posix_path
            and not module.imports_prefix("repro.sim")
        ):
            return
        for function in _functions(module.tree):
            yield from self._check_function(module, function)

    def _check_function(
        self, module: ModuleContext, function: ast.AST
    ) -> Iterator[Finding]:
        releases = list(_release_sites(function))
        if not releases:
            return
        order = StatementOrder(function)
        bound = _bound_callbacks(function)
        for call, name in releases:
            release_stmt = order.enclosing(call)
            if release_stmt is None:
                continue
            yield from self._uses_after_release(
                module, order, release_stmt, name
            )
            yield from self._callback_before_release(
                module, order, function, release_stmt, name, bound
            )

    def _uses_after_release(
        self,
        module: ModuleContext,
        order: StatementOrder,
        release_stmt: ast.stmt,
        name: str,
    ) -> Iterator[Finding]:
        for stmt in order.fallthrough(release_stmt):
            load = _first_load(stmt, name)
            if load is not None:
                yield self.finding(
                    module,
                    load,
                    f"`{name}` referenced after being recycled to the "
                    "free list; the object may already be another "
                    "event",
                )
                return
            if _rebinds(stmt, name):
                return  # fresh object from here on

    def _callback_before_release(
        self,
        module: ModuleContext,
        order: StatementOrder,
        function: ast.AST,
        release_stmt: ast.stmt,
        name: str,
        bound: List[Tuple[str, str]],
    ) -> Iterator[Finding]:
        for node in _own_walk(function):
            if not isinstance(node, ast.Call):
                continue
            invoked = _callback_invocation(node, name, bound)
            if not invoked:
                continue
            call_stmt = order.enclosing(node)
            if call_stmt is None or call_stmt is release_stmt:
                continue
            if order.may_follow(call_stmt, release_stmt):
                yield self.finding(
                    module,
                    node,
                    f"`{name}.callback` runs before `{name}` is "
                    "recycled; recycle first so the callback can "
                    "reuse the event slot",
                )


def _release_sites(function: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """``(call, released local name)`` for every free-list release."""
    for node in _own_walk(function):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in manifest.FREE_LIST_RELEASE_FUNCTIONS
            and node.args
            and isinstance(node.args[-1], ast.Name)
        ):
            yield node, node.args[-1].id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in manifest.FREE_LIST_RELEASE_METHODS
            and isinstance(func.value, ast.Name)
        ):
            yield node, func.value.id


def _bound_callbacks(function: ast.AST) -> List[Tuple[str, str]]:
    """``(local name, event name)`` for ``cb = event.callback``."""
    bound: List[Tuple[str, str]] = []
    for node in _own_walk(function):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Attribute) and value.attr == "callback"
            and isinstance(value.value, ast.Name)
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                bound.append((target.id, value.value.id))
    return bound


def _callback_invocation(
    call: ast.Call, name: str, bound: List[Tuple[str, str]]
) -> bool:
    """True when ``call`` invokes ``name``'s callback (directly or via
    a local bound from ``name.callback``)."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "callback"
        and isinstance(func.value, ast.Name)
        and func.value.id == name
    ):
        return True
    if isinstance(func, ast.Name):
        return any(
            local == func.id and event == name for local, event in bound
        )
    return False


def _first_load(stmt: ast.stmt, name: str) -> Optional[ast.Name]:
    """The first ``Load`` of ``name`` anywhere in ``stmt``'s subtree
    (nested function/class scopes excluded: their loads are deferred
    past the current dispatch)."""
    for node in _subtree(stmt):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            return node
    return None


def _rebinds(stmt: ast.stmt, name: str) -> bool:
    """True when ``stmt`` rebinds ``name`` to a fresh object (plain
    assignment, loop target or ``del``) -- a barrier for the
    use-after-recycle scan."""
    if isinstance(stmt, ast.Assign):
        return any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        )
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return isinstance(stmt.target, ast.Name) and stmt.target.id == name
    if isinstance(stmt, ast.Delete):
        return any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        )
    return False


def _own_walk(function: ast.AST) -> Iterator[ast.AST]:
    """Walk ``function`` without entering nested def/class scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _subtree(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Every node under ``stmt`` (scopes excluded), ``stmt`` included."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _SCOPE_NODES):
                stack.append(child)
