"""SIM00x: rules guarding the simulation kernel's contracts.

* **SIM001** -- a :class:`repro.sim.process.Process` generator body
  may only yield the kernel's directives (``Timeout`` / ``Wait``).
  Yielding anything else raises at *dispatch* time, possibly hours
  into a long experiment; the linter catches it at review time.
* **SIM002** -- snapshot/restore is how the sensing fast path rolls a
  node back over an invalidated sample block.  A class that grows a
  ``capture_*``/``snapshot_*`` method without the matching
  ``restore_*`` cannot participate in rollback, which surfaces as a
  silent divergence, not an exception.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional

from repro.analysis import manifest
from repro.analysis.core import Finding, ModuleContext, Rule, register

__all__ = ["NonDirectiveYield", "UnpairedSnapshot"]

_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


@register
class NonDirectiveYield(Rule):
    rule_id = "SIM001"
    severity = "error"
    description = (
        "process generator bodies (functions yielding Timeout/Wait) may "
        "only yield kernel-recognised directives"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for function in _functions(module.tree):
            yields = list(_own_yields(function))
            if not any(
                _is_directive_call(node.value) for node in yields
            ):
                continue  # not a process body
            for node in yields:
                message = _yield_violation(node)
                if message:
                    yield self.finding(module, node, message)


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_yields(function: ast.AST) -> Iterator[ast.Yield]:
    """Yield expressions belonging to ``function`` itself.

    Nested functions, lambdas and classes open their own generator
    scopes, so their yields are not this function's.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        if isinstance(node, ast.Yield):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_directive_call(value: Optional[ast.AST]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in manifest.PROCESS_DIRECTIVES
    if isinstance(func, ast.Attribute):
        return func.attr in manifest.PROCESS_DIRECTIVES
    return False


def _yield_violation(node: ast.Yield) -> Optional[str]:
    """Why this yield cannot be a kernel directive, or ``None``.

    Names and attribute loads get the benefit of the doubt (they may
    hold a directive built elsewhere); literals, expressions and
    calls to non-directive constructors cannot.
    """
    value = node.value
    if value is None:
        return (
            "bare yield in a process body: the kernel only accepts "
            "Timeout/Wait directives"
        )
    if _is_directive_call(value):
        return None
    if isinstance(value, ast.Constant):
        return (
            f"process body yields constant {value.value!r}; the kernel "
            "only accepts Timeout/Wait directives"
        )
    if isinstance(
        value, (ast.Tuple, ast.List, ast.Dict, ast.Set, ast.JoinedStr)
    ):
        return (
            "process body yields a literal; the kernel only accepts "
            "Timeout/Wait directives"
        )
    if isinstance(value, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp)):
        return (
            "process body yields an expression result; the kernel only "
            "accepts Timeout/Wait directives"
        )
    if isinstance(value, ast.Call):
        return (
            "process body yields a non-directive call result; the kernel "
            "only accepts Timeout/Wait directives"
        )
    return None


@register
class UnpairedSnapshot(Rule):
    rule_id = "SIM002"
    severity = "warning"
    description = (
        "snapshot/restore methods must be paired per class: a "
        "capture_*/snapshot_* method needs the matching restore_*"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name in sorted(methods):
                expected = _expected_restore(name)
                if expected is not None and expected not in methods:
                    yield self.finding(
                        module,
                        methods[name],
                        f"{node.name}.{name} has no matching "
                        f"{expected}(); a snapshot that cannot be "
                        "restored breaks rollback",
                    )


def _expected_restore(method_name: str) -> Optional[str]:
    if method_name in ("capture", "snapshot"):
        return "restore"
    for prefix in ("capture_", "snapshot_"):
        if method_name.startswith(prefix):
            return "restore_" + method_name[len(prefix):]
    return None
