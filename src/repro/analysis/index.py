"""Pass 1 of the whole-program analyzer: the :class:`ProjectIndex`.

The per-module rules (DET*/SIM001-2/PERF001) see one
:class:`~repro.analysis.core.ModuleContext` at a time, which is
exactly what made the PR 8 stale-version bug invisible to them: the
buffer write sat in one module, the version contract in another.  The
cross-module rules (VER001, PAR00x) instead run against this index --
a symbol table over *every* linted module built in a single pass:

* every module's import aliases (``import x as y`` / ``from x import f``),
* every function and method with its qualified name, nesting and
  owning class,
* every class with its method table,
* an attribute-write index (``attr name -> write sites``), which is
  how VER001 finds Q-buffer mutations without hard-coding modules.

The index is deliberately *syntactic*: it resolves what the source
spells out (module-level names, import aliases, ``self.`` methods)
and leaves dynamic dispatch to the conservative by-name fallback in
:mod:`repro.analysis.callgraph`.  These classes are allocated per
function/class of the tree on every lint run (the tier-1 gate and the
``BENCH_lint`` budget both lint the full tree), so they are
registered in the PERF001 hot-path manifest and declare
``__slots__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import ModuleContext

__all__ = [
    "AttributeWrite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleSymbols",
    "ProjectIndex",
    "module_dotted_name",
]


def module_dotted_name(posix_path: str) -> str:
    """The importable dotted name a source path most likely maps to.

    ``src/repro/rl/dense.py -> repro.rl.dense``; package
    ``__init__.py`` files map to the package itself.  Paths outside a
    recognisable root (test fixtures, ``<string>`` sources) fall back
    to their stem, which keeps same-module resolution working even
    when cross-module resolution has nothing to anchor to.
    """
    path = posix_path[:-3] if posix_path.endswith(".py") else posix_path
    parts = [part for part in path.split("/") if part not in (".", "")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    elif parts:
        parts = parts[-1:]
    return ".".join(parts) if parts else "<module>"


class ModuleSymbols:
    """One module's import aliases, resolved to dotted names.

    ``modules`` maps a local name to the module it denotes
    (``import numpy as np`` -> ``{"np": "numpy"}``); ``symbols`` maps
    a local name to ``(defining module, original name)``
    (``from repro.evalx.parallel import Cell as C`` ->
    ``{"C": ("repro.evalx.parallel", "Cell")}``).
    """

    __slots__ = ("modules", "symbols")

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}
        self.symbols: Dict[str, Tuple[str, str]] = {}

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.modules[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.symbols[local] = (node.module, alias.name)

    def imported_from(self, local_name: str) -> Optional[Tuple[str, str]]:
        """``(module, original name)`` for an imported symbol, or None."""
        return self.symbols.get(local_name)


class FunctionInfo:
    """One function or method, with enough context to resolve calls."""

    __slots__ = (
        "module_path",
        "module_name",
        "name",
        "qualname",
        "node",
        "owner_class",
        "is_nested",
    )

    def __init__(
        self,
        module_path: str,
        module_name: str,
        qualname: str,
        node: ast.AST,
        owner_class: Optional[str],
        is_nested: bool,
    ) -> None:
        self.module_path = module_path
        self.module_name = module_name
        self.name = node.name
        self.qualname = qualname
        self.node = node
        self.owner_class = owner_class
        self.is_nested = is_nested

    @property
    def key(self) -> Tuple[str, str]:
        """The node key used by the call graph: (module path, qualname)."""
        return (self.module_path, self.qualname)

    @property
    def is_module_level(self) -> bool:
        """True for a plain top-level ``def`` (picklable by reference)."""
        return self.owner_class is None and not self.is_nested

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.module_name}.{self.qualname})"


class ClassInfo:
    """One class definition plus its method table."""

    __slots__ = ("module_path", "module_name", "name", "node", "methods")

    def __init__(
        self, module_path: str, module_name: str, node: ast.ClassDef
    ) -> None:
        self.module_path = module_path
        self.module_name = module_name
        self.name = node.name
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.module_name}.{self.name})"


class AttributeWrite:
    """One mutation site of an instance attribute (``x.attr[...] = v``,
    ``x.attr.update(...)`` or ``x.attr = v``)."""

    __slots__ = ("attr", "kind", "node", "function")

    def __init__(
        self,
        attr: str,
        kind: str,
        node: ast.AST,
        function: Optional[FunctionInfo],
    ) -> None:
        self.attr = attr
        #: "subscript" (item store), "mutate" (mutating method call)
        #: or "rebind" (whole-attribute assignment).
        self.kind = kind
        self.node = node
        self.function = function


#: Method names that mutate a dict/list container in place.  Used by
#: the attribute-write index so VER001 sees ``q._q.update(...)`` the
#: same way it sees ``q._q[key] = v``.
_MUTATING_METHODS = frozenset(
    {"update", "setdefault", "pop", "popitem", "clear",
     "append", "extend", "insert", "remove"}
)


class ProjectIndex:
    """The whole-program symbol table (pass 1 of the analyzer).

    Built once per lint run over every parsed module, then shared by
    all cross-module rules and the call graph.  Lookups:

    * :attr:`functions` -- ``(module path, qualname) -> FunctionInfo``
    * :attr:`classes` -- ``(module path, class name) -> ClassInfo``
    * :meth:`functions_named` -- conservative by-name lookup
    * :meth:`attribute_writes` -- every write site of an attribute name
    * :meth:`module_member` -- resolve ``module.symbol`` to a function
    """

    __slots__ = (
        "modules",
        "symbols",
        "functions",
        "classes",
        "_by_name",
        "_by_module_name",
        "_attr_writes",
        "_callgraph",
    )

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules: Dict[str, ModuleContext] = {
            module.path: module for module in modules
        }
        self.symbols: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._by_module_name: Dict[str, List[ModuleContext]] = {}
        self._attr_writes: Dict[str, List[AttributeWrite]] = {}
        self._callgraph = None
        for module in modules:
            self._index_module(module)

    # ------------------------------------------------------------------
    # construction

    def _index_module(self, module: ModuleContext) -> None:
        dotted = module_dotted_name(module.posix_path)
        self._by_module_name.setdefault(dotted, []).append(module)
        symbols = ModuleSymbols()
        symbols.collect(module.tree)
        self.symbols[module.path] = symbols
        self._index_scope(
            module, dotted, module.tree.body, prefix="", owner=None,
            nested=False,
        )

    def _index_scope(
        self,
        module: ModuleContext,
        dotted: str,
        body: Sequence[ast.stmt],
        prefix: str,
        owner: Optional[ClassInfo],
        nested: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                info = FunctionInfo(
                    module_path=module.path,
                    module_name=dotted,
                    qualname=qualname,
                    node=stmt,
                    owner_class=owner.name if owner is not None else None,
                    is_nested=nested,
                )
                self.functions[info.key] = info
                self._by_name.setdefault(stmt.name, []).append(info)
                if owner is not None and not nested:
                    owner.methods[stmt.name] = info
                self._collect_attr_writes(stmt, info)
                self._index_scope(
                    module, dotted, stmt.body, prefix=qualname + ".",
                    owner=None, nested=True,
                )
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(module.path, dotted, stmt)
                self.classes[(module.path, stmt.name)] = info
                self._index_scope(
                    module, dotted, stmt.body, prefix=stmt.name + ".",
                    owner=info, nested=nested,
                )
            elif isinstance(
                stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)
            ):
                # Conditionally-defined module-level functions (TYPE_
                # CHECKING guards, try/except import fallbacks) still
                # index; their bodies cannot nest deeper surprises
                # than the recursion already handles.
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        self._index_scope(
                            module, dotted, [inner], prefix=prefix,
                            owner=owner, nested=nested,
                        )

    def _collect_attr_writes(
        self, function: ast.AST, info: FunctionInfo
    ) -> None:
        """Record every ``x.attr`` mutation inside ``function``'s own
        body (nested defs record under their own FunctionInfo)."""
        for node in _own_nodes(function):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Attribute
                    ):
                        self._record_write(
                            target.value.attr, "subscript", node, info
                        )
                    elif isinstance(target, ast.Attribute):
                        self._record_write(target.attr, "rebind", node, info)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Attribute)
                ):
                    self._record_write(
                        func.value.attr, "mutate", node, info
                    )

    def _record_write(
        self, attr: str, kind: str, node: ast.AST,
        info: Optional[FunctionInfo],
    ) -> None:
        self._attr_writes.setdefault(attr, []).append(
            AttributeWrite(attr, kind, node, info)
        )

    # ------------------------------------------------------------------
    # lookups

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function, in deterministic (module, qualname)
        order."""
        for key in sorted(self.functions):
            yield self.functions[key]

    def functions_named(self, name: str) -> List[FunctionInfo]:
        """Every function/method with this bare name (conservative)."""
        return self._by_name.get(name, [])

    def module_level_function(
        self, module: ModuleContext, name: str
    ) -> Optional[FunctionInfo]:
        """The top-level ``def name`` of ``module``, if any."""
        info = self.functions.get((module.path, name))
        if info is not None and info.is_module_level:
            return info
        return None

    def modules_named(self, dotted: str) -> List[ModuleContext]:
        """The indexed modules whose dotted name is ``dotted``."""
        return self._by_module_name.get(dotted, [])

    def module_member(
        self, dotted_module: str, name: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``dotted_module.name`` to an indexed function.

        Falls back through package ``__init__`` re-exports by
        matching the bare name anywhere under the package when the
        exact module is not indexed.
        """
        for module in self.modules_named(dotted_module):
            info = self.functions.get((module.path, name))
            if info is not None:
                return info
        # Re-export fallback: ``from repro.evalx import run_cells``
        # where run_cells lives in repro.evalx.parallel.
        for info in self.functions_named(name):
            if info.is_module_level and info.module_name.startswith(
                dotted_module + "."
            ):
                return info
        return None

    def attribute_writes(self, attr: str) -> List[AttributeWrite]:
        """Every recorded write site of ``attr`` across the project."""
        return self._attr_writes.get(attr, [])

    def callgraph(self):
        """The (lazily built, cached) conservative call graph."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self)
        return self._callgraph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProjectIndex(modules={len(self.modules)}, "
            f"functions={len(self.functions)}, classes={len(self.classes)})"
        )


def _own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Walk ``function``'s body without descending into nested defs,
    lambdas or classes (they own their statements)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
