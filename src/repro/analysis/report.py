"""Rendering lint results for humans (text) and machines (JSON/SARIF).

The JSON document is versioned and schema-stable so CI and editor
integrations can consume it::

    {
      "version": 2,
      "files_checked": 121,
      "summary": {"findings": 0, "suppressed": 9, "baselined": 0},
      "findings": [
        {"path": "...", "line": 12, "column": 5, "rule": "DET001",
         "severity": "error", "message": "..."}
      ],
      "suppressed": [ ...same shape... ],
      "baselined": [ ...same shape... ]
    }

Version history: v1 had no ``baselined`` section/count; v2 (the
whole-program analyzer PR) adds both.

``render_sarif`` emits SARIF 2.1.0 (the static-analysis interchange
format GitHub code scanning and most editors ingest): one ``run``
whose driver lists the registered rules, one ``result`` per finding,
inline-suppressed findings carried with ``suppressions[{"kind":
"inSource"}]`` and baselined ones marked ``baselineState:
"unchanged"`` so consumers can hide known debt.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.core import Finding, LintReport, resolve_rules

__all__ = [
    "finding_to_dict",
    "render_json",
    "render_sarif",
    "render_text",
    "report_to_dict",
    "sarif_to_dict",
]

JSON_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Lint severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "rule": finding.rule,
        "severity": finding.severity,
        "message": finding.message,
    }


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    return {
        "version": JSON_VERSION,
        "files_checked": report.files_checked,
        "summary": {
            "findings": len(report.active),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
        "findings": [finding_to_dict(f) for f in report.active],
        "suppressed": [finding_to_dict(f) for f in report.suppressed],
        "baselined": [finding_to_dict(f) for f in report.baselined],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2)


def _sarif_result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _SARIF_LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    elif finding.baselined:
        result["baselineState"] = "unchanged"
    return result


def sarif_to_dict(report: LintReport) -> Dict[str, Any]:
    rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "warning"),
            },
        }
        for rule in resolve_rules()
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(f) for f in report.findings
                ],
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    return json.dumps(sarif_to_dict(report), indent=2)


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.location}: {finding.rule} "
            f"{finding.severity}: {finding.message}"
        )
    baselined = (
        f"{len(report.baselined)} baselined, " if report.baselined else ""
    )
    lines.append(
        f"{len(report.active)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{baselined}"
        f"{report.files_checked} file(s) checked"
    )
    return "\n".join(lines)
