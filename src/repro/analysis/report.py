"""Rendering lint results for humans (text) and machines (JSON).

The JSON document is versioned and schema-stable so CI and editor
integrations can consume it::

    {
      "version": 1,
      "files_checked": 107,
      "summary": {"findings": 0, "suppressed": 9},
      "findings": [
        {"path": "...", "line": 12, "column": 5, "rule": "DET001",
         "severity": "error", "message": "..."}
      ],
      "suppressed": [ ...same shape... ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.core import Finding, LintReport

__all__ = ["finding_to_dict", "render_json", "render_text", "report_to_dict"]

JSON_VERSION = 1


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "rule": finding.rule,
        "severity": finding.severity,
        "message": finding.message,
    }


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    return {
        "version": JSON_VERSION,
        "files_checked": report.files_checked,
        "summary": {
            "findings": len(report.active),
            "suppressed": len(report.suppressed),
        },
        "findings": [finding_to_dict(f) for f in report.active],
        "suppressed": [finding_to_dict(f) for f in report.suppressed],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2)


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.location}: {finding.rule} "
            f"{finding.severity}: {finding.message}"
        )
    lines.append(
        f"{len(report.active)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    return "\n".join(lines)
