"""Static analysis enforcing CoReDA's determinism and sim-safety rules.

The reproduction's headline guarantee -- byte-identical experiment
output across seeds, worker counts and sampling batch sizes -- is a
*coding discipline*, not a property any one test can prove.  This
package enforces that discipline structurally: an AST rule pack
(:mod:`repro.analysis.rules`) checked by ``repro lint`` and by the
tier-1 gate ``tests/test_lint_clean.py``.

Programmatic use::

    from repro.analysis import lint_paths
    from repro.analysis.report import render_text

    report = lint_paths(["src/repro"])
    assert not report.active, render_text(report)

Policy (which files, which classes, which names) lives in
:mod:`repro.analysis.manifest`; suppression syntax and the framework
itself in :mod:`repro.analysis.core`.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.core import (
    Finding,
    LintReport,
    LintUsageError,
    ModuleContext,
    ProjectRule,
    Rule,
    UnknownRuleError,
    all_rule_ids,
    iter_python_files,
    lint_paths,
    lint_source,
    register,
    resolve_rules,
    rule_families,
)
from repro.analysis.report import render_json, render_sarif, render_text

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "LintUsageError",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "UnknownRuleError",
    "all_rule_ids",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "rule_families",
]
