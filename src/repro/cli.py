"""The ``repro`` command line: train, simulate, inspect, reproduce.

Invoke as ``python -m repro <command>``:

========== ==========================================================
list-adls  the registered ADLs with their steps, tools and sensors
train      learn a routine offline, print the curve, optionally save
           the policy to JSON
simulate   run live guided episodes against a simulated resident and
           print the caregiver report
scenario   replay the paper's Figure 1 tea-making scenario
report     regenerate every paper table/figure (evalx runner)
fleet      simulate a fleet of resident-homes (repro.fleet)
lint       run the determinism / sim-safety static analyzer
========== ==========================================================
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.adls.library import default_registry
from repro.core.config import CoReDAConfig
from repro.core.config_io import load_config
from repro.core.adl import Routine
from repro.core.system import CoReDA
from repro.evalx.tables import ascii_curve, format_table
from repro.planning.store import save_predictor
from repro.reporting.caregiver import CaregiverReport
from repro.resident.dementia import DementiaProfile

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoReDA: context-aware ADL reminding (ICDCS 2007 "
        "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-adls", help="list the registered ADLs")

    train = commands.add_parser("train", help="learn a routine offline")
    train.add_argument("adl", help="ADL name (see list-adls)")
    train.add_argument("--episodes", type=int, default=120)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--config", help="JSON configuration file")
    train.add_argument("--routine", help="comma-separated StepIDs, e.g. 1,3,2,4")
    train.add_argument("--save", help="write the trained policy to this JSON file")
    train.add_argument("--plot", action="store_true",
                       help="print the ASCII learning curve")

    simulate = commands.add_parser(
        "simulate", help="run live guided episodes and report"
    )
    simulate.add_argument("adl", help="ADL name (see list-adls)")
    simulate.add_argument("--episodes", type=int, default=5)
    simulate.add_argument("--severity", type=float, default=0.4,
                          help="dementia severity in [0, 1]")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--config", help="JSON configuration file")
    simulate.add_argument("--adapt", action="store_true",
                          help="enable online adaptation")
    simulate.add_argument("--timeline", action="store_true",
                          help="print the full event timeline")

    commands.add_parser("scenario", help="replay the paper's Figure 1")

    report = commands.add_parser(
        "report", help="regenerate every paper table and figure"
    )
    report.add_argument("--fast", action="store_true")
    report.add_argument("--no-ablations", action="store_true",
                        help="skip the ablation sweeps")
    report.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (output is byte-identical "
                        "for every N)")
    report.add_argument("--cache", metavar="DIR",
                        help="trained-policy cache directory")
    report.add_argument("--timing", action="store_true",
                        help="print per-section timings to stderr")
    report.add_argument("--output", help="also write the report to a file")

    fleet = commands.add_parser(
        "fleet",
        help="simulate a fleet of resident-homes and aggregate metrics",
        description="Expand a synthetic cohort into per-home simulation "
        "cells, shard them over worker processes, share trained policies "
        "through the content-addressed cache, and stream caregiver "
        "metrics.  Output is byte-identical at any --jobs.",
    )
    fleet.add_argument("--adl", default="tea-making",
                       help="ADL name (see list-adls)")
    fleet.add_argument("--homes", type=int, default=100, metavar="N",
                       help="number of resident-homes (default 100)")
    fleet.add_argument("--episodes", type=int, default=1, metavar="K",
                       help="guided episodes per home (default 1)")
    fleet.add_argument("--train-episodes", type=int, default=120,
                       metavar="K", help="training episodes per distinct "
                       "routine (default 120)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--seed-classes", type=int, default=4, metavar="N",
                       help="training seed pool size: homes sharing a "
                       "routine and seed class share one trained policy")
    fleet.add_argument("--shard-size", type=int, default=25, metavar="N",
                       help="homes per worker shard (default 25; never "
                       "affects the output bytes)")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (output is byte-identical "
                       "for every N)")
    fleet.add_argument("--shard-mode", choices=("batched", "per-home"),
                       default="batched",
                       help="run each shard's homes on one shared event "
                       "kernel (batched, default) or one kernel per home; "
                       "never affects the output bytes")
    fleet.add_argument("--policy-plane", choices=("shm", "json"),
                       default="shm",
                       help="how workers restore trained policies: a "
                       "zero-copy shared-memory arena (shm, default) or "
                       "the per-worker JSON reference path; never affects "
                       "the output bytes")
    fleet.add_argument("--cache", metavar="DIR",
                       help="trained-policy cache directory (default: a "
                       "private per-run directory)")
    fleet.add_argument("--json", action="store_true",
                       help="emit the aggregate metrics as JSON")
    fleet.add_argument("--timing", action="store_true",
                       help="print wall-clock and homes/sec to stderr")

    lint = commands.add_parser(
        "lint",
        help="statically check sources against the determinism rules",
        description="Run the repro.analysis rule pack (DET*/SIM*/PERF*) "
        "over python sources.  Exit codes: 0 clean, 1 findings, 2 usage "
        "error.",
    )
    lint.add_argument("paths", nargs="+", metavar="PATH",
                      help="files or directories to analyze")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="output format (default: text)")
    lint.add_argument("--rules", metavar="IDS",
                      help="comma-separated rule IDs or family prefixes "
                      "to run, e.g. DET001,PAR (default: all)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="committed baseline of known findings; only "
                      "findings absent from it fail the gate")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record the current unsuppressed findings "
                      "into FILE and exit 0")
    return parser


def _cmd_list_adls() -> int:
    registry = default_registry()
    rows = []
    for name in registry.names():
        definition = registry.get(name)
        for index, step in enumerate(definition.adl.steps):
            rows.append(
                (
                    name if index == 0 else "",
                    step.step_id,
                    step.name,
                    f"{step.tool.sensor.value} on {step.tool.name}",
                )
            )
    print(format_table(["ADL", "StepID", "Step", "Sensor & tool"], rows))
    return 0


def _resolve_config(args: argparse.Namespace) -> CoReDAConfig:
    if getattr(args, "config", None):
        return load_config(args.config).with_seed(args.seed)
    return CoReDAConfig(seed=args.seed)


def _parse_routine(
    parser: argparse.ArgumentParser, definition, spec: str
) -> Routine:
    """Parse ``--routine 1,3,2,4`` or exit with a readable error."""
    step_ids = []
    for part in spec.split(","):
        part = part.strip()
        try:
            step_ids.append(int(part))
        except ValueError:
            parser.error(
                f"--routine: {part!r} is not a StepID; expected "
                f"comma-separated integers, e.g. 1,3,2,4"
            )
    known = {step.step_id for step in definition.adl.steps}
    unknown = [step_id for step_id in step_ids if step_id not in known]
    if unknown:
        parser.error(
            f"--routine: no step {unknown[0]} in "
            f"{definition.adl.name} (StepIDs: "
            f"{', '.join(str(s) for s in sorted(known))})"
        )
    try:
        return Routine(definition.adl, step_ids)
    except ValueError as exc:
        parser.error(f"--routine: {exc}")


def _cmd_train(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    registry = default_registry()
    definition = registry.get(args.adl)
    system = CoReDA.build(definition, _resolve_config(args))
    routine = None
    if args.routine:
        routine = _parse_routine(parser, definition, args.routine)
    result = system.train_offline(routine=routine, episodes=args.episodes)
    print(f"trained {args.adl} on {args.episodes} episodes "
          f"(routine {list(result.routine.step_ids)})")
    for criterion, iteration in sorted(result.convergence.items()):
        status = iteration if iteration is not None else "not reached"
        print(f"  {criterion:.0%} criterion: iteration {status}")
    print(f"  final greedy accuracy: {result.curve.greedy_accuracy[-1]:.0%}")
    if args.plot:
        print(ascii_curve(result.curve.smoothed_accuracy,
                          title="smoothed behaviour accuracy"))
    if args.save:
        save_predictor(system.predictor, args.save, definition.adl.name)
        print(f"policy saved to {args.save}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    registry = default_registry()
    definition = registry.get(args.adl)
    system = CoReDA.build(definition, _resolve_config(args))
    system.train_offline()
    if args.adapt:
        system.enable_online_adaptation()
    reliable = {
        step.step_id: max(step.handling_duration, 5.0)
        for step in definition.adl.steps
    }
    completed = 0
    for index in range(args.episodes):
        resident = system.create_resident(
            dementia=DementiaProfile.from_severity(args.severity),
            handling_overrides=reliable,
            name=f"cli-{index}",
        )
        outcome = system.run_episode(resident, horizon=3600.0)
        completed += int(outcome.completed)
    print(f"ran {args.episodes} episodes, {completed} completed\n")
    if args.timeline:
        from repro.evalx.timeline import render_timeline

        print(render_timeline(system.trace, definition.adl,
                              title="Event timeline"))
        print()
    report = CaregiverReport.from_session(
        system.session,
        definition.adl,
        caregiver_alerts=system.reminding.caregiver_alerts,
    )
    print(report.to_text())
    return 0


def _cmd_scenario() -> int:
    from repro.evalx.scenario import run_tea_scenario

    result = run_tea_scenario()
    print(result.to_table())
    print()
    print(f"structure check: {'PASS' if result.structure_ok() else 'FAIL'}")
    return 0 if result.structure_ok() else 1


def _cmd_report(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.evalx.runner import (
        check_cache_dir,
        print_timings,
        run_all,
        write_report,
    )

    if args.cache:
        check_cache_dir(parser, args.cache)
    timings = {}
    start = time.perf_counter()  # repro: allow[DET002] timing display only
    text = run_all(
        fast=args.fast,
        include_ablations=not args.no_ablations,
        jobs=args.jobs,
        cache_dir=args.cache,
        timings=timings,
    )
    elapsed = time.perf_counter() - start  # repro: allow[DET002] timing display only
    write_report(text, output=args.output)
    if args.timing:
        print_timings(timings, elapsed, sys.stderr)
    return 0


def _cmd_fleet(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.evalx.runner import check_cache_dir
    from repro.fleet import FleetSpec, run_fleet

    if args.cache:
        check_cache_dir(parser, args.cache)
    try:
        spec = FleetSpec(
            adl_name=args.adl,
            homes=args.homes,
            seed=args.seed,
            episodes_per_home=args.episodes,
            training_episodes=args.train_episodes,
            seed_classes=args.seed_classes,
            shard_size=args.shard_size,
        )
    except ValueError as exc:
        parser.error(str(exc))
    start = time.perf_counter()  # repro: allow[DET002] timing display only
    result = run_fleet(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache,
        batch_homes=args.shard_mode == "batched",
        policy_plane=args.policy_plane,
    )
    elapsed = time.perf_counter() - start  # repro: allow[DET002] timing display only
    print(result.to_json() if args.json else result.to_text())
    if args.timing:
        rate = args.homes / elapsed if elapsed > 0 else float("inf")
        sys.stderr.write(
            f"fleet wall-clock: {elapsed:.2f}s ({rate:.1f} homes/sec, "
            f"jobs={args.jobs})\n"
        )
    return 0


def _cmd_lint(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.analysis import (
        Baseline,
        LintUsageError,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
    )

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",")
                    if part.strip()]
        if not rule_ids:
            parser.error("--rules: expected comma-separated rule IDs")
    try:
        report = lint_paths(args.paths, rule_ids)
        if args.write_baseline:
            Baseline.from_findings(report.findings).save(args.write_baseline)
            print(f"baseline written: {args.write_baseline} "
                  f"({len(report.active)} finding(s) recorded)")
            return 0
        if args.baseline:
            report = Baseline.load(args.baseline).apply(report)
    except LintUsageError as exc:
        parser.error(str(exc))
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report)
    print(rendered)
    return 1 if report.active else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-adls":
        return _cmd_list_adls()
    if args.command == "train":
        return _cmd_train(args, parser)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "scenario":
        return _cmd_scenario()
    if args.command == "report":
        return _cmd_report(args, parser)
    if args.command == "fleet":
        return _cmd_fleet(args, parser)
    if args.command == "lint":
        return _cmd_lint(args, parser)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
