"""The CoReDA reward function (paper section 2.2).

    "For terminal step of an ADL, a large reward 1000 is given to
    encourage the completion of ADL.  For intermediate steps, a bigger
    reward 100 is given when a minimal reminding is provided, and a
    smaller reward 50 is given when a specific reminding is provided.
    This promotes the user to exercise his/her brain instead of
    depending on the system."

One interpretation detail the paper leaves implicit: the reward must
be contingent on the prompt actually *guiding the user into the
observed next step*.  A prompt for the wrong tool that the user
ignores cannot earn 100 points, or the policy would never learn which
tool to prompt.  We therefore pay the stated rewards only when
``action.tool_id`` equals the next state's current StepID, and
``wrong_prompt_reward`` (default 0) otherwise.  This is the unique
reading under which the stated reward scheme produces the paper's
Table 4 behaviour (100% correct next-step prediction), and it is
configurable for the reward-shape ablation.
"""

from __future__ import annotations

from repro.core.adl import ReminderLevel
from repro.core.config import PlanningConfig
from repro.planning.action import PromptAction
from repro.planning.state import PlanningState
from repro.rl.rewards import RewardFunction

__all__ = ["CoReDAReward"]


class CoReDAReward(RewardFunction):
    """R(⟨·,·⟩, ⟨tool, level⟩, ⟨·, next⟩) per the paper's scheme."""

    def __init__(self, config: PlanningConfig, terminal_step_id: int) -> None:
        self.config = config
        self.terminal_step_id = terminal_step_id

    def reward(
        self,
        state: PlanningState,
        action: PromptAction,
        next_state: PlanningState,
    ) -> float:
        if action.tool_id != next_state.current:
            return self.config.wrong_prompt_reward
        if next_state.current == self.terminal_step_id:
            return self.config.terminal_reward
        if action.level is ReminderLevel.MINIMAL:
            return self.config.minimal_reward
        return self.config.specific_reward

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoReDAReward(terminal={self.terminal_step_id}, "
            f"{self.config.terminal_reward}/{self.config.minimal_reward}/"
            f"{self.config.specific_reward}/{self.config.wrong_prompt_reward})"
        )
