"""The planning state space (paper section 2.2).

    "a state s_i = <StepID_{i-1}, StepID_i> is the pair of the current
    and previous StepID"

StepID 0 (idle) appears as the *previous* component at the start of an
episode -- before the first tool is touched the user was doing nothing
-- and as the *current* component while stalled.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence

from repro.core.adl import ADL, IDLE_STEP_ID

__all__ = ["PlanningState", "state_space", "episode_states"]


class PlanningState(NamedTuple):
    """⟨previous StepID, current StepID⟩."""

    previous: int
    current: int

    def __repr__(self) -> str:
        return f"<{self.previous},{self.current}>"


def state_space(adl: ADL, include_idle: bool = True) -> List[PlanningState]:
    """Every syntactically possible state of an ADL.

    The full product space: previous ∈ steps ∪ {idle}, current ∈
    steps ∪ {idle}, excluding self-loops of real steps (the extractor
    never emits the same StepID twice in a row) and the idle-idle
    state.  Deterministic ordering for reproducible iteration.
    """
    ids = list(adl.step_ids)
    if include_idle:
        ids = [IDLE_STEP_ID] + ids
    states = []
    for previous in ids:
        for current in ids:
            if previous == current:
                continue
            states.append(PlanningState(previous, current))
    return states


def episode_states(step_ids: Sequence[int]) -> List[PlanningState]:
    """The state trajectory of one episode.

    For an episode ``[a, b, c]`` the states are ``<0,a>, <a,b>,
    <b,c>`` -- the initial previous-StepID is idle.
    """
    states = []
    previous = IDLE_STEP_ID
    for current in step_ids:
        states.append(PlanningState(previous, current))
        previous = current
    return states


def routine_states(step_ids: Iterable[int]) -> List[PlanningState]:
    """Alias of :func:`episode_states` for readability at call sites."""
    return episode_states(list(step_ids))
