"""Multi-routine planning (paper future-work item 1).

    "for some ADLs, such as dressing, one user may have multiple
    routines to complete it.  Therefore, the multi-routine are
    necessary for even only one user."

Approach: cluster the user's logged episodes by their exact step
sequence (dementia-care routines are short and highly stereotyped, so
exact clustering with a support threshold is both simple and robust),
train one Q-table per routine cluster, and at guidance time maintain a
posterior over routines given the observed prefix -- predictions come
from the maximum-a-posteriori routine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adl import ADL, Routine
from repro.core.config import PlanningConfig
from repro.core.errors import RoutineError
from repro.planning.action import PromptAction
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import PlanningState
from repro.planning.trainer import RoutineTrainer, TrainingResult
from repro.sim.random import seeded_generator

__all__ = ["RoutineCluster", "MultiRoutinePlanner"]

#: Likelihood assigned to a prefix that contradicts a routine: small
#: but non-zero so the posterior never degenerates on sensing noise.
_CONTRADICTION_LIKELIHOOD = 1e-6


@dataclass
class RoutineCluster:
    """One discovered routine with its episode support."""

    routine: Routine
    support: int
    training: Optional[TrainingResult] = None
    predictor: Optional[NextStepPredictor] = None


class MultiRoutinePlanner:
    """Per-routine Q-learning with Bayesian routine identification."""

    def __init__(
        self,
        adl: ADL,
        config: Optional[PlanningConfig] = None,
        rng: Optional[np.random.Generator] = None,
        min_support_fraction: float = 0.1,
    ) -> None:
        if not 0.0 <= min_support_fraction < 1.0:
            raise ValueError("min_support_fraction must be in [0, 1)")
        self.adl = adl
        self.config = config if config is not None else PlanningConfig()
        self._rng = rng if rng is not None else seeded_generator(0)
        self.min_support_fraction = min_support_fraction
        self.clusters: List[RoutineCluster] = []

    # ------------------------------------------------------------------
    # training

    def train(
        self,
        episodes: Sequence[Sequence[int]],
        criteria: Sequence[float] = (0.95,),
    ) -> List[RoutineCluster]:
        """Cluster ``episodes`` and train one policy per routine.

        Clusters supported by fewer than ``min_support_fraction`` of
        the episodes are treated as noise and dropped.  Raises
        :class:`RoutineError` if nothing survives.
        """
        if not episodes:
            raise ValueError("need at least one training episode")
        counts: Dict[Tuple[int, ...], int] = {}
        for episode in episodes:
            key = tuple(episode)
            counts[key] = counts.get(key, 0) + 1
        cutoff = self.min_support_fraction * len(episodes)
        surviving = {k: c for k, c in counts.items() if c >= cutoff}
        if not surviving:
            raise RoutineError(
                "no routine cluster met the support threshold "
                f"({self.min_support_fraction:.0%} of {len(episodes)} episodes)"
            )
        self.clusters = []
        for sequence, support in sorted(
            surviving.items(), key=lambda item: (-item[1], item[0])
        ):
            routine = Routine(self.adl, sequence)
            # Each cluster's trainer inherits config.q_backend, so the
            # per-routine Q-tables all use the selected storage.
            trainer = RoutineTrainer(self.adl, self.config, rng=self._rng)
            training = trainer.train(
                [list(sequence)] * support, routine=routine, criteria=criteria
            )
            predictor = NextStepPredictor.from_training(
                training, criterion=criteria[0], require_converged=False
            )
            self.clusters.append(
                RoutineCluster(
                    routine=routine,
                    support=support,
                    training=training,
                    predictor=predictor,
                )
            )
        return self.clusters

    # ------------------------------------------------------------------
    # identification and prediction

    def posterior(self, observed_prefix: Sequence[int]) -> Dict[Routine, float]:
        """P(routine | observed step prefix).

        Prior ∝ episode support; likelihood 1 for a consistent prefix
        and a vanishing constant for a contradicting one.
        """
        if not self.clusters:
            raise RoutineError("planner has not been trained")
        prefix = tuple(observed_prefix)
        weights: Dict[Routine, float] = {}
        for cluster in self.clusters:
            prior = cluster.support
            consistent = cluster.routine.step_ids[: len(prefix)] == prefix
            likelihood = 1.0 if consistent else _CONTRADICTION_LIKELIHOOD
            weights[cluster.routine] = prior * likelihood
        total = sum(weights.values())
        return {routine: weight / total for routine, weight in weights.items()}

    def identify(self, observed_prefix: Sequence[int]) -> Routine:
        """The maximum-a-posteriori routine for ``observed_prefix``."""
        posterior = self.posterior(observed_prefix)
        return max(
            sorted(posterior, key=lambda r: r.step_ids),
            key=lambda r: posterior[r],
        )

    def predict(self, observed_prefix: Sequence[int]) -> PromptAction:
        """The prompt after ``observed_prefix`` under the MAP routine.

        The state is ⟨previous, current⟩ taken from the prefix tail
        (idle-previous for a single-step prefix).
        """
        prefix = list(observed_prefix)
        if not prefix:
            raise RoutineError("cannot predict from an empty prefix")
        routine = self.identify(prefix)
        cluster = next(c for c in self.clusters if c.routine == routine)
        previous = prefix[-2] if len(prefix) >= 2 else 0
        state = PlanningState(previous, prefix[-1])
        assert cluster.predictor is not None
        return cluster.predictor.predict(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiRoutinePlanner({self.adl.name!r}, "
            f"clusters={len(self.clusters)})"
        )
