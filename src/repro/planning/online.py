"""Online adaptation: "learning update all the while" (paper §3.2).

    "Actually, we can set the parameters (converging condition,
    learning rate, etc.) to make the learning update all the while
    instead of converging.  By doing this, CoReDA can always learn
    the newest routines of a user."

:class:`OnlineAdaptation` implements that always-adapting mode: it
watches the live step stream on the event bus, and every time the
terminal step of the ADL is reached it replays the just-observed
episode through the *same* learner whose Q-table the deployed
predictor reads -- so a user who changes their routine re-trains the
system simply by living their new routine for a handful of episodes.

It also keeps a drift signal: the fraction of recent transitions the
greedy policy predicted correctly *before* learning from them.  A
sustained drop means the user's behaviour has moved away from the
learned routine (the paper's motivation for this mode: dementia
routines deteriorate).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.adl import ADL, IDLE_STEP_ID
from repro.core.bus import EventBus
from repro.core.config import PlanningConfig
from repro.core.events import StepEvent
from repro.planning.action import PromptAction, action_space
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import episode_states
from repro.planning.trainer import replay_episode
from repro.rl.policies import EpsilonGreedyPolicy
from repro.sim.random import seeded_generator

__all__ = ["OnlineAdaptation"]


class OnlineAdaptation:
    """Continual learning from live episodes.

    ``learner`` must be the learner behind the deployed predictor
    (after ``CoReDA.train_offline`` that is ``system.training.learner``)
    so that adaptation is visible to guidance immediately.  The
    learner's behaviour policy is replaced with a constant-ε policy:
    a decayed-to-zero schedule would freeze the rule-out dynamics the
    adaptation relies on.
    """

    def __init__(
        self,
        adl: ADL,
        learner,
        config: Optional[PlanningConfig] = None,
        rng: Optional[np.random.Generator] = None,
        epsilon: float = 0.1,
        drift_window: int = 12,
    ) -> None:
        if drift_window < 1:
            raise ValueError("drift_window must be >= 1")
        self.adl = adl
        self.learner = learner
        self.config = config if config is not None else PlanningConfig()
        self._rng = rng if rng is not None else seeded_generator(0)
        # A tuple: the dense backend caches the repr-sort order of an
        # action set by tuple identity, so replaying every episode
        # with the same tuple keeps the argmax path allocation-free.
        self.actions: Tuple[PromptAction, ...] = tuple(action_space(adl))
        learner.policy = EpsilonGreedyPolicy(epsilon)
        self._current_episode: List[int] = []
        self._recent_hits: Deque[bool] = deque(maxlen=drift_window)
        self.episodes_learned = 0
        self.transitions_seen = 0

    def attach(self, bus: EventBus) -> "OnlineAdaptation":
        """Subscribe to the live step stream; returns self."""
        bus.subscribe(StepEvent, self.on_step)
        return self

    def on_step(self, event: StepEvent) -> None:
        """Collect live steps; learn whenever the ADL completes."""
        if event.step_id == IDLE_STEP_ID:
            return
        self._current_episode.append(event.step_id)
        if event.step_id == self.adl.terminal_step_id:
            self._finish_episode()

    def _finish_episode(self) -> None:
        episode = self._current_episode
        self._current_episode = []
        if len(episode) < 2:
            return
        self._score_drift(episode)
        reward_fn = CoReDAReward(self.config, episode[-1])
        replay_episode(
            self.learner,
            self.actions,
            episode,
            reward_fn,
            self._rng,
            iteration=self.episodes_learned,
        )
        self.episodes_learned += 1

    def _score_drift(self, episode: List[int]) -> None:
        """Record greedy-prediction hits *before* learning from them."""
        states = episode_states(episode)
        for index in range(len(states) - 1):
            greedy = self.learner.greedy_action(states[index], self.actions)
            self._recent_hits.append(greedy.tool_id == states[index + 1].current)
            self.transitions_seen += 1

    @property
    def recent_accuracy(self) -> Optional[float]:
        """Greedy accuracy over the recent drift window (None = no data).

        A sustained value well below 1.0 signals the user's routine
        has drifted from the learned one and adaptation is underway.
        """
        if not self._recent_hits:
            return None
        return sum(self._recent_hits) / len(self._recent_hits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineAdaptation({self.adl.name!r}, "
            f"episodes_learned={self.episodes_learned})"
        )
