"""Policy persistence: save, restore and cache trained policies.

A deployed reminder system restarts (power cuts, maintenance) without
re-collecting 120 training episodes.  The store serializes a trained
Q-table -- states are ⟨previous, current⟩ StepID pairs, actions are
⟨ToolID, level⟩ prompts -- as a small JSON document, versioned and
validated against the target ADL on load.

The same document format backs :class:`PolicyCache`, a
content-addressed on-disk cache used by the experiment harness: the
key is a SHA-256 over the ADL name, the routine, the learner and its
hyper-parameters, the training-set size and the RNG seed, so two
sweeps that would train byte-identical Q-tables share one cache
entry and the second one skips retraining entirely
(:func:`train_routine_cached`).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.adl import ADL, ReminderLevel, Routine
from repro.core.config import PlanningConfig, default_q_backend
from repro.core.errors import CoReDAError
from repro.planning.action import PromptAction, action_space
from repro.planning.binary import (
    PolicyArtifact,
    pack_policy_artifact,
    read_policy_artifact,
)
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import PlanningState
from repro.planning.trainer import LearningCurve, RoutineTrainer, TrainingResult
from repro.rl.convergence import convergence_iteration
from repro.rl.dense import DenseQTable, make_qtable
from repro.rl.qtable import QTable
from repro.sim.random import seeded_generator

__all__ = [
    "save_predictor",
    "load_predictor",
    "FORMAT_VERSION",
    "ARTIFACT_SUFFIX",
    "PolicyCache",
    "CachedTraining",
    "training_cache_key",
    "training_document",
    "curve_from_document",
    "predictor_from_document",
    "training_from_artifact",
    "train_routine_cached",
]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

#: Extension of the packed binary sidecar written next to each JSON
#: document (see :mod:`repro.planning.binary`).  The JSON document
#: stays canonical; the sidecar is a pure serving optimization and
#: every reader falls back to JSON when it is missing or undecodable.
ARTIFACT_SUFFIX = ".qbin"


def _entries_from_qtable(q: QTable) -> List[dict]:
    """The Q-table's known pairs as sorted, JSON-ready entries."""
    entries = []
    for (state, action), value in sorted(
        ((key, q.value(*key)) for key in q.known_pairs()),
        key=lambda item: repr(item[0]),
    ):
        entries.append(
            {
                "previous": int(state.previous),
                "current": int(state.current),
                "tool_id": int(action.tool_id),
                "level": action.level.value,
                "q": float(value),
            }
        )
    return entries


def _qtable_from_document(
    document: dict, adl: ADL, source: str, q_backend: Optional[str] = None
) -> Union[QTable, DenseQTable]:
    """Rebuild the Q-table of ``document``, validated against ``adl``.

    ``q_backend`` selects the restored table's backend (default: the
    process-wide ``default_q_backend``).  The entries are written in
    repr order regardless of how the source table interned its
    states, so a document restores to the same values either way --
    and restoring dense gives deployed predictors the array-indexed
    greedy-policy path of :mod:`repro.rl.batch`.
    """
    if q_backend is None:
        q_backend = default_q_backend()
    q = make_qtable(q_backend, float(document.get("initial_q", 0.0)))
    for entry in document["entries"]:
        tool_id = int(entry["tool_id"])
        if not adl.has_step(tool_id):
            raise CoReDAError(
                f"policy {source} prompts unknown tool {tool_id} "
                f"for ADL {adl.name!r}"
            )
        state = PlanningState(int(entry["previous"]), int(entry["current"]))
        action = PromptAction(tool_id, ReminderLevel(entry["level"]))
        q.set(state, action, float(entry["q"]))
    return q


def save_predictor(
    predictor: NextStepPredictor,
    path: Union[str, Path],
    adl_name: str,
) -> None:
    """Write ``predictor``'s Q-table to ``path`` as JSON."""
    document = {
        "format": FORMAT_VERSION,
        "adl": adl_name,
        "initial_q": predictor.q.initial_value,
        "converged": predictor.converged,
        "entries": _entries_from_qtable(predictor.q),
    }
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_predictor(
    path: Union[str, Path], adl: ADL, q_backend: Optional[str] = None
) -> NextStepPredictor:
    """Restore a predictor previously written by :func:`save_predictor`.

    Raises :class:`CoReDAError` on version mismatch, on an ADL-name
    mismatch, or when an entry references a tool the ADL does not
    have -- a stale policy file must never silently drive prompts for
    the wrong deployment.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("format") != FORMAT_VERSION:
        raise CoReDAError(
            f"policy file {path} has format {document.get('format')}, "
            f"expected {FORMAT_VERSION}"
        )
    if document.get("adl") != adl.name:
        raise CoReDAError(
            f"policy file {path} was trained for ADL {document.get('adl')!r}, "
            f"not {adl.name!r}"
        )
    q = _qtable_from_document(document, adl, f"file {path}", q_backend=q_backend)
    return NextStepPredictor(
        q, action_space(adl), converged=bool(document.get("converged", False))
    )


# ---------------------------------------------------------------------------
# Content-addressed training cache
# ---------------------------------------------------------------------------


def training_cache_key(
    adl_name: str,
    routine_ids: Sequence[int],
    config: PlanningConfig,
    rng_seed: int,
    episodes: int,
    learner: Sequence[object] = ("tdlambda-q",),
) -> str:
    """Content address for one training run.

    Everything a :class:`~repro.planning.trainer.RoutineTrainer` run
    depends on goes into the hash: the ADL, the routine, every
    planning hyper-parameter, the learner kind (and its extra knobs),
    the number of replayed episodes and the RNG seed.  Convergence
    *criteria* are deliberately excluded -- they are recomputed from
    the cached curve, so sweeps asking different criteria of the same
    training still share an entry.  The ``q_backend`` knob is also
    excluded: the backends train byte-identically, so a cache entry
    written sparse must be hit dense (and vice versa).
    """
    config_payload = asdict(config)
    config_payload.pop("q_backend", None)
    # Inference backends are byte-identical too -- a predictor served
    # from a policy table answers exactly what best_action would -- so
    # the knob must not split the cache either.
    config_payload.pop("infer_backend", None)
    payload = {
        "format": FORMAT_VERSION,
        "adl": adl_name,
        "routine": [int(step) for step in routine_ids],
        "config": config_payload,
        "learner": list(learner),
        "episodes": int(episodes),
        "seed": int(rng_seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def training_document(result: TrainingResult, adl_name: str) -> dict:
    """Serialize a full training run (policy + learning curve)."""
    return {
        "format": FORMAT_VERSION,
        "adl": adl_name,
        "routine": [int(step) for step in result.routine.step_ids],
        "initial_q": result.learner.q.initial_value,
        "entries": _entries_from_qtable(result.learner.q),
        "curve": {
            "behaviour": [float(v) for v in result.curve.behaviour_accuracy],
            "smoothed": [float(v) for v in result.curve.smoothed_accuracy],
            "greedy": [float(v) for v in result.curve.greedy_accuracy],
            "minimal": [float(v) for v in result.curve.minimal_fraction],
        },
    }


def curve_from_document(document: dict) -> LearningCurve:
    """Rebuild the learning curve stored by :func:`training_document`."""
    curve = document["curve"]
    return LearningCurve(
        behaviour_accuracy=list(curve["behaviour"]),
        smoothed_accuracy=list(curve["smoothed"]),
        greedy_accuracy=list(curve["greedy"]),
        minimal_fraction=list(curve["minimal"]),
    )


def predictor_from_document(
    document: dict,
    adl: ADL,
    converged: bool = True,
    q_backend: Optional[str] = None,
) -> NextStepPredictor:
    """Rebuild a predictor from a cached training document."""
    q = _qtable_from_document(
        document, adl, f"document for {adl.name!r}", q_backend=q_backend
    )
    return NextStepPredictor(q, action_space(adl), converged=converged)


class PolicyCache:
    """A directory of training documents addressed by content key.

    Safe under concurrent writers (the parallel runner's worker
    processes): documents are written to a temporary file and moved
    into place atomically, and two workers racing on the same key
    write identical bytes anyway.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Documents actually parsed from JSON by this process --
        #: ``hits - memo-served`` lookups.  Purely observational (the
        #: memoization satellite's test hook); never part of
        #: :meth:`stats`, which must stay shard-layout-independent.
        self.json_decodes = 0
        # key -> ((st_mtime_ns, st_size, st_ino), document): a worker
        # restoring the same training twice decodes once.  The stat
        # signature invalidates the memo when the entry is replaced
        # (same-content rewrites are the norm, but correctness must
        # not rely on that).
        self._memo: Dict[str, Tuple[Tuple[int, int, int], dict]] = {}
        self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> None:
        """Remove temp files left behind by a writer that crashed mid-put.

        A temp is only visible here if ``put`` died between ``mkstemp``
        and ``os.replace``; a racing live writer loses its temp at
        worst, and ``put`` recovers by retrying with a fresh one.
        """
        for stale in sorted(self.root.glob(".tmp-*")):
            try:
                stale.unlink()
            except OSError:
                pass

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def artifact_path_for(self, key: str) -> Path:
        """Where ``key``'s binary sidecar lives (if it exists)."""
        return self.root / f"{key}{ARTIFACT_SUFFIX}"

    def get(self, key: str) -> Optional[dict]:
        """The cached document for ``key``, or ``None``.

        Decoded documents are memoized per key: restoring the same
        training twice in one process parses the JSON once.  The
        hit/miss counters are unaffected by the memo -- a memo-served
        lookup *is* a cache hit, so :meth:`stats` cannot depend on
        how homes were grouped into shards or workers.
        """
        path = self.path_for(key)
        try:
            stat = path.stat()
        except OSError:
            self._memo.pop(key, None)
            self.misses += 1
            return None
        signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
        memo = self._memo.get(key)
        if memo is not None and memo[0] == signature:
            self.hits += 1
            return memo[1]
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._memo.pop(key, None)
            self.misses += 1
            return None
        self.json_decodes += 1
        self._memo[key] = (signature, document)
        self.hits += 1
        return document

    def get_artifact(
        self, key: str, adl: Optional[ADL] = None
    ) -> Optional[PolicyArtifact]:
        """The ``mmap``-backed binary artifact for ``key``, or ``None``.

        Success counts as a cache hit (the training *was* served from
        this cache); every failure -- missing sidecar, truncation,
        corruption, ADL mismatch -- returns ``None`` **without**
        counting, so the caller's JSON fallback does the accounting
        exactly once per lookup.
        """
        path = self.artifact_path_for(key)
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError):
            return None
        try:
            artifact = read_policy_artifact(mapped)
        except CoReDAError:
            try:
                mapped.close()
            except BufferError:
                # The in-flight exception's traceback still references
                # a view of the map; the GC closes it once that frees.
                pass
            return None
        if adl is not None and not artifact.matches(adl):
            return None
        self.hits += 1
        return artifact

    def put(
        self,
        key: str,
        document: dict,
        actions: Optional[Sequence[PromptAction]] = None,
    ) -> None:
        """Store ``document`` under ``key`` (atomic, last write wins).

        With ``actions`` (the deployment's action space), a packed
        binary sidecar is written next to the document so later
        readers can serve the policy without parsing; the sidecar
        uses the same atomic temp-and-rename protocol.
        """
        self._write_atomic(self.path_for(key), json.dumps(document).encode("utf-8"))
        self._memo.pop(key, None)
        if actions is not None:
            blob = pack_policy_artifact(document, actions)
            self._write_atomic(self.artifact_path_for(key), blob)

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        # The ``.part`` suffix keeps in-flight temps out of ``*.json``
        # globs (pathlib's ``*`` matches a leading dot, so a crashed
        # writer's ``.tmp-*.json`` leftover used to inflate __len__).
        for attempt in range(2):
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=".tmp-", suffix=".part"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                # A concurrent __init__ swept our temp between write
                # and rename; one retry always wins (the sweeper only
                # runs once per cache construction).
                if attempt:
                    raise
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def stats(self) -> Tuple[int, int]:
        """This process's ``(hits, misses)`` counters.

        The counters are per-process by nature; parallel runners must
        ship them back from each worker alongside the cell results and
        sum them (see ``repro.fleet``) -- reading the parent's cache
        object after a parallel run reports only the parent's lookups.
        """
        return self.hits, self.misses

    def __len__(self) -> int:
        return sum(
            1
            for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        )


@dataclass
class CachedTraining:
    """What :func:`train_routine_cached` hands back.

    Both the fresh-training and cache-hit paths are served through
    the same JSON document, so a cached sweep is byte-identical to an
    uncached one by construction.
    """

    curve: LearningCurve
    convergence: Dict[float, Optional[int]]
    document: Optional[dict]
    cache_hit: bool
    #: Set when the training was served from a binary artifact (the
    #: zero-copy policy plane); ``document`` is ``None`` then.
    artifact: Optional[PolicyArtifact] = None

    def predictor(self, adl: ADL, criterion: float = 0.95) -> NextStepPredictor:
        """Greedy predictor over the (restored) Q-table."""
        converged = self.convergence.get(criterion) is not None
        if self.artifact is not None:
            return self.artifact.predictor(adl, converged=converged)
        return predictor_from_document(
            self.document,
            adl,
            converged=converged,
        )


def training_from_artifact(
    artifact: PolicyArtifact,
    config: PlanningConfig,
    criteria: Sequence[float] = (0.95, 0.98),
) -> CachedTraining:
    """A :class:`CachedTraining` served from a binary artifact.

    Value-equal to the JSON path of :func:`train_routine_cached` on
    the same training: the curve round-trips as exact float64, so the
    convergence map recomputed here lands on the same iterations, and
    the predictor answers byte-identically (same Q values at the same
    ⟨state, action⟩ pairs, same repr-order tie-breaking).
    """
    curve = artifact.curve()
    convergence = {
        criterion: convergence_iteration(
            curve.smoothed_accuracy,
            criterion,
            patience=config.convergence_patience,
        )
        for criterion in criteria
    }
    return CachedTraining(
        curve=curve,
        convergence=convergence,
        document=None,
        cache_hit=True,
        artifact=artifact,
    )


def _build_learner(config: PlanningConfig, learner_spec):
    """Instantiate the learner named by ``learner_spec``.

    ``None`` selects the trainer's default TD(λ) Q-learner;
    ``("dyna", steps)`` the Dyna-Q fast-learning ablation learner.
    """
    if learner_spec is None:
        return None, ("tdlambda-q",)
    kind = learner_spec[0]
    if kind == "dyna":
        from repro.rl.dyna import DynaQLearner
        from repro.rl.policies import EpsilonGreedyPolicy
        from repro.rl.schedules import ExponentialDecay

        steps = int(learner_spec[1])
        learner = DynaQLearner(
            learning_rate=config.learning_rate,
            discount=config.discount,
            planning_steps=steps,
            policy=EpsilonGreedyPolicy(
                ExponentialDecay(config.epsilon, config.epsilon_decay)
            ),
            initial_q=config.initial_q,
            q_backend=config.q_backend,
        )
        return learner, ("dyna-q", steps)
    raise ValueError(f"unknown learner spec {learner_spec!r}")


def train_routine_cached(
    adl: ADL,
    routine_ids: Sequence[int],
    config: PlanningConfig,
    rng_seed: int,
    episodes: int,
    criteria: Sequence[float] = (0.95, 0.98),
    cache: Optional[PolicyCache] = None,
    learner_spec: Optional[Tuple] = None,
) -> CachedTraining:
    """Train a routine -- or reuse the cached, identical training.

    The cache key covers every input the training depends on; on a
    hit the convergence map is recomputed from the cached smoothed
    curve with the same detector the trainer uses, so any criteria
    can be asked of a shared entry.
    """
    routine_ids = [int(step) for step in routine_ids]
    learner, learner_key = _build_learner(config, learner_spec)
    key = training_cache_key(
        adl.name, routine_ids, config, rng_seed, episodes, learner=learner_key
    )
    document = cache.get(key) if cache is not None else None
    if document is None:
        trainer = RoutineTrainer(
            adl, config, learner=learner, rng=seeded_generator(rng_seed)
        )
        routine = Routine(adl, routine_ids)
        result = trainer.train(
            [list(routine_ids)] * episodes, routine=routine, criteria=criteria
        )
        document = training_document(result, adl.name)
        if cache is not None:
            cache.put(key, document, actions=action_space(adl))
        cache_hit = False
    else:
        cache_hit = True
    curve = curve_from_document(document)
    convergence = {
        criterion: convergence_iteration(
            curve.smoothed_accuracy,
            criterion,
            patience=config.convergence_patience,
        )
        for criterion in criteria
    }
    return CachedTraining(
        curve=curve,
        convergence=convergence,
        document=document,
        cache_hit=cache_hit,
    )
