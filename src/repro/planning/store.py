"""Policy persistence: save and restore trained guidance policies.

A deployed reminder system restarts (power cuts, maintenance) without
re-collecting 120 training episodes.  The store serializes a trained
Q-table -- states are ⟨previous, current⟩ StepID pairs, actions are
⟨ToolID, level⟩ prompts -- as a small JSON document, versioned and
validated against the target ADL on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.adl import ADL, ReminderLevel
from repro.core.errors import CoReDAError
from repro.planning.action import PromptAction, action_space
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import PlanningState
from repro.rl.qtable import QTable

__all__ = ["save_predictor", "load_predictor", "FORMAT_VERSION"]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def save_predictor(
    predictor: NextStepPredictor,
    path: Union[str, Path],
    adl_name: str,
) -> None:
    """Write ``predictor``'s Q-table to ``path`` as JSON."""
    entries = []
    for (state, action), value in sorted(
        ((key, predictor.q.value(*key)) for key in predictor.q.known_pairs()),
        key=lambda item: repr(item[0]),
    ):
        entries.append(
            {
                "previous": int(state.previous),
                "current": int(state.current),
                "tool_id": int(action.tool_id),
                "level": action.level.value,
                "q": float(value),
            }
        )
    document = {
        "format": FORMAT_VERSION,
        "adl": adl_name,
        "initial_q": predictor.q.initial_value,
        "converged": predictor.converged,
        "entries": entries,
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_predictor(path: Union[str, Path], adl: ADL) -> NextStepPredictor:
    """Restore a predictor previously written by :func:`save_predictor`.

    Raises :class:`CoReDAError` on version mismatch, on an ADL-name
    mismatch, or when an entry references a tool the ADL does not
    have -- a stale policy file must never silently drive prompts for
    the wrong deployment.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_VERSION:
        raise CoReDAError(
            f"policy file {path} has format {document.get('format')}, "
            f"expected {FORMAT_VERSION}"
        )
    if document.get("adl") != adl.name:
        raise CoReDAError(
            f"policy file {path} was trained for ADL {document.get('adl')!r}, "
            f"not {adl.name!r}"
        )
    q = QTable(initial_value=float(document.get("initial_q", 0.0)))
    for entry in document["entries"]:
        tool_id = int(entry["tool_id"])
        if not adl.has_step(tool_id):
            raise CoReDAError(
                f"policy file {path} prompts unknown tool {tool_id} "
                f"for ADL {adl.name!r}"
            )
        state = PlanningState(int(entry["previous"]), int(entry["current"]))
        action = PromptAction(tool_id, ReminderLevel(entry["level"]))
        q.set(state, action, float(entry["q"]))
    return NextStepPredictor(
        q, action_space(adl), converged=bool(document.get("converged", False))
    )
