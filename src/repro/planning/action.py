"""The planning action space (paper section 2.2).

    "An action a_i = <ToolID_{i+1}, Level_{i+1}> is the prompt that
    will be sent to the reminding subsystem"

Every (tool of the ADL) × (minimal | specific) pair is an action.  For
a 4-step ADL that is 8 actions per state -- small enough for exact
tabular learning, exactly as in the paper.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.core.adl import ADL, ReminderLevel

__all__ = ["PromptAction", "action_space"]


class PromptAction(NamedTuple):
    """⟨ToolID to prompt next, reminding level⟩."""

    tool_id: int
    level: ReminderLevel

    def __repr__(self) -> str:
        return f"<{self.tool_id},{self.level.value}>"


def action_space(adl: ADL) -> List[PromptAction]:
    """All prompt actions of an ADL, in deterministic order."""
    actions = []
    for step in adl.steps:
        for level in (ReminderLevel.MINIMAL, ReminderLevel.SPECIFIC):
            actions.append(PromptAction(step.step_id, level))
    return actions
