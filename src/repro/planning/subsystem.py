"""The online planning subsystem (paper section 2.2, Figure 2 middle).

Consumes the StepID stream from the sensing subsystem, tracks the
user's progress through their learned routine, and raises prompt
requests for the two trigger situations of section 2.3:

1. **stall** -- the user does not use the tool they should use for a
   certain moment (per-step timeout, statistical when dwell data is
   available, per the paper's footnote 1);
2. **wrong tool** -- the user incorrectly uses another tool.

Correct steps after a prompt earn praise; reaching the routine's
terminal step completes the episode.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.adl import ADL, IDLE_STEP_ID
from repro.core.bus import EventBus
from repro.core.events import (
    EpisodeCompletedEvent,
    PraiseEvent,
    PromptRequestEvent,
    StepEvent,
    TriggerReason,
)
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import PlanningState
from repro.sim.kernel import Event, Simulator
from repro.sim.tracing import TraceRecorder

__all__ = ["PlanningSubsystem"]


class PlanningSubsystem:
    """Online guidance driven by a converged next-step predictor.

    ``stall_timeout_for`` maps a StepID to the seconds the user may
    dwell in it before a stall prompt; the CoReDA orchestrator wires
    it to the usage history's dwell statistics with the configured
    fallback.
    """

    def __init__(
        self,
        sim: Simulator,
        adl: ADL,
        bus: EventBus,
        predictor: NextStepPredictor,
        stall_timeout_for: Callable[[int], float],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.adl = adl
        self.bus = bus
        self.predictor = predictor
        self.stall_timeout_for = stall_timeout_for
        self._trace = trace
        self.terminal_step_id = adl.terminal_step_id
        self._state: Optional[PlanningState] = None
        self._expected_tool: Optional[int] = None
        self._outstanding_prompt = False
        self._stall_event: Optional[Event] = None
        self._episode_prompts = 0
        self._episode_steps = 0
        self.prompts_requested = 0
        self.praises_given = 0
        self.episodes_completed = 0
        bus.subscribe(StepEvent, self.on_step)

    # ------------------------------------------------------------------
    # event handling

    def on_step(self, event: StepEvent) -> None:
        """Process one step transition from the sensing subsystem."""
        if event.step_id == IDLE_STEP_ID:
            # The sensing-level idle transition is a coarse fallback
            # stall signal; the fine-grained statistical timer below
            # normally fires first.
            if self._state is not None:
                self._on_stall()
            return
        if self._state is None:
            self._begin_episode(event)
            return
        if event.step_id == self._expected_tool:
            self._on_correct_step(event)
        else:
            self._on_wrong_tool(event)

    # ------------------------------------------------------------------
    # internals

    def _begin_episode(self, event: StepEvent) -> None:
        """First tool of an episode triggers the start of prediction.

        The paper cannot predict the first step ("we need them to
        trigger the start of prediction"); neither can we.
        """
        self._state = PlanningState(IDLE_STEP_ID, event.step_id)
        self._outstanding_prompt = False
        self._episode_prompts = 0
        self._episode_steps = 1
        if event.step_id == self.terminal_step_id:
            self._complete_episode(event)
            return
        self._refresh_expectation(event)

    def _on_correct_step(self, event: StepEvent) -> None:
        assert self._state is not None
        if self._outstanding_prompt:
            self._praise(event)
        self._episode_steps += 1
        self._state = PlanningState(self._state.current, event.step_id)
        self._outstanding_prompt = False
        if event.step_id == self.terminal_step_id:
            self._complete_episode(event)
            return
        self._refresh_expectation(event)

    def _on_wrong_tool(self, event: StepEvent) -> None:
        assert self._state is not None
        prompt = self.predictor.predict(self._state)
        self._request_prompt(
            tool_id=prompt.tool_id,
            level=prompt.level,
            reason=TriggerReason.WRONG_TOOL,
            wrong_tool_id=event.step_id,
        )
        # State is *not* advanced: the user is off-routine and the
        # expectation (and its stall timer) stays anchored at the last
        # valid position.
        self._arm_stall_timer(self._state.current)

    def _on_stall(self) -> None:
        self._stall_event = None
        if self._state is None or self._expected_tool is None:
            return
        prompt = self.predictor.predict(self._state)
        self._request_prompt(
            tool_id=prompt.tool_id,
            level=prompt.level,
            reason=TriggerReason.STALL,
        )
        # Re-arm so an unanswered prompt repeats (the reminding
        # subsystem escalates and eventually gives up).
        self._arm_stall_timer(self._state.current)

    def _refresh_expectation(self, event: StepEvent) -> None:
        assert self._state is not None
        self._expected_tool = self.predictor.predict(self._state).tool_id
        self._arm_stall_timer(event.step_id)

    def _request_prompt(
        self,
        tool_id: int,
        level,
        reason: TriggerReason,
        wrong_tool_id: Optional[int] = None,
    ) -> None:
        self.prompts_requested += 1
        self._episode_prompts += 1
        self._outstanding_prompt = True
        request = PromptRequestEvent(
            time=self.sim.now,
            tool_id=tool_id,
            level=level,
            reason=reason,
            wrong_tool_id=wrong_tool_id,
        )
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "planning.prompt_request",
                tool_id=tool_id,
                level=level.value,
                reason=reason.name,
                wrong_tool_id=wrong_tool_id,
            )
        self.bus.publish(request)

    def _praise(self, event: StepEvent) -> None:
        self.praises_given += 1
        praise = PraiseEvent(
            time=self.sim.now, step_id=event.step_id, message="Excellent!"
        )
        if self._trace is not None:
            self._trace.emit(self.sim.now, "planning.praise", step_id=event.step_id)
        self.bus.publish(praise)

    def _complete_episode(self, event: StepEvent) -> None:
        self._disarm_stall_timer()
        self.episodes_completed += 1
        completed = EpisodeCompletedEvent(
            time=self.sim.now,
            adl_name=self.adl.name,
            steps_taken=self._episode_steps,
            reminders_issued=self._episode_prompts,
        )
        if self._trace is not None:
            self._trace.emit(self.sim.now, "planning.completed", adl=self.adl.name)
        self.bus.publish(completed)
        self._state = None
        self._expected_tool = None
        self._outstanding_prompt = False

    def _arm_stall_timer(self, dwelling_step_id: int) -> None:
        self._disarm_stall_timer()
        timeout = self.stall_timeout_for(dwelling_step_id)
        self._stall_event = self.sim.schedule(timeout, self._on_stall)

    def _disarm_stall_timer(self) -> None:
        if self._stall_event is not None:
            self._stall_event.cancel()
            self._stall_event = None

    def reset_episode(self) -> None:
        """Abort any in-progress episode tracking."""
        self._disarm_stall_timer()
        self._state = None
        self._expected_tool = None
        self._outstanding_prompt = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanningSubsystem({self.adl.name!r}, state={self._state}, "
            f"prompts={self.prompts_requested})"
        )
