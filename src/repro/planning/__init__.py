"""The planning subsystem: TD(λ) Q-learning over ⟨prev, cur⟩ states."""

from repro.planning.action import PromptAction, action_space
from repro.planning.multi_routine import MultiRoutinePlanner, RoutineCluster
from repro.planning.online import OnlineAdaptation
from repro.planning.predictor import NextStepPredictor
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import PlanningState, episode_states, state_space
from repro.planning.store import load_predictor, save_predictor
from repro.planning.subsystem import PlanningSubsystem
from repro.planning.trainer import (
    LearningCurve,
    RoutineTrainer,
    TrainingResult,
    replay_episode,
)

__all__ = [
    "CoReDAReward",
    "LearningCurve",
    "MultiRoutinePlanner",
    "NextStepPredictor",
    "OnlineAdaptation",
    "PlanningState",
    "PlanningSubsystem",
    "PromptAction",
    "RoutineCluster",
    "RoutineTrainer",
    "TrainingResult",
    "action_space",
    "episode_states",
    "load_predictor",
    "replay_episode",
    "save_predictor",
    "state_space",
]
