"""Packed binary policy artifacts: mmap-able, zero-copy, JSON-equal.

The JSON training document (:mod:`repro.planning.store`) stays the
canonical, versioned, human-inspectable format.  This module adds a
*sidecar* representation of the same training -- a single packed
buffer holding the interned state/action tables and the raw row-major
float64 ``DenseQTable`` matrix -- that a fleet worker can map into
its address space and serve **without parsing**: the Q matrix, the
written mask and the learning curves are NumPy views straight over
the mapped bytes (``np.frombuffer``), and the restored table is a
*frozen* :class:`~repro.rl.dense.DenseQTable` that only copies if a
learner ever mutates it (fleet inference never does).

Layout (all integers little-endian)::

    offset 0   4 bytes   magic  b"RPPB"
           4   u32       binary layout version (BINARY_VERSION)
           8   u32       header length H
          12   H bytes   JSON header: document format, ADL name,
                         initial_q, n_states, n_actions, curve_len,
                         crc32 of the payload
    align 16             payload start
          states   int64   (n_states, 2)    ⟨previous, current⟩
          actions  int64   (n_actions, 2)   ⟨tool_id, level index⟩
          q        float64 (n_states, n_actions)
          curves   float64 (4, curve_len)   behaviour/smoothed/
                                            greedy/minimal
          written  uint8   (n_states * n_actions,)

Two encoding choices keep the artifact byte-equal to the JSON path:

* **states** appear in the first-appearance order of the repr-sorted
  entry list -- exactly the order ``_qtable_from_document`` interns
  them -- and **actions** are the full ``action_space(adl)`` in its
  canonical order, so a restored table never grows (growing would
  copy) and every greedy readout sees the same values at the same
  ⟨state, action⟩ pairs;
* **q** and the **curves** are stored as raw IEEE-754 doubles, so the
  values round-trip exactly (the JSON path round-trips exactly too,
  via repr-shortest floats) and convergence detection over the
  smoothed curve lands on the same iteration.

Reminder levels are stored as indices into the canonical
``(MINIMAL, SPECIFIC)`` order because the enum values are strings.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.adl import ADL, ReminderLevel
from repro.core.errors import CoReDAError
from repro.planning.action import PromptAction, action_space
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import PlanningState
from repro.planning.trainer import LearningCurve
from repro.rl.dense import DenseQTable

__all__ = [
    "BINARY_VERSION",
    "MAGIC",
    "PolicyArtifactError",
    "PolicyArtifact",
    "pack_policy_artifact",
    "read_policy_artifact",
]

#: First four bytes of every artifact.
MAGIC = b"RPPB"

#: Bump when the packed layout changes incompatibly.
BINARY_VERSION = 1

#: Canonical encoding order for reminder levels (enum values are
#: strings, so the artifact stores the index).
_LEVELS: Tuple[ReminderLevel, ...] = (
    ReminderLevel.MINIMAL,
    ReminderLevel.SPECIFIC,
)
_LEVEL_INDEX = {level: index for index, level in enumerate(_LEVELS)}

_CURVE_KEYS = ("behaviour", "smoothed", "greedy", "minimal")


class PolicyArtifactError(CoReDAError):
    """A sidecar that cannot be decoded (truncated, corrupt, stale)."""


def _align(offset: int, boundary: int = 16) -> int:
    return (offset + boundary - 1) // boundary * boundary


def pack_policy_artifact(
    document: dict, actions: Sequence[PromptAction]
) -> bytes:
    """Pack a JSON training document into the binary sidecar format.

    ``actions`` must be the deployment's full action space (in
    canonical order); every entry of the document must reference one
    of them, or the document is not packable (a stale or foreign
    document raises :class:`PolicyArtifactError` rather than writing
    a sidecar that could not serve the deployment).
    """
    actions = tuple(actions)
    action_cols = {}
    for column, action in enumerate(actions):
        if action.level not in _LEVEL_INDEX:
            raise PolicyArtifactError(
                f"action {action!r} has unencodable level"
            )
        action_cols[(int(action.tool_id), action.level)] = column
    state_rows: dict = {}
    cells = []
    for entry in document["entries"]:
        state = (int(entry["previous"]), int(entry["current"]))
        row = state_rows.get(state)
        if row is None:
            row = len(state_rows)
            state_rows[state] = row
        column = action_cols.get(
            (int(entry["tool_id"]), ReminderLevel(entry["level"]))
        )
        if column is None:
            raise PolicyArtifactError(
                f"entry prompts ({entry['tool_id']}, {entry['level']}) "
                "outside the deployment's action space"
            )
        cells.append((row, column, float(entry["q"])))
    n_states = len(state_rows)
    n_actions = len(actions)
    initial_q = float(document.get("initial_q", 0.0))

    curve = document["curve"]
    curve_len = len(curve[_CURVE_KEYS[0]])
    for key in _CURVE_KEYS:
        if len(curve[key]) != curve_len:
            raise PolicyArtifactError("curve arrays have unequal lengths")

    states_arr = np.array(list(state_rows), dtype="<i8").reshape(
        n_states, 2
    )
    actions_arr = np.array(
        [
            (int(action.tool_id), _LEVEL_INDEX[action.level])
            for action in actions
        ],
        dtype="<i8",
    ).reshape(n_actions, 2)
    q_arr = np.full((n_states, n_actions), initial_q, dtype="<f8")
    written_arr = np.zeros(n_states * n_actions, dtype=np.uint8)
    for row, column, value in cells:
        q_arr[row, column] = value
        written_arr[row * n_actions + column] = 1
    curves_arr = np.array(
        [curve[key] for key in _CURVE_KEYS], dtype="<f8"
    ).reshape(4, curve_len)

    payload = b"".join(
        [
            states_arr.tobytes(),
            actions_arr.tobytes(),
            q_arr.tobytes(),
            curves_arr.tobytes(),
            written_arr.tobytes(),
        ]
    )
    header = json.dumps(
        {
            "format": int(document.get("format", 0)),
            "adl": document.get("adl"),
            "initial_q": initial_q,
            "n_states": n_states,
            "n_actions": n_actions,
            "curve_len": curve_len,
            "crc32": zlib.crc32(payload),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    prefix = MAGIC + struct.pack("<II", BINARY_VERSION, len(header)) + header
    return prefix + b"\x00" * (_align(len(prefix)) - len(prefix)) + payload


class PolicyArtifact:
    """A decoded view over one packed policy buffer.

    Holds NumPy views *into* the backing buffer (an ``mmap``, a
    ``SharedMemory.buf`` or plain bytes) -- nothing is copied until a
    learner writes, at which point the frozen
    :class:`~repro.rl.dense.DenseQTable` thaws into private storage.
    The artifact keeps the backing object alive for as long as any
    view of it is reachable.
    """

    __slots__ = (
        "document_format",
        "adl_name",
        "initial_q",
        "states",
        "actions",
        "q",
        "written",
        "curves",
        "_backing",
    )

    def __init__(
        self,
        document_format: int,
        adl_name: str,
        initial_q: float,
        states: np.ndarray,
        actions: Tuple[PromptAction, ...],
        q: np.ndarray,
        written: np.ndarray,
        curves: np.ndarray,
        backing: object,
    ) -> None:
        self.document_format = document_format
        self.adl_name = adl_name
        self.initial_q = initial_q
        self.states = states
        self.actions = actions
        self.q = q
        self.written = written
        self.curves = curves
        self._backing = backing

    @property
    def n_states(self) -> int:
        return self.q.shape[0]

    @property
    def n_actions(self) -> int:
        return self.q.shape[1]

    def matches(self, adl: ADL) -> bool:
        """Whether this artifact can serve a deployment of ``adl``.

        Same validation surface as the JSON loader: the ADL name must
        match and every action must exist in the deployment's action
        space (stored actions are the *full* space, so equality is
        the check).
        """
        return (
            self.adl_name == adl.name
            and self.actions == tuple(action_space(adl))
        )

    def curve(self) -> LearningCurve:
        """The training's learning curve, value-equal to the JSON one."""
        behaviour, smoothed, greedy, minimal = self.curves
        return LearningCurve(
            behaviour_accuracy=behaviour.tolist(),
            smoothed_accuracy=smoothed.tolist(),
            greedy_accuracy=greedy.tolist(),
            minimal_fraction=minimal.tolist(),
        )

    def qtable(self) -> DenseQTable:
        """A frozen dense table directly over the shared buffer."""
        states = [
            PlanningState(int(previous), int(current))
            for previous, current in self.states
        ]
        return DenseQTable.from_frozen_buffers(
            self.initial_q, states, self.actions, self.q, self.written
        )

    def predictor(
        self, adl: ADL, converged: bool = True
    ) -> NextStepPredictor:
        """A deployed predictor over the zero-copy table.

        Raises :class:`~repro.core.errors.CoReDAError` on an ADL
        mismatch, mirroring :func:`repro.planning.store.load_predictor`
        -- a stale policy must never silently drive prompts for the
        wrong deployment.
        """
        if not self.matches(adl):
            raise CoReDAError(
                f"policy artifact was packed for ADL {self.adl_name!r}, "
                f"not {adl.name!r}"
            )
        return NextStepPredictor(
            self.qtable(), action_space(adl), converged=converged
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PolicyArtifact(adl={self.adl_name!r}, "
            f"q={self.n_states}x{self.n_actions})"
        )


def _view(
    buffer: object, dtype: str, count: int, offset: int
) -> np.ndarray:
    array = np.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
    # Shared-memory buffers are writable; the artifact contract is
    # read-only (writes go through the frozen table's thaw).
    array.flags.writeable = False
    return array


def read_policy_artifact(
    buffer: object, verify: bool = True
) -> PolicyArtifact:
    """Decode a packed artifact without copying its bulk data.

    ``buffer`` is anything NumPy can view (``mmap``, ``memoryview``,
    ``bytes``).  Raises :class:`PolicyArtifactError` on any structural
    problem -- short buffer, bad magic, version skew, length overrun
    or (with ``verify``) a CRC mismatch -- so callers can treat every
    failure as "no sidecar" and fall back to JSON.
    """
    view = memoryview(buffer)
    if len(view) < 12 or bytes(view[:4]) != MAGIC:
        raise PolicyArtifactError("not a policy artifact")
    version, header_len = struct.unpack_from("<II", view, 4)
    if version != BINARY_VERSION:
        raise PolicyArtifactError(
            f"artifact layout version {version}, "
            f"expected {BINARY_VERSION}"
        )
    if len(view) < 12 + header_len:
        raise PolicyArtifactError("truncated artifact header")
    try:
        header = json.loads(bytes(view[12:12 + header_len]))
    except ValueError as error:
        raise PolicyArtifactError(
            f"undecodable artifact header: {error}"
        ) from error
    try:
        n_states = int(header["n_states"])
        n_actions = int(header["n_actions"])
        curve_len = int(header["curve_len"])
        initial_q = float(header["initial_q"])
        adl_name = str(header["adl"])
        document_format = int(header["format"])
        crc = int(header["crc32"])
    except (KeyError, TypeError, ValueError) as error:
        raise PolicyArtifactError(
            f"incomplete artifact header: {error}"
        ) from error
    if min(n_states, n_actions, curve_len) < 0:
        raise PolicyArtifactError("negative artifact dimensions")
    start = _align(12 + header_len)
    cells = n_states * n_actions
    sizes = (
        n_states * 2 * 8,
        n_actions * 2 * 8,
        cells * 8,
        4 * curve_len * 8,
        cells,
    )
    if len(view) < start + sum(sizes):
        raise PolicyArtifactError("truncated artifact payload")
    if verify:
        payload = view[start:start + sum(sizes)]
        if zlib.crc32(payload) != crc:
            raise PolicyArtifactError("artifact payload CRC mismatch")
    offset = start
    states = _view(buffer, "<i8", n_states * 2, offset)
    states = states.reshape(n_states, 2)
    offset += sizes[0]
    action_codes = _view(buffer, "<i8", n_actions * 2, offset)
    action_codes = action_codes.reshape(n_actions, 2)
    offset += sizes[1]
    q = _view(buffer, "<f8", cells, offset).reshape(
        n_states, n_actions
    )
    offset += sizes[2]
    curves = _view(buffer, "<f8", 4 * curve_len, offset).reshape(
        4, curve_len
    )
    offset += sizes[3]
    written = _view(buffer, "u1", cells, offset)

    actions = []
    for tool_id, level_index in action_codes:
        if not 0 <= level_index < len(_LEVELS):
            raise PolicyArtifactError(
                f"unknown reminder-level code {int(level_index)}"
            )
        actions.append(
            PromptAction(int(tool_id), _LEVELS[int(level_index)])
        )
    return PolicyArtifact(
        document_format=document_format,
        adl_name=adl_name,
        initial_q=initial_q,
        states=states,
        actions=tuple(actions),
        q=q,
        written=written,
        curves=curves,
        backing=buffer,
    )


def artifact_matches_document(
    artifact: PolicyArtifact, document: dict
) -> bool:
    """Cheap coherence probe used by tests: same format and shape."""
    return (
        artifact.document_format == document.get("format")
        and artifact.adl_name == document.get("adl")
        and artifact.n_states
        == len(
            {
                (entry["previous"], entry["current"])
                for entry in document["entries"]
            }
        )
    )
