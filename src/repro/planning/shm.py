"""Shared-memory policy arena: publish once, serve every worker.

The fleet executor's wave 2 used to hand each worker nothing but a
cache *directory*; every shard then re-read its policies as JSON --
disk read, parse, re-intern, rebuild -- once per shard (and before
PR 10, once per *home*).  The arena removes the per-worker copy
entirely:

* the **parent** packs each distinct training's binary artifact
  (:mod:`repro.planning.binary`) into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment,
  content-addressed by training cache key;
* a ``{cache key -> segment name}`` **registry** rides to the workers
  through the pool initializer
  (:class:`~repro.evalx.parallel.WorkerPool`), so cell payloads stay
  scalar and re-shardable;
* each **worker** attaches a segment at most once per process,
  decodes it zero-copy (NumPy views over ``SharedMemory.buf``) and
  memoizes the artifact, so N shards in one worker share one mapping
  and the kernel shares the physical pages across *all* workers.

Lifecycle: the parent owns every segment.  :meth:`PolicyArena.close`
unlinks them deterministically when the fleet run ends (success,
error or cancellation -- the executor closes in a ``finally``), and
an ``atexit`` hook backstops a parent that never reached close.  The
``resource_tracker`` needs exactly one piece of special handling:
:class:`PolicyArena` launches it eagerly in ``__init__`` so every
pool worker forks *after* it exists and inherits it.  From there one
tracker process serves the whole fork tree and its cache is a *set*,
so the parent's create and every worker attach collapse to a single
entry, the parent's ``unlink`` retires it, and a parent killed
before close leaves exactly one entry for the tracker to reap.
(Per-worker explicit unregisters would each race the others for
that single entry and spray ``KeyError`` tracebacks in the tracker;
workers forked before the tracker launches would each spin up a
private one that mis-reports the parent's segments as leaked.)

Segment names are deterministic SHA-256 digests of (arena tag, cache
key), so the registry can be computed -- and shipped to workers via
the pool initializer -- *before* wave 1 has produced any artifact.
"""

from __future__ import annotations

import atexit
import gc
import hashlib
import os
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional

from repro.planning.binary import (
    PolicyArtifact,
    PolicyArtifactError,
    read_policy_artifact,
)

__all__ = [
    "PolicyArena",
    "install_worker_registry",
    "installed_registry",
    "arena_artifact",
    "activate_local_arena",
    "deactivate_local_arena",
]


class PolicyArena:
    """Parent-side owner of the published policy segments.

    Create one per fleet run, :meth:`publish` each distinct
    training's packed artifact, then :meth:`close` when the run ends.
    ``close`` is idempotent, runs from the executor's ``finally`` and
    again from ``atexit`` as a backstop, and only ever acts in the
    creating process (a forked worker inheriting the object must not
    unlink the parent's segments).
    """

    __slots__ = ("tag", "_pid", "_segments", "_artifacts", "_closed")

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self._pid = os.getpid()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._artifacts: Dict[str, PolicyArtifact] = {}
        self._closed = False
        # Launch the resource tracker *now*, before the fleet's pool
        # forks any worker.  The tracker otherwise starts lazily at
        # the first ``register`` -- which is the parent's first
        # ``publish``, *after* wave 1 forked the workers -- leaving
        # each worker with ``_fd is None`` and spawning its own
        # private tracker on attach.  Those private trackers never
        # see the parent's ``unlink`` and mis-report every attached
        # segment as leaked at shutdown.  With the tracker running
        # pre-fork, the whole tree shares it and the set-dedup
        # lifecycle in the module docstring actually holds.
        resource_tracker.ensure_running()
        atexit.register(self.close)

    def segment_name(self, key: str) -> str:
        """Deterministic segment name for a training cache key.

        Pure function of (tag, key) so the worker registry can be
        built before any segment exists; short enough for the
        POSIX ``shm_open`` 31-char portability limit.
        """
        digest = hashlib.sha256(
            f"{self.tag}:{key}".encode("utf-8")
        ).hexdigest()
        return f"rpp{digest[:24]}"

    def publish(self, key: str, payload: bytes) -> None:
        """Copy ``payload`` into the segment addressed by ``key``."""
        if self._closed:
            raise ValueError("arena is closed")
        if key in self._segments:
            return
        name = self.segment_name(key)
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=len(payload)
            )
        except FileExistsError:
            # Leftover from a killed run with the same deterministic
            # name: reclaim it.
            stale = shared_memory.SharedMemory(name=name)
            stale.unlink()
            stale.close()
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=len(payload)
            )
        segment.buf[: len(payload)] = payload
        self._segments[key] = segment

    def registry(self) -> Dict[str, str]:
        """``{cache key -> segment name}`` for the published keys."""
        return {
            key: segment.name for key, segment in self._segments.items()
        }

    def artifact(self, key: str) -> Optional[PolicyArtifact]:
        """The in-process decoded artifact for ``key`` (parent side).

        Serves the ``jobs=1`` inline path: the parent is its own
        worker then, and reads straight from the segment it owns.
        """
        if self._closed:
            return None
        artifact = self._artifacts.get(key)
        if artifact is not None:
            return artifact
        segment = self._segments.get(key)
        if segment is None:
            return None
        try:
            artifact = read_policy_artifact(segment.buf)
        except PolicyArtifactError:
            return None
        self._artifacts[key] = artifact
        return artifact

    def close(self) -> None:
        """Unlink and drop every published segment (idempotent)."""
        if self._closed or os.getpid() != self._pid:
            # A forked child inheriting the arena (or its atexit hook)
            # must never unlink the parent's live segments.
            return
        self._closed = True
        atexit.unregister(self.close)
        # Artifact views must die before the mappings can unmap.
        self._artifacts.clear()
        segments = list(self._segments.values())
        self._segments.clear()
        lingering = []
        for segment in segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                segment.close()
            except BufferError:
                lingering.append(segment)
        if lingering:
            # Artifact views routinely sit in reference cycles (the
            # deployment graph holds the predictor holds the frozen
            # table holds its buffer view), so dropping the memo above
            # doesn't free them until the cycle collector runs.  The
            # segments are already unlinked; collect once so the
            # mappings can actually unmap now instead of spraying
            # BufferError from ``__del__`` at an arbitrary later GC.
            gc.collect()
            for segment in lingering:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - caller leak
                    pass

    def __enter__(self) -> "PolicyArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PolicyArena(tag={self.tag!r}, "
            f"segments={len(self._segments)})"
        )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: ``{cache key -> segment name}`` installed by the pool initializer.
#: Mutated in place, never rebound: rebinding a module global from a
#: worker-reachable function is exactly the cross-process state leak
#: PAR002 exists to flag.
_WORKER_REGISTRY: Dict[str, str] = {}

#: Per-process attach memo: segment mapped and decoded at most once.
_ATTACHED: Dict[str, PolicyArtifact] = {}

#: Strong references keeping attached segments mapped for the worker's
#: lifetime (their artifacts hold views into the buffers).
_SEGMENTS: List[shared_memory.SharedMemory] = []

#: The parent's own arena while a fleet run is active (inline path).
_LOCAL_ARENAS: List[PolicyArena] = []


def install_worker_registry(registry: Dict[str, str]) -> None:
    """Pool-initializer entry point: adopt the parent's registry."""
    _WORKER_REGISTRY.clear()
    _WORKER_REGISTRY.update(registry)
    _ATTACHED.clear()


def installed_registry() -> Dict[str, str]:
    """A copy of the currently installed registry (test hook)."""
    return dict(_WORKER_REGISTRY)


def activate_local_arena(arena: PolicyArena) -> None:
    """Serve ``arena`` for in-process lookups (the ``jobs<=1`` path)."""
    _LOCAL_ARENAS.append(arena)


def deactivate_local_arena(arena: PolicyArena) -> None:
    """Stop serving ``arena`` in-process."""
    while arena in _LOCAL_ARENAS:
        _LOCAL_ARENAS.remove(arena)


def arena_artifact(key: str) -> Optional[PolicyArtifact]:
    """The shared-memory artifact for a training key, or ``None``.

    Resolution order: the parent's local arena (inline execution),
    the per-process attach memo, then a fresh attach via the
    installed registry.  Every failure path returns ``None`` so the
    caller can fall through to the mmap'd sidecar and finally the
    canonical JSON document.
    """
    for arena in reversed(_LOCAL_ARENAS):
        artifact = arena.artifact(key)
        if artifact is not None:
            return artifact
    artifact = _ATTACHED.get(key)
    if artifact is not None:
        return artifact
    name = _WORKER_REGISTRY.get(key)
    if name is None:
        return None
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    try:
        artifact = read_policy_artifact(segment.buf)
    except PolicyArtifactError:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - traceback holds a view
            pass
        return None
    _SEGMENTS.append(segment)
    _ATTACHED[key] = artifact
    return artifact
