"""Next-step prediction from a learned policy (paper section 3.3).

After training converges, the greedy policy over the Q-table *is* the
user's personalized routine: in state ⟨StepID_{i-1}, StepID_i⟩ the
greedy action names the tool of step i+1 (and the reminding level the
reward shaping selected, which is MINIMAL wherever both levels guide
correctly).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.core.config import default_infer_backend
from repro.core.errors import NotConvergedError
from repro.planning.action import PromptAction
from repro.planning.state import PlanningState
from repro.planning.trainer import TrainingResult
from repro.rl.batch import greedy_policy_for
from repro.rl.dense import DenseQTable
from repro.rl.qtable import QTable

__all__ = ["NextStepPredictor"]


class NextStepPredictor:
    """Greedy next-step lookup over a trained Q-table.

    Works over either Q backend -- the actions tuple is kept stable
    so the dense backend's interned argmax order is reused per call.

    Under the default "batched" inference backend the predictions are
    served from a lazily-built greedy-policy cache (a full argmax
    table on the dense backend, a per-state memo otherwise) keyed on
    the Q-table's monotone write counter -- identical answers to the
    per-call ``best_action`` path, which ``memoize=False`` (or
    ``REPRO_INFER_BACKEND=scalar``) keeps as the byte-identity
    reference.  The version check makes the cache safe under online
    adaptation: a learner writing through the same table invalidates
    it instead of leaving stale prompts deployed.
    """

    __slots__ = ("q", "actions", "converged", "_memoize", "_policy")

    def __init__(
        self,
        q: Union[QTable, DenseQTable],
        actions: Sequence[PromptAction],
        converged: bool = True,
        memoize: Optional[bool] = None,
    ) -> None:
        if not actions:
            raise ValueError("predictor needs a non-empty action space")
        self.q = q
        self.actions: Tuple[PromptAction, ...] = tuple(actions)
        self.converged = converged
        if memoize is None:
            memoize = default_infer_backend() == "batched"
        self._memoize = memoize
        self._policy = None

    @classmethod
    def from_training(
        cls,
        result: TrainingResult,
        criterion: float = 0.95,
        require_converged: bool = True,
    ) -> "NextStepPredictor":
        """Build a predictor from a :class:`TrainingResult`.

        With ``require_converged`` (the default), refuses to build
        from a run that never met ``criterion`` -- prompting a
        dementia patient from a half-learned policy is exactly what a
        deployment must not do.
        """
        converged = result.converged(criterion)
        if require_converged and not converged:
            raise NotConvergedError(
                f"training never reached the {criterion:.0%} criterion "
                f"(convergence map: {result.convergence})"
            )
        return cls(result.learner.q, result.actions, converged=converged)

    def predict(
        self, state: Union[PlanningState, Tuple[int, int]]
    ) -> PromptAction:
        """The prompt for ``state`` = ⟨previous StepID, current StepID⟩."""
        policy = self._policy
        if policy is not None:
            return policy.lookup(state)
        if self._memoize:
            policy = greedy_policy_for(self.q, self.actions)
            if policy is not None:
                self._policy = policy
                return policy.lookup(state)
            # Unknown table type: no version counter to revalidate
            # against, so caching would risk stale prompts.
            self._memoize = False
        if not isinstance(state, PlanningState):
            state = PlanningState(*state)
        return self.q.best_action(state, self.actions)

    def predict_next_tool(
        self, previous_step_id: int, current_step_id: int
    ) -> int:
        """Just the ToolID of the predicted next step."""
        return self.predict((previous_step_id, current_step_id)).tool_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NextStepPredictor(actions={len(self.actions)}, "
            f"converged={self.converged})"
        )
