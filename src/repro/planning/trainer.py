"""Offline routine training (paper section 3.2).

The paper trains on 120 recorded samples per ADL, each "a complete
process of an ADL", and plots a learning curve with convergence read
off at the 95% and 98% criteria.  :class:`RoutineTrainer` reproduces
that procedure:

* one **iteration** = one training sample (episode) replayed through
  the learner, the behaviour policy choosing a prompt at every step
  and the CoReDA reward function scoring it against the observed next
  step;
* the per-iteration **accuracy** is the fraction of prompts issued
  during that episode whose tool matched the step the user actually
  took next -- this is what a deployed system can measure without
  ground truth, and (because the behaviour policy keeps exploring) it
  converges gradually, giving the paper's curve its shape;
* a rolling mean smooths the quantised per-episode values before the
  convergence detector is applied;
* the **greedy accuracy** (probe of the greedy policy against the true
  routine) is also recorded -- it is the quantity behind Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adl import ADL, ReminderLevel, Routine
from repro.core.config import PlanningConfig
from repro.planning.action import PromptAction, action_space
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import PlanningState, episode_states
from repro.rl.convergence import convergence_iteration
from repro.rl.dense import DenseQTable
from repro.rl.dyna import DynaQLearner
from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.schedules import ExponentialDecay
from repro.rl.tdlambda import TDLambdaQLearner
from repro.sim.random import seeded_generator

__all__ = [
    "LearningCurve",
    "TrainingResult",
    "RoutineTrainer",
    "replay_episode",
]


def replay_episode(
    learner,
    actions: Sequence[PromptAction],
    episode: Sequence[int],
    reward_fn: CoReDAReward,
    rng: np.random.Generator,
    iteration: int = 0,
    states: Optional[Sequence[PlanningState]] = None,
) -> Tuple[int, int]:
    """Replay one logged episode through a learner.

    The behaviour policy chooses a prompt per transition, the CoReDA
    reward scores it against the observed next step, and prompts that
    were not followed are flagged off-target (strict Watkins cut).
    Returns ``(correct_prompts, total_prompts)``.

    ``states`` may carry the precomputed ``episode_states(episode)``
    trajectory -- the trainer replays the same episodes hundreds of
    times, so it caches them instead of rebuilding the namedtuples
    every iteration.

    Shared by offline training (:class:`RoutineTrainer`) and online
    adaptation (:class:`repro.planning.online.OnlineAdaptation`).
    """
    if states is None:
        states = episode_states(list(episode))
    learner.begin_episode()
    correct = 0
    total = 0
    select = learner.select_action
    observe = learner.observe
    score = reward_fn.reward
    terminal = reward_fn.terminal_step_id
    is_dyna = isinstance(learner, DynaQLearner)
    for index in range(len(states) - 1):
        state, next_state = states[index], states[index + 1]
        action, exploratory = select(state, actions, rng, step=iteration)
        reward = score(state, action, next_state)
        followed = action.tool_id == next_state.current
        done = next_state.current == terminal
        off_target = exploratory or not followed
        if is_dyna:
            observe(
                state,
                action,
                reward,
                next_state,
                actions,
                done,
                rng=rng,
                exploratory=off_target,
            )
        else:
            observe(
                state, action, reward, next_state, actions, done,
                exploratory=off_target,
            )
        total += 1
        if followed:
            correct += 1
    return correct, total


@dataclass
class LearningCurve:
    """Accuracy series recorded during training."""

    #: Raw per-episode behaviour accuracy (prompts matching next steps).
    behaviour_accuracy: List[float] = field(default_factory=list)
    #: Rolling mean of ``behaviour_accuracy`` (window set by trainer).
    smoothed_accuracy: List[float] = field(default_factory=list)
    #: Greedy-policy probe against the true routine, per episode.
    greedy_accuracy: List[float] = field(default_factory=list)
    #: Fraction of greedy prompts at MINIMAL level, per episode.
    minimal_fraction: List[float] = field(default_factory=list)

    def iterations(self) -> int:
        """Number of training iterations recorded."""
        return len(self.behaviour_accuracy)


@dataclass
class TrainingResult:
    """Everything the evaluation needs after a training run."""

    curve: LearningCurve
    #: criterion -> 1-based iteration of convergence (None = never).
    convergence: Dict[float, Optional[int]]
    routine: Routine
    learner: object
    actions: Tuple[PromptAction, ...]

    def converged(self, criterion: float) -> bool:
        """True if the run converged at ``criterion``."""
        return self.convergence.get(criterion) is not None


class RoutineTrainer:
    """Trains a learner on logged ADL episodes, recording the curve.

    ``learner`` defaults to Watkins TD(λ) Q-learning configured from
    ``config`` with an exponentially decaying ε-greedy behaviour
    policy; a :class:`~repro.rl.dyna.DynaQLearner` may be passed for
    the fast-learning ablation.
    """

    #: Rolling-mean window applied before convergence detection.
    SMOOTHING_WINDOW = 10

    def __init__(
        self,
        adl: ADL,
        config: Optional[PlanningConfig] = None,
        learner: Optional[object] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.adl = adl
        self.config = config if config is not None else PlanningConfig()
        self._rng = rng if rng is not None else seeded_generator(0)
        if learner is None:
            policy = EpsilonGreedyPolicy(
                ExponentialDecay(self.config.epsilon, self.config.epsilon_decay)
            )
            learner = TDLambdaQLearner(
                learning_rate=self.config.learning_rate,
                discount=self.config.discount,
                trace_decay=self.config.trace_decay,
                policy=policy,
                initial_q=self.config.initial_q,
                q_backend=self.config.q_backend,
            )
        self.learner = learner
        self.actions: Tuple[PromptAction, ...] = tuple(action_space(adl))
        # Probe-state cache: the greedy probe runs once per training
        # iteration over the same routine, so its states, the expected
        # next steps, and (on the dense backend) a prebound argmax
        # prober are computed once per routine.
        self._probe_cache: Optional[tuple] = None
        # Episode-trajectory cache: the paper replays the same logged
        # episodes for hundreds of iterations, so their PlanningState
        # trajectories are built once per distinct step sequence.
        self._states_cache: Dict[Tuple[int, ...], List[PlanningState]] = {}
        # The batched greedy probe, resolved once: per-state fallback
        # for custom learners without ``greedy_actions``.
        self._greedy_batch = getattr(self.learner, "greedy_actions", None)

    def train(
        self,
        episodes: Sequence[Sequence[int]],
        routine: Optional[Routine] = None,
        criteria: Sequence[float] = (0.95, 0.98),
    ) -> TrainingResult:
        """Replay ``episodes`` through the learner.

        ``routine`` is the ground-truth personal routine used for the
        greedy probe; it defaults to the first episode (the paper's
        training samples are all complete correct runs).
        """
        if not episodes:
            raise ValueError("need at least one training episode")
        if routine is None:
            routine = Routine(self.adl, episodes[0])
        reward_fn = CoReDAReward(self.config, routine.terminal_step_id)
        curve = LearningCurve()
        for iteration, episode in enumerate(episodes):
            accuracy = self._train_episode(episode, reward_fn, iteration)
            curve.behaviour_accuracy.append(accuracy)
            window = curve.behaviour_accuracy[-self.SMOOTHING_WINDOW:]
            curve.smoothed_accuracy.append(sum(window) / len(window))
            greedy, minimal = self._probe_greedy(routine)
            curve.greedy_accuracy.append(greedy)
            curve.minimal_fraction.append(minimal)
        convergence = {
            criterion: convergence_iteration(
                curve.smoothed_accuracy,
                criterion,
                patience=self.config.convergence_patience,
            )
            for criterion in criteria
        }
        return TrainingResult(
            curve=curve,
            convergence=convergence,
            routine=routine,
            learner=self.learner,
            actions=self.actions,
        )

    def _train_episode(self, episode, reward_fn: CoReDAReward, iteration: int) -> float:
        """One pass over one logged episode; returns behaviour accuracy."""
        key = tuple(episode)
        states = self._states_cache.get(key)
        if states is None:
            states = episode_states(key)
            self._states_cache[key] = states
        correct, total = replay_episode(
            self.learner, self.actions, episode, reward_fn, self._rng,
            iteration, states=states,
        )
        if total == 0:
            return 1.0
        return correct / total

    def _probe_greedy(self, routine: Routine) -> Tuple[float, float]:
        """Greedy accuracy and minimal-level fraction on the routine.

        Probes all routine states in one batched argmax when the
        learner supports it (one ``greedy_actions`` call on the dense
        backend); per-state ``greedy_action`` otherwise, so custom
        learners passed to the trainer keep working unchanged.
        """
        key = tuple(routine.step_ids)
        if self._probe_cache is None or self._probe_cache[0] != key:
            states = episode_states(list(key))
            expected = [state.current for state in states[1:]]
            prober = None
            if self._greedy_batch is not None:
                q = getattr(self.learner, "q", None)
                if type(q) is DenseQTable and states[:-1]:
                    prober = q.argmax_prober(states[:-1], self.actions)
            self._probe_cache = (key, states[:-1], expected, prober)
        _, probe_states, expected, prober = self._probe_cache
        total = len(probe_states)
        if total <= 0:
            return 1.0, 1.0
        if prober is not None:
            chosen = prober()
        elif self._greedy_batch is not None:
            chosen = self._greedy_batch(probe_states, self.actions)
        else:
            chosen = [
                self.learner.greedy_action(state, self.actions)
                for state in probe_states
            ]
        correct = 0
        minimal = 0
        wants_minimal = ReminderLevel.MINIMAL
        for action, expected_step in zip(chosen, expected):
            if action.tool_id == expected_step:
                correct += 1
            if action.level is wants_minimal:
                minimal += 1
        return correct / total, minimal / total
