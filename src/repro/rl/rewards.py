"""Reward-function abstractions.

A reward function maps ``(state, action, next_state)`` to a scalar, as
in the paper's Figure 3 learning loop ("Reward Function" box).  The
CoReDA-specific instantiation (1000 / 100 / 50 / 0) lives in
``repro.planning.rewards_coreda``; here are the generic pieces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Tuple

__all__ = ["RewardFunction", "CallableReward", "TabularReward"]

State = Hashable
Action = Hashable


class RewardFunction(ABC):
    """R : S × A × S → ℝ."""

    @abstractmethod
    def reward(self, state: State, action: Action, next_state: State) -> float:
        """The scalar reward of the transition."""

    def __call__(self, state: State, action: Action, next_state: State) -> float:
        return self.reward(state, action, next_state)


class CallableReward(RewardFunction):
    """Adapts a plain function to the RewardFunction interface."""

    def __init__(self, fn: Callable[[State, Action, State], float]) -> None:
        self._fn = fn

    def reward(self, state: State, action: Action, next_state: State) -> float:
        return float(self._fn(state, action, next_state))


class TabularReward(RewardFunction):
    """Rewards looked up in an explicit table, with a default."""

    def __init__(
        self,
        table: Dict[Tuple[State, Action, State], float],
        default: float = 0.0,
    ) -> None:
        self._table = dict(table)
        self.default = float(default)

    def reward(self, state: State, action: Action, next_state: State) -> float:
        return self._table.get((state, action, next_state), self.default)

    def __len__(self) -> int:
        return len(self._table)
