"""Convergence detection (paper section 3.2).

The paper reports iterations-to-convergence for "converging
conditions" of 95% and 98%.  We define convergence the way a
deployment must: the measured policy accuracy has reached the
criterion and *stayed* there for ``patience`` consecutive iterations
(a single lucky iteration must not count).  The reported convergence
iteration is the first iteration of that stable run, matching the
paper's "converge after N iterations" reading.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["ConvergenceDetector", "convergence_iteration"]


class ConvergenceDetector:
    """Streaming detector over a sequence of accuracy measurements."""

    def __init__(self, criterion: float = 0.95, patience: int = 3) -> None:
        if not 0.0 < criterion <= 1.0:
            raise ValueError("criterion must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.criterion = criterion
        self.patience = patience
        self.history: List[float] = []
        self._streak = 0
        self._converged_at: Optional[int] = None

    def update(self, accuracy: float) -> bool:
        """Feed one accuracy measurement; returns the converged flag."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        self.history.append(accuracy)
        if self._converged_at is not None:
            return True
        if accuracy >= self.criterion:
            self._streak += 1
            if self._streak >= self.patience:
                # First iteration of the stable streak, 1-based.
                self._converged_at = len(self.history) - self.patience + 1
                return True
        else:
            self._streak = 0
        return False

    @property
    def converged(self) -> bool:
        """True once the criterion has held for ``patience`` iterations."""
        return self._converged_at is not None

    @property
    def converged_at(self) -> Optional[int]:
        """1-based iteration where the stable run began, or None."""
        return self._converged_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConvergenceDetector(criterion={self.criterion}, "
            f"converged_at={self._converged_at})"
        )


def convergence_iteration(
    accuracies: Sequence[float], criterion: float, patience: int = 3
) -> Optional[int]:
    """Offline variant: convergence iteration for a recorded curve.

    Returns the 1-based iteration where accuracy first reached
    ``criterion`` and held for ``patience`` iterations, or ``None`` if
    it never did.
    """
    detector = ConvergenceDetector(criterion=criterion, patience=patience)
    for accuracy in accuracies:
        detector.update(accuracy)
    return detector.converged_at
