"""Value iteration and policy extraction on a :class:`TabularMDP`.

This is the planning substrate behind the Boger-style baseline (a
pre-planned MDP guidance system) and the oracle used by tests to
verify that TD(λ) Q-learning converges to the optimal policy on the
paper's routine MDPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from repro.rl.mdp import TabularMDP

__all__ = ["ValueIterationResult", "value_iteration", "extract_policy", "q_values"]

State = Hashable
Action = Hashable


@dataclass(frozen=True)
class ValueIterationResult:
    """Converged state values plus solver diagnostics."""

    values: Dict[State, float]
    iterations: int
    residual: float


def value_iteration(
    mdp: TabularMDP,
    discount: float = 0.9,
    tolerance: float = 1e-8,
    max_iterations: int = 10_000,
) -> ValueIterationResult:
    """Solve ``mdp`` to within ``tolerance`` (sup-norm residual)."""
    if not 0.0 <= discount < 1.0:
        raise ValueError("discount must be in [0, 1)")
    values: Dict[State, float] = {state: 0.0 for state in mdp.states()}
    residual = float("inf")
    iterations = 0
    while residual > tolerance and iterations < max_iterations:
        residual = 0.0
        for state in mdp.states():
            if mdp.is_terminal(state):
                continue
            actions = mdp.actions(state)
            if not actions:
                continue
            best = max(
                _backup(mdp, values, state, action, discount) for action in actions
            )
            residual = max(residual, abs(best - values[state]))
            values[state] = best
        iterations += 1
    return ValueIterationResult(values=values, iterations=iterations, residual=residual)


def q_values(
    mdp: TabularMDP, values: Dict[State, float], discount: float = 0.9
) -> Dict[State, Dict[Action, float]]:
    """Q(s, a) induced by state values ``values``."""
    table: Dict[State, Dict[Action, float]] = {}
    for state in mdp.states():
        if mdp.is_terminal(state):
            continue
        table[state] = {
            action: _backup(mdp, values, state, action, discount)
            for action in mdp.actions(state)
        }
    return table


def extract_policy(
    mdp: TabularMDP, values: Dict[State, float], discount: float = 0.9
) -> Dict[State, Action]:
    """The greedy policy under ``values`` (deterministic tie-break)."""
    policy: Dict[State, Action] = {}
    for state, action_values in q_values(mdp, values, discount).items():
        if not action_values:
            continue
        policy[state] = max(
            sorted(action_values, key=repr), key=lambda a: action_values[a]
        )
    return policy


def _backup(
    mdp: TabularMDP,
    values: Dict[State, float],
    state: State,
    action: Action,
    discount: float,
) -> float:
    total = 0.0
    for outcome in mdp.outcomes(state, action):
        future: float = 0.0
        if not mdp.is_terminal(outcome.next_state):
            future = values.get(outcome.next_state, 0.0)
        total += outcome.probability * (outcome.reward + discount * future)
    return total
