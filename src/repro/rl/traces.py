"""Eligibility traces for TD(λ) methods.

Traces give credit for a TD error to recently visited state-action
pairs, which is what makes TD(λ) converge in dozens rather than
hundreds of episodes on the paper's short ADL chains.  Both classic
variants are provided:

* **accumulating** -- ``e(s,a) += 1`` on a visit;
* **replacing** -- ``e(s,a) = 1`` on a visit (often more stable).

Entries decaying below ``cutoff`` are dropped to keep updates O(active
traces), not O(table).
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterator, Tuple

__all__ = ["TraceKind", "EligibilityTraces"]

State = Hashable
Action = Hashable


class TraceKind(enum.Enum):
    """The two standard eligibility-trace update rules."""

    ACCUMULATING = "accumulating"
    REPLACING = "replacing"


class EligibilityTraces:
    """A sparse trace vector over (state, action) pairs."""

    def __init__(
        self, kind: TraceKind = TraceKind.REPLACING, cutoff: float = 1e-4
    ) -> None:
        if cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        self.kind = kind
        self.cutoff = cutoff
        self._traces: Dict[Tuple[State, Action], float] = {}

    def visit(self, state: State, action: Action) -> None:
        """Mark (s, a) as just visited."""
        key = (state, action)
        if self.kind is TraceKind.ACCUMULATING:
            self._traces[key] = self._traces.get(key, 0.0) + 1.0
        else:
            self._traces[key] = 1.0

    def decay(self, factor: float) -> None:
        """Multiply every trace by ``factor`` (= γλ), dropping tiny ones."""
        if factor == 0.0:
            self._traces.clear()
            return
        dead = []
        for key in self._traces:
            self._traces[key] *= factor
            if self._traces[key] < self.cutoff:
                dead.append(key)
        for key in dead:
            del self._traces[key]

    def get(self, state: State, action: Action) -> float:
        """Current trace of (s, a) (0.0 if inactive)."""
        return self._traces.get((state, action), 0.0)

    def reset(self) -> None:
        """Clear all traces (start of episode, or Watkins cut)."""
        self._traces.clear()

    def items(self) -> Iterator[Tuple[Tuple[State, Action], float]]:
        """Iterate over active (key, trace) pairs.

        Iterates a snapshot, so callers may mutate the Q-table (but
        not the traces) while looping.
        """
        return iter(list(self._traces.items()))

    def apply_update(self, q, coef: float) -> None:
        """``Q[pair] += coef * e[pair]`` for every active pair.

        The TD(λ) sweep, done here so the hot path iterates the live
        dict directly -- ``q.add`` never mutates the traces, so the
        defensive snapshot :meth:`items` takes is pure overhead.
        ``coef`` is the precomputed ``α·δ`` so the multiplication
        order matches the historical ``α·δ·e`` exactly.
        """
        for (state, action), eligibility in self._traces.items():
            q.add(state, action, coef * eligibility)

    def __len__(self) -> int:
        return len(self._traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EligibilityTraces({self.kind.value}, active={len(self._traces)})"
