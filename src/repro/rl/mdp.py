"""Explicit tabular MDPs.

Used by the value-iteration baseline (a Boger-style *pre-planned* MDP
guidance system, built from a known routine model) and by tests that
need a ground-truth optimal policy to compare the learners against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

__all__ = ["TransitionOutcome", "TabularMDP"]

State = Hashable
Action = Hashable


@dataclass(frozen=True)
class TransitionOutcome:
    """One stochastic outcome of taking an action."""

    probability: float
    next_state: State
    reward: float


class TabularMDP:
    """A finite MDP with explicit transition and reward tables."""

    def __init__(self) -> None:
        self._transitions: Dict[Tuple[State, Action], List[TransitionOutcome]] = {}
        self._actions: Dict[State, List[Action]] = {}
        self._terminal: Set[State] = set()

    def add_transition(
        self,
        state: State,
        action: Action,
        next_state: State,
        probability: float = 1.0,
        reward: float = 0.0,
    ) -> None:
        """Register one outcome of (state, action)."""
        if probability <= 0.0 or probability > 1.0:
            raise ValueError("probability must be in (0, 1]")
        key = (state, action)
        self._transitions.setdefault(key, []).append(
            TransitionOutcome(probability, next_state, reward)
        )
        actions = self._actions.setdefault(state, [])
        if action not in actions:
            actions.append(action)
        # Ensure the successor exists in the state map even if it has
        # no outgoing transitions yet (it may be terminal).
        self._actions.setdefault(next_state, [])

    def mark_terminal(self, state: State) -> None:
        """Declare ``state`` absorbing (value 0, no actions needed)."""
        self._terminal.add(state)
        self._actions.setdefault(state, [])

    def is_terminal(self, state: State) -> bool:
        """True if ``state`` was marked terminal."""
        return state in self._terminal

    def states(self) -> List[State]:
        """All known states, in deterministic order."""
        return sorted(self._actions.keys(), key=repr)

    def actions(self, state: State) -> List[Action]:
        """Actions available in ``state`` (empty for terminals)."""
        if state in self._terminal:
            return []
        return list(self._actions.get(state, []))

    def outcomes(self, state: State, action: Action) -> List[TransitionOutcome]:
        """The outcome distribution of (state, action)."""
        try:
            return list(self._transitions[(state, action)])
        except KeyError:
            raise KeyError(f"no transition defined for ({state!r}, {action!r})")

    def validate(self) -> None:
        """Check every outcome distribution sums to 1 (±1e-9).

        Raises ``ValueError`` on the first malformed distribution.
        """
        for (state, action), outcomes in self._transitions.items():
            total = sum(o.probability for o in outcomes)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"outcomes of ({state!r}, {action!r}) sum to {total}, not 1"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TabularMDP(states={len(self._actions)}, "
            f"transitions={len(self._transitions)}, "
            f"terminals={len(self._terminal)})"
        )
