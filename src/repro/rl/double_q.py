"""Double Q-learning [van Hasselt 2010].

Plain Q-learning's max-operator overestimates action values under
stochastic rewards (maximization bias).  Double Q-learning keeps two
tables and evaluates one's greedy choice with the other, removing the
bias.  CoReDA's rewards are deterministic so the paper's setup does
not need it -- but a *noisy sensing channel* makes observed rewards
stochastic (a correct prompt can look unfollowed when the next
detection is missed), which is exactly the regime where the bias
appears.  Included for completeness of the RL substrate, with tests
demonstrating the bias on the classic two-state counterexample.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.dense import StateActionIndex, make_qtable
from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["DoubleQLearner"]

State = Hashable
Action = Hashable


class DoubleQLearner:
    """Tabular Double Q-learning over two cross-evaluating tables."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        policy: Optional[Policy] = None,
        initial_q: float = 0.0,
        q_backend: str = "dense",
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        self.discount = float(discount)
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        # On the dense backend both tables share one index so states,
        # actions and cached action views are interned exactly once.
        index = StateActionIndex() if q_backend == "dense" else None
        self.q_a = make_qtable(q_backend, initial_q, index=index)
        self.q_b = make_qtable(q_backend, initial_q, index=index)
        # The behaviour-facing combined table (mean of both).
        self.q = _MeanQView(self.q_a, self.q_b)
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Episode boundary (interface symmetry with the other learners)."""
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour action from the combined value view."""
        return self.policy.select(self.q, state, actions, rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """Greedy action under the combined view."""
        return self.q.best_action(state, actions)

    def greedy_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> Sequence[Action]:
        """Greedy action per state under the combined view."""
        return self.q.best_actions(states, actions)

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        rng: Optional[np.random.Generator] = None,
        exploratory: bool = False,
    ) -> float:
        """One double-Q update (table choice by coin flip).

        ``rng`` drives the coin flip (a deterministic alternation is
        used when omitted); ``exploratory`` is accepted for interface
        compatibility and ignored (no traces here).
        """
        flip_a = (
            bool(rng.random() < 0.5) if rng is not None else self.updates % 2 == 0
        )
        update_table, eval_table = (
            (self.q_a, self.q_b) if flip_a else (self.q_b, self.q_a)
        )
        if done or not next_actions:
            target = reward
        else:
            best = update_table.best_action(next_state, next_actions)
            target = reward + self.discount * eval_table.value(next_state, best)
        delta = target - update_table.value(state, action)
        alpha = self.learning_rate_schedule.value(self.updates)
        update_table.add(state, action, alpha * delta)
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DoubleQLearner(updates={self.updates})"


class _MeanQView:
    """A read-only QTable facade averaging two tables.

    Backend-independent by construction: both backends return plain
    Python floats from ``action_values_sorted`` in the same repr
    order, so the per-element ``0.5 * (a + b)`` and the first-max
    scan produce the same IEEE-754 results and the same ties either
    way.
    """

    __slots__ = ("_q_a", "_q_b")

    def __init__(self, q_a, q_b) -> None:
        self._q_a = q_a
        self._q_b = q_b

    @property
    def version(self) -> int:
        """Combined write counter, so memoized greedy readouts over
        this view (:mod:`repro.rl.batch`) see either table change."""
        return self._q_a.version + self._q_b.version

    def value(self, state: State, action: Action) -> float:
        return 0.5 * (self._q_a.value(state, action) + self._q_b.value(state, action))

    def action_values_sorted(self, state: State, actions):
        raw_a, ordered = self._q_a.action_values_sorted(state, actions)
        raw_b, _ = self._q_b.action_values_sorted(state, actions)
        return [0.5 * (a + b) for a, b in zip(raw_a, raw_b)], ordered

    def best_action(self, state: State, actions) -> Action:
        values, ordered = self.action_values_sorted(state, actions)
        best_i = 0
        best_value = values[0]
        for i in range(1, len(values)):
            if values[i] > best_value:
                best_value = values[i]
                best_i = i
        return ordered[best_i]

    def best_actions(self, states, actions):
        return [self.best_action(state, actions) for state in states]

    def max_value(self, state: State, actions) -> float:
        values = [self.value(state, a) for a in actions]
        if not values:
            raise ValueError(f"no actions available in state {state!r}")
        return max(values)
