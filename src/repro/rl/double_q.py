"""Double Q-learning [van Hasselt 2010].

Plain Q-learning's max-operator overestimates action values under
stochastic rewards (maximization bias).  Double Q-learning keeps two
tables and evaluates one's greedy choice with the other, removing the
bias.  CoReDA's rewards are deterministic so the paper's setup does
not need it -- but a *noisy sensing channel* makes observed rewards
stochastic (a correct prompt can look unfollowed when the next
detection is missed), which is exactly the regime where the bias
appears.  Included for completeness of the RL substrate, with tests
demonstrating the bias on the classic two-state counterexample.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.qtable import QTable
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["DoubleQLearner"]

State = Hashable
Action = Hashable


class DoubleQLearner:
    """Tabular Double Q-learning over two cross-evaluating tables."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        policy: Optional[Policy] = None,
        initial_q: float = 0.0,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        self.discount = float(discount)
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q_a = QTable(initial_value=initial_q)
        self.q_b = QTable(initial_value=initial_q)
        # The behaviour-facing combined table (mean of both).
        self.q = _MeanQView(self.q_a, self.q_b)
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Episode boundary (interface symmetry with the other learners)."""
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour action from the combined value view."""
        return self.policy.select(self.q, state, list(actions), rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """Greedy action under the combined view."""
        return self.q.best_action(state, list(actions))

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        rng: Optional[np.random.Generator] = None,
        exploratory: bool = False,
    ) -> float:
        """One double-Q update (table choice by coin flip).

        ``rng`` drives the coin flip (a deterministic alternation is
        used when omitted); ``exploratory`` is accepted for interface
        compatibility and ignored (no traces here).
        """
        flip_a = (
            bool(rng.random() < 0.5) if rng is not None else self.updates % 2 == 0
        )
        update_table, eval_table = (
            (self.q_a, self.q_b) if flip_a else (self.q_b, self.q_a)
        )
        if done or not next_actions:
            target = reward
        else:
            best = update_table.best_action(next_state, list(next_actions))
            target = reward + self.discount * eval_table.value(next_state, best)
        delta = target - update_table.value(state, action)
        alpha = self.learning_rate_schedule.value(self.updates)
        update_table.add(state, action, alpha * delta)
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DoubleQLearner(updates={self.updates})"


class _MeanQView:
    """A read-only QTable facade averaging two tables."""

    def __init__(self, q_a: QTable, q_b: QTable) -> None:
        self._q_a = q_a
        self._q_b = q_b

    def value(self, state: State, action: Action) -> float:
        return 0.5 * (self._q_a.value(state, action) + self._q_b.value(state, action))

    def best_action(self, state: State, actions) -> Action:
        best = None
        best_value = float("-inf")
        for action in sorted(actions, key=repr):
            value = self.value(state, action)
            if value > best_value:
                best, best_value = action, value
        if best is None:
            raise ValueError(f"no actions available in state {state!r}")
        return best

    def max_value(self, state: State, actions) -> float:
        values = [self.value(state, a) for a in actions]
        if not values:
            raise ValueError(f"no actions available in state {state!r}")
        return max(values)
