"""Transitions and replay storage.

The trainer logs every transition it learns from; Dyna-Q replays them
through its model, and the experiment harness inspects them when
debugging a learning curve.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable, List, Optional, Tuple

import numpy as np

__all__ = ["Transition", "ReplayBuffer"]

State = Hashable
Action = Hashable


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) experience tuple.

    ``next_actions`` carries the action set of ``next_state`` so that
    off-policy replay can recompute the max over it without a world
    model.
    """

    state: State
    action: Action
    reward: float
    next_state: State
    done: bool
    next_actions: Tuple[Action, ...] = ()


class ReplayBuffer:
    """A bounded FIFO of transitions with uniform sampling."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: Deque[Transition] = deque(maxlen=capacity)

    def add(self, transition: Transition) -> None:
        """Append one transition (oldest evicted when full)."""
        self._buffer.append(transition)

    def sample(
        self, rng: np.random.Generator, k: int
    ) -> List[Transition]:
        """Draw ``k`` transitions uniformly with replacement.

        Sampling from an empty buffer raises: replaying nothing is a
        logic error in the caller's training loop.
        """
        if not self._buffer:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = rng.integers(len(self._buffer), size=k)
        return [self._buffer[int(i)] for i in indices]

    def last(self, k: Optional[int] = None) -> List[Transition]:
        """The most recent ``k`` transitions (all if ``k`` is None)."""
        items = list(self._buffer)
        if k is None:
            return items
        return items[-k:]

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplayBuffer({len(self._buffer)}/{self.capacity})"
