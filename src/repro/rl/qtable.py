"""A tabular action-value function with deterministic tie-breaking.

States and actions are arbitrary hashable objects.  Ties in argmax are
broken by the actions' ``repr`` ordering so that, given one seed, every
training run and every greedy readout is bit-for-bit reproducible --
a property the learning-curve experiments rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

__all__ = ["QTable"]

State = Hashable
Action = Hashable


class QTable:
    """Sparse mapping ``(state, action) -> value`` with default init."""

    def __init__(self, initial_value: float = 0.0) -> None:
        self.initial_value = float(initial_value)
        self._q: Dict[Tuple[State, Action], float] = {}

    def value(self, state: State, action: Action) -> float:
        """Q(s, a), defaulting to the initial value for unseen pairs."""
        return self._q.get((state, action), self.initial_value)

    def set(self, state: State, action: Action, value: float) -> None:
        """Assign Q(s, a)."""
        self._q[(state, action)] = float(value)

    def add(self, state: State, action: Action, delta: float) -> None:
        """In-place ``Q(s, a) += delta``."""
        key = (state, action)
        self._q[key] = self._q.get(key, self.initial_value) + delta

    def best_action(self, state: State, actions: Iterable[Action]) -> Action:
        """Argmax over ``actions``, deterministic under ties.

        Raises ``ValueError`` on an empty action iterable -- a state
        with no actions is a modelling bug we want loud.
        """
        best: Optional[Action] = None
        best_value = float("-inf")
        for action in sorted(actions, key=repr):
            value = self.value(state, action)
            if value > best_value:
                best = action
                best_value = value
        if best is None:
            raise ValueError(f"no actions available in state {state!r}")
        return best

    def max_value(self, state: State, actions: Iterable[Action]) -> float:
        """max_a Q(s, a) over the given actions."""
        values = [self.value(state, a) for a in actions]
        if not values:
            raise ValueError(f"no actions available in state {state!r}")
        return max(values)

    def greedy_policy(
        self, states_actions: Dict[State, List[Action]]
    ) -> Dict[State, Action]:
        """The greedy action for every state in ``states_actions``."""
        return {
            state: self.best_action(state, actions)
            for state, actions in states_actions.items()
        }

    def known_pairs(self) -> List[Tuple[State, Action]]:
        """All (state, action) pairs ever written."""
        return list(self._q.keys())

    def copy(self) -> "QTable":
        """An independent snapshot of this table."""
        clone = QTable(self.initial_value)
        clone._q = dict(self._q)
        return clone

    def max_abs_difference(self, other: "QTable") -> float:
        """sup-norm distance between two tables (over either's support)."""
        keys = set(self._q) | set(other._q)
        if not keys:
            return 0.0
        return max(
            abs(self._q.get(k, self.initial_value) - other._q.get(k, other.initial_value))
            for k in keys
        )

    def __len__(self) -> int:
        return len(self._q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QTable(entries={len(self._q)}, init={self.initial_value})"
