"""A tabular action-value function with deterministic tie-breaking.

States and actions are arbitrary hashable objects.  Ties in argmax are
broken by the actions' ``repr`` ordering so that, given one seed, every
training run and every greedy readout is bit-for-bit reproducible --
a property the learning-curve experiments rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["QTable"]

State = Hashable
Action = Hashable


class QTable:
    """Sparse mapping ``(state, action) -> value`` with default init."""

    def __init__(self, initial_value: float = 0.0) -> None:
        self.initial_value = float(initial_value)
        self._q: Dict[Tuple[State, Action], float] = {}
        #: Monotone write counter.  Memoized greedy readouts
        #: (:mod:`repro.rl.batch`) revalidate against it, so online
        #: adaptation writing through this table invalidates them.
        self.version = 0

    def value(self, state: State, action: Action) -> float:
        """Q(s, a), defaulting to the initial value for unseen pairs."""
        return self._q.get((state, action), self.initial_value)

    def set(self, state: State, action: Action, value: float) -> None:
        """Assign Q(s, a)."""
        self._q[(state, action)] = float(value)
        self.version += 1

    def add(self, state: State, action: Action, delta: float) -> None:
        """In-place ``Q(s, a) += delta``."""
        key = (state, action)
        self._q[key] = self._q.get(key, self.initial_value) + delta
        self.version += 1

    def best_action(self, state: State, actions: Iterable[Action]) -> Action:
        """Argmax over ``actions``, deterministic under ties.

        Raises ``ValueError`` on an empty action iterable -- a state
        with no actions is a modelling bug we want loud.
        """
        best: Optional[Action] = None
        best_value = float("-inf")
        for action in sorted(actions, key=repr):
            value = self.value(state, action)
            if value > best_value:
                best = action
                best_value = value
        if best is None:
            raise ValueError(f"no actions available in state {state!r}")
        return best

    def best_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> List[Action]:
        """The greedy action for every state in ``states``.

        The dense backend services this with one batched argmax; here
        it is the plain per-state loop, kept API-compatible so callers
        can probe a whole routine through either backend.
        """
        return [self.best_action(state, actions) for state in states]

    def max_value(self, state: State, actions: Iterable[Action]) -> float:
        """max_a Q(s, a) over the given actions."""
        values = [self.value(state, a) for a in actions]
        if not values:
            raise ValueError(f"no actions available in state {state!r}")
        return max(values)

    def action_values(
        self, state: State, actions: Sequence[Action]
    ) -> List[float]:
        """``[Q(s, a) for a in actions]`` in the given order."""
        return [self.value(state, a) for a in actions]

    def action_values_sorted(
        self, state: State, actions: Sequence[Action]
    ) -> Tuple[List[float], Tuple[Action, ...]]:
        """(values, actions), both in the deterministic repr order.

        This is the tie-break order :meth:`best_action` uses, exposed
        so policies that need the full value vector (softmax) sort
        once and share the order instead of sorting twice.
        """
        ordered = tuple(sorted(actions, key=repr))
        if not ordered:
            raise ValueError(f"no actions available in state {state!r}")
        return [self.value(state, a) for a in ordered], ordered

    def greedy_policy(
        self, states_actions: Dict[State, List[Action]]
    ) -> Dict[State, Action]:
        """The greedy action for every state in ``states_actions``."""
        return {
            state: self.best_action(state, actions)
            for state, actions in states_actions.items()
        }

    def known_pairs(self) -> List[Tuple[State, Action]]:
        """All (state, action) pairs ever written."""
        return list(self._q.keys())

    def copy(self) -> "QTable":
        """An independent snapshot of this table."""
        clone = QTable(self.initial_value)
        clone._q = dict(self._q)
        return clone

    def max_abs_difference(self, other) -> float:
        """sup-norm distance to ``other`` (sparse or dense backend),
        over either table's written support."""
        keys = set(self._q) | set(other.known_pairs())
        if not keys:
            return 0.0
        return max(
            abs(self.value(s, a) - other.value(s, a)) for s, a in keys
        )

    def __len__(self) -> int:
        return len(self._q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QTable(entries={len(self._q)}, init={self.initial_value})"
