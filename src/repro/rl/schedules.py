"""Parameter schedules (learning rate, exploration, temperature).

A schedule maps a step counter to a value.  The paper notes that the
operator "can set the parameters (converging condition, learning rate,
etc.) to make the learning update all the while instead of
converging" -- constant schedules give that always-adapting mode,
decaying schedules give convergence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "ExponentialDecay",
    "LinearDecay",
    "HarmonicDecay",
]


class Schedule(ABC):
    """Maps a non-negative step index to a parameter value."""

    @abstractmethod
    def value(self, step: int) -> float:
        """The parameter value at ``step`` (0-based)."""

    def __call__(self, step: int) -> float:
        return self.value(step)


class ConstantSchedule(Schedule):
    """Always the same value."""

    def __init__(self, constant: float) -> None:
        self.constant = float(constant)

    def value(self, step: int) -> float:
        return self.constant


class ExponentialDecay(Schedule):
    """``initial * decay**step``, floored at ``minimum``.

    The last ``(step, value)`` pair is memoised: training evaluates
    the schedule once per transition but the step only advances once
    per episode, so most calls repeat the previous step.  The memo is
    keyed on ``step`` alone -- mutating ``initial``/``decay`` after
    construction is not supported.
    """

    def __init__(self, initial: float, decay: float, minimum: float = 0.0) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.initial = float(initial)
        self.decay = float(decay)
        self.minimum = float(minimum)
        self._memo_step = -1
        self._memo_value = 0.0

    def value(self, step: int) -> float:
        if step == self._memo_step:
            return self._memo_value
        value = max(self.initial * self.decay**step, self.minimum)
        self._memo_step = step
        self._memo_value = value
        return value


class LinearDecay(Schedule):
    """Linear ramp from ``initial`` to ``final`` over ``span`` steps."""

    def __init__(self, initial: float, final: float, span: int) -> None:
        if span <= 0:
            raise ValueError("span must be positive")
        self.initial = float(initial)
        self.final = float(final)
        self.span = int(span)

    def value(self, step: int) -> float:
        if step >= self.span:
            return self.final
        fraction = step / self.span
        return self.initial + (self.final - self.initial) * fraction


class HarmonicDecay(Schedule):
    """``initial / (1 + step / half_life)`` -- the classic 1/t family.

    Satisfies the Robbins-Monro conditions (sum diverges, sum of
    squares converges), which guarantees tabular Q-learning
    convergence in the limit.
    """

    def __init__(self, initial: float, half_life: float = 10.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.initial = float(initial)
        self.half_life = float(half_life)

    def value(self, step: int) -> float:
        return self.initial / (1.0 + step / self.half_life)
