"""Behaviour policies over a :class:`~repro.rl.qtable.QTable`.

A policy's :meth:`select` returns ``(action, exploratory)``.  The
``exploratory`` flag matters for Watkins Q(λ): eligibility traces must
be cut after a non-greedy action, so the learner needs to know whether
the behaviour policy deviated from the greedy choice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.rl.qtable import QTable
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["Policy", "GreedyPolicy", "EpsilonGreedyPolicy", "SoftmaxPolicy"]

State = Hashable
Action = Hashable


class Policy(ABC):
    """Selects actions given a state and its available actions."""

    @abstractmethod
    def select(
        self,
        q: QTable,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Return ``(action, exploratory)`` for ``state``."""


class GreedyPolicy(Policy):
    """Always the argmax action; never exploratory."""

    def select(
        self,
        q: QTable,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        return q.best_action(state, actions), False


class EpsilonGreedyPolicy(Policy):
    """Greedy with probability 1-ε, uniform otherwise.

    ``epsilon`` may be a float or a :class:`Schedule` evaluated at the
    caller-provided ``step`` (the trainer passes the iteration index).
    A uniformly drawn action that happens to coincide with the greedy
    one is reported as non-exploratory -- Watkins traces only need to
    be cut when the *executed* action disagrees with the greedy one.
    """

    def __init__(self, epsilon) -> None:
        if isinstance(epsilon, Schedule):
            self.epsilon_schedule: Schedule = epsilon
        else:
            value = float(epsilon)
            if not 0.0 <= value <= 1.0:
                raise ValueError("epsilon must be in [0, 1]")
            self.epsilon_schedule = ConstantSchedule(value)
        # Constant ε (the common case) skips the schedule call on
        # every selection.
        self._eps_const = (
            self.epsilon_schedule.constant
            if type(self.epsilon_schedule) is ConstantSchedule
            else None
        )

    def select(
        self,
        q: QTable,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        if not actions:
            raise ValueError(f"no actions available in state {state!r}")
        greedy = q.best_action(state, actions)
        epsilon = self._eps_const
        if epsilon is None:
            epsilon = self.epsilon_schedule.value(step)
        if rng.random() < epsilon:
            choice = actions[int(rng.integers(len(actions)))]
            return choice, choice != greedy
        return greedy, False


class SoftmaxPolicy(Policy):
    """Boltzmann exploration: P(a) ∝ exp(Q(s,a)/τ).

    Temperature may be scheduled.  Numerically stabilised by
    subtracting the max Q before exponentiation.
    """

    def __init__(self, temperature) -> None:
        if isinstance(temperature, Schedule):
            self.temperature_schedule: Schedule = temperature
        else:
            value = float(temperature)
            if value <= 0:
                raise ValueError("temperature must be positive")
            self.temperature_schedule = ConstantSchedule(value)

    def select(
        self,
        q: QTable,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        raw, ordered = q.action_values_sorted(state, actions)
        values = np.asarray(raw, dtype=float)
        temperature = max(self.temperature_schedule.value(step), 1e-8)
        logits = (values - values.max()) / temperature
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        index = int(rng.choice(len(ordered), p=probabilities))
        choice = ordered[index]
        # First max in the shared repr order = q.best_action's greedy
        # choice, without paying a second sort.
        greedy = ordered[int(values.argmax())]
        return choice, choice != greedy
