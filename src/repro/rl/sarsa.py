"""SARSA(λ): the on-policy companion to Watkins Q(λ).

Provided for the ablation benches: on short deterministic routines
SARSA(λ) and Q(λ) converge to the same greedy policy, but their
learning curves differ under exploration -- a useful sanity check on
the paper's algorithm choice.

Update, per (s, a, r, s', a'):

    δ = r + γ · Q(s', a') − Q(s, a)      (0 target if s' terminal)
    e(s, a) <- visit;  Q += α δ e;  e <- γλ e
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.qtable import QTable
from repro.rl.schedules import ConstantSchedule, Schedule
from repro.rl.traces import EligibilityTraces, TraceKind

__all__ = ["SarsaLambdaLearner"]

State = Hashable
Action = Hashable


class SarsaLambdaLearner:
    """Tabular SARSA(λ) with replacing or accumulating traces."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        trace_decay: float = 0.7,
        policy: Optional[Policy] = None,
        trace_kind: TraceKind = TraceKind.REPLACING,
        initial_q: float = 0.0,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= trace_decay <= 1.0:
            raise ValueError("trace_decay must be in [0, 1]")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        self.discount = float(discount)
        self.trace_decay = float(trace_decay)
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q = QTable(initial_value=initial_q)
        self.traces = EligibilityTraces(kind=trace_kind)
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Reset traces at an episode boundary."""
        self.traces.reset()
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour-policy action for ``state``."""
        return self.policy.select(self.q, state, list(actions), rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """The current greedy action."""
        return self.q.best_action(state, list(actions))

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_action: Optional[Action],
        done: bool,
    ) -> float:
        """Apply one SARSA(λ) update; returns the TD error δ.

        ``next_action`` is the action the behaviour policy *will* take
        in ``next_state`` (ignored when ``done``).
        """
        if done:
            target = reward
        else:
            if next_action is None:
                raise ValueError("next_action is required for non-terminal updates")
            target = reward + self.discount * self.q.value(next_state, next_action)
        delta = target - self.q.value(state, action)
        self.traces.visit(state, action)
        alpha = self.learning_rate_schedule.value(self.updates)
        for (trace_state, trace_action), eligibility in self.traces.items():
            self.q.add(trace_state, trace_action, alpha * delta * eligibility)
        self.traces.decay(self.discount * self.trace_decay)
        if done:
            self.traces.reset()
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SarsaLambdaLearner(lambda={self.trace_decay}, "
            f"gamma={self.discount}, updates={self.updates})"
        )
