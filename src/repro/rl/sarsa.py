"""SARSA(λ): the on-policy companion to Watkins Q(λ).

Provided for the ablation benches: on short deterministic routines
SARSA(λ) and Q(λ) converge to the same greedy policy, but their
learning curves differ under exploration -- a useful sanity check on
the paper's algorithm choice.

Update, per (s, a, r, s', a'):

    δ = r + γ · Q(s', a') − Q(s, a)      (0 target if s' terminal)
    e(s, a) <- visit;  Q += α δ e;  e <- γλ e
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.dense import DenseQTable, DenseTraces, make_qtable, make_traces
from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.schedules import ConstantSchedule, Schedule
from repro.rl.traces import TraceKind

__all__ = ["SarsaLambdaLearner"]

State = Hashable
Action = Hashable


class SarsaLambdaLearner:
    """Tabular SARSA(λ) with replacing or accumulating traces."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        trace_decay: float = 0.7,
        policy: Optional[Policy] = None,
        trace_kind: TraceKind = TraceKind.REPLACING,
        initial_q: float = 0.0,
        q_backend: str = "dense",
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= trace_decay <= 1.0:
            raise ValueError("trace_decay must be in [0, 1]")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        # Constant learning rates (the common case) skip the schedule
        # call on every transition.
        self._alpha_const = (
            self.learning_rate_schedule.constant
            if type(self.learning_rate_schedule) is ConstantSchedule
            else None
        )
        self.discount = float(discount)
        self.trace_decay = float(trace_decay)
        # γλ, computed once -- the per-transition trace decay factor.
        self._glambda = self.discount * self.trace_decay
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q = make_qtable(q_backend, initial_q)
        self.traces = make_traces(self.q, trace_kind)
        # The fused dense update requires the table and traces to
        # share one index so interned ids mean the same thing in both.
        self._dense = (
            type(self.q) is DenseQTable
            and type(self.traces) is DenseTraces
            and self.traces.index is self.q.index
        )
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Reset traces at an episode boundary."""
        self.traces.reset()
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour-policy action for ``state``."""
        return self.policy.select(self.q, state, actions, rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """The current greedy action."""
        return self.q.best_action(state, actions)

    def greedy_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> Sequence[Action]:
        """Greedy action per state (batched argmax on the dense backend)."""
        return self.q.best_actions(states, actions)

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_action: Optional[Action],
        done: bool,
    ) -> float:
        """Apply one SARSA(λ) update; returns the TD error δ.

        ``next_action`` is the action the behaviour policy *will* take
        in ``next_state`` (ignored when ``done``).
        """
        alpha = self._alpha_const
        if alpha is None:
            alpha = self.learning_rate_schedule.value(self.updates)
        if not done and next_action is None:
            raise ValueError("next_action is required for non-terminal updates")
        if self._dense:
            # The SARSA(λ) update fused against the dense flat buffer
            # (see TDLambdaQLearner.observe): the bootstrap is a single
            # offset read and the trace visit/apply/decay run inline
            # over the active pairs in first-visit order, so the
            # arithmetic is exactly the sparse backend's.
            q = self.q
            traces = self.traces
            index = q.index
            sid = q._state_ids.get(state)
            if sid is None:
                sid = index.state_id(state)
            aid = q._action_ids.get(action)
            if aid is None:
                aid = index.action_id(action)
            next_sid = -1
            next_aid = -1
            if not done:
                next_sid = q._state_ids.get(next_state)
                if next_sid is None:
                    next_sid = index.state_id(next_state)
                next_aid = q._action_ids.get(next_action)
                if next_aid is None:
                    next_aid = index.action_id(next_action)
            if (
                sid >= q._rows
                or next_sid >= q._rows
                or aid >= q._cols
                or next_aid >= q._cols
            ):
                q._grow()
            if q._frozen:
                q._thaw()
            cols = q._cols
            flat = q._flat
            written = q._written
            if done:
                target = reward
            else:
                target = reward + self.discount * flat[next_sid * cols + next_aid]
            delta = target - flat[sid * cols + aid]
            key = (sid, aid)
            slots = traces._slots
            pos = slots.get(key)
            if pos is None:
                slots[key] = len(traces._pairs)
                traces._pairs.append(key)
                traces._e.append(1.0)
            elif traces.kind is TraceKind.ACCUMULATING:
                traces._e[pos] += 1.0
            else:
                traces._e[pos] = 1.0
            coef = alpha * delta
            gl = self._glambda
            new_e = []
            push = new_e.append
            for (psid, paid), ev in zip(traces._pairs, traces._e):
                poff = psid * cols + paid
                flat[poff] = flat[poff] + coef * ev
                written[poff] = 1
                push(ev * gl)
            if gl == 0.0:
                traces.reset()
            else:
                traces._e = new_e
                if min(new_e) < traces.cutoff:
                    traces._compact()
            q._array = None
            q.version += 1
        else:
            if done:
                target = reward
            else:
                target = reward + self.discount * self.q.value(
                    next_state, next_action
                )
            delta = target - self.q.value(state, action)
            self.traces.visit(state, action)
            self.traces.apply_update(self.q, alpha * delta)
            self.traces.decay(self.discount * self.trace_decay)
        if done:
            self.traces.reset()
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SarsaLambdaLearner(lambda={self.trace_decay}, "
            f"gamma={self.discount}, updates={self.updates})"
        )
