"""Indexed dense backend for the tabular RL stack.

The sparse :class:`~repro.rl.qtable.QTable` pays, on every argmax, a
fresh ``sorted(actions, key=repr)`` (string formatting per action) and
one dict probe per action with tuple-of-namedtuple hashing -- and the
trainer probes the greedy policy over the whole routine every
iteration, so that cost dominates every training-bound experiment
cell.  This module replaces the data layout, not the algorithm:

* :class:`StateActionIndex` interns states and actions to dense
  integer ids and computes each action set's repr-sort order **once**,
  preserving the sparse backend's deterministic tie-breaking exactly;
* :class:`DenseQTable` stores Q row-major in one flat buffer indexed
  by ``state_id * stride + action_id``, with a NumPy ``[n_states,
  n_actions]`` mirror behind :meth:`as_array` that services the
  vectorized argmax paths once a batch is large enough to beat the
  interpreter (``_VECTOR_MIN_ELEMENTS``).  At routine scale (tens of
  states, a handful of actions) the flat scalar path wins: a Python
  list index costs ~0.05us against ~0.36us for a NumPy scalar
  ``arr[i, j] += x``, measured on this container -- the dense win
  comes from interning away repr-sorting and dict hashing, and the
  NumPy paths take over as the table grows;
* :class:`DenseTraces` keeps the active eligibility traces as flat
  id-pair vectors so a TD(λ) sweep applies ``Q[active] += coef *
  e[active]`` over precomputed offsets with no hashing and no
  snapshot copy.

The contract, in the spirit of the sensing fast path: training through
this backend is **byte-identical** to the sparse backend -- the same
IEEE-754 operations in an order whose regrouping is value-exact
(elementwise multiply/add per independent pair, first-max argmax over
the same repr order), so Q-values, learning curves, convergence
iterations, RNG draw sequences and cached training documents come out
bit-for-bit equal.  ``tests/test_rl_dense.py`` pins that down per
learner, trace kind and seed.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.qtable import QTable
from repro.rl.traces import EligibilityTraces, TraceKind

__all__ = [
    "StateActionIndex",
    "DenseQTable",
    "DenseTraces",
    "make_qtable",
    "make_traces",
]

State = Hashable
Action = Hashable

#: Identity-cache entries kept before the cache is dropped wholesale
#: (guards against callers that build a fresh actions tuple per call).
_IDENTITY_CACHE_LIMIT = 256

#: Batched argmax switches from the scalar loop to the NumPy mirror
#: when ``len(states) * len(actions)`` reaches this.  Below it the
#: loop is faster (measured crossover ~40 elements on equal terms,
#: but the mirror may also need an O(table) rebuild when dirty, so
#: the threshold is set where the rebuild amortizes too).
_VECTOR_MIN_ELEMENTS = 2048


def _make_gather(offsets: List[int]):
    """A C-speed gather: ``flat -> (flat[off] for off in offsets)``.

    ``operator.itemgetter`` replaces the per-element interpreter loop
    with one C call; the single-offset case is wrapped so callers
    always get a tuple back.
    """
    if len(offsets) == 1:
        def gather(seq, _off=offsets[0]):
            return (seq[_off],)

        return gather
    return itemgetter(*offsets)


class _ActionView:
    """One interned action sequence with its precomputed orders."""

    __slots__ = (
        "actions",
        "ids",
        "ids_list",
        "sorted_ids",
        "sorted_ids_list",
        "sorted_actions",
        "max_id",
    )

    def __init__(
        self,
        actions: Tuple[Action, ...],
        ids_list: List[int],
        sorted_ids_list: List[int],
        sorted_actions: Tuple[Action, ...],
    ) -> None:
        self.actions = actions
        self.ids_list = ids_list
        self.sorted_ids_list = sorted_ids_list
        self.sorted_actions = sorted_actions
        self.ids = np.array(ids_list, dtype=np.intp)
        self.sorted_ids = np.array(sorted_ids_list, dtype=np.intp)
        self.max_id = max(ids_list) if ids_list else -1


class StateActionIndex:
    """Interns states/actions to dense ids; append-only, shareable.

    The repr-sort order of an action sequence -- the sparse backend's
    tie-breaking order -- is computed once per distinct sequence and
    cached, first by tuple identity (the trainers pass the same
    actions tuple on every call) and then by value.
    """

    __slots__ = (
        "states",
        "actions",
        "_state_ids",
        "_action_ids",
        "_views",
        "_views_by_identity",
    )

    def __init__(self) -> None:
        #: id -> state, in interning order.
        self.states: List[State] = []
        #: id -> action, in interning order.
        self.actions: List[Action] = []
        self._state_ids: Dict[State, int] = {}
        self._action_ids: Dict[Action, int] = {}
        self._views: Dict[Tuple[Action, ...], _ActionView] = {}
        self._views_by_identity: Dict[int, Tuple[Sequence[Action], _ActionView]] = {}

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_actions(self) -> int:
        return len(self.actions)

    def state_id(self, state: State) -> int:
        """The dense id of ``state``, interning it on first sight."""
        sid = self._state_ids.get(state)
        if sid is None:
            sid = len(self.states)
            self._state_ids[state] = sid
            self.states.append(state)
        return sid

    def action_id(self, action: Action) -> int:
        """The dense id of ``action``, interning it on first sight."""
        aid = self._action_ids.get(action)
        if aid is None:
            aid = len(self.actions)
            self._action_ids[action] = aid
            self.actions.append(action)
        return aid

    def view(self, actions: Sequence[Action]) -> _ActionView:
        """The cached :class:`_ActionView` for ``actions``.

        Tuples are additionally cached by object identity (with a
        strong reference, so the id cannot be recycled); mutable
        sequences always take the value-keyed path.
        """
        if type(actions) is tuple:
            cached = self._views_by_identity.get(id(actions))
            if cached is not None and cached[0] is actions:
                return cached[1]
        key = tuple(actions)
        view = self._views.get(key)
        if view is None:
            ids = [self.action_id(a) for a in key]
            # Stable sort by repr = the sparse backend's tie-break order.
            order = sorted(range(len(key)), key=lambda i: repr(key[i]))
            sorted_ids = [ids[i] for i in order]
            sorted_actions = tuple(key[i] for i in order)
            view = _ActionView(key, ids, sorted_ids, sorted_actions)
            self._views[key] = view
        if type(actions) is tuple:
            if len(self._views_by_identity) >= _IDENTITY_CACHE_LIMIT:
                self._views_by_identity.clear()
            self._views_by_identity[id(actions)] = (actions, view)
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateActionIndex(states={len(self.states)}, "
            f"actions={len(self.actions)})"
        )


class DenseQTable:
    """Dense ``(state, action) -> value`` table over indexed storage.

    API-compatible with :class:`~repro.rl.qtable.QTable` (default
    initial value, repr-order tie-breaking, loud empty-action errors,
    ``known_pairs`` over the written support).  Values live row-major
    in one flat buffer (``offset = state_id * stride + action_id``);
    :meth:`as_array` exposes the same data as a NumPy matrix, rebuilt
    lazily after writes, which :meth:`best_actions` uses for large
    batches.  Tables may share one :class:`StateActionIndex` (Double
    Q-learning does).
    """

    __slots__ = (
        "initial_value",
        "index",
        "version",
        "_flat",
        "_written",
        "_rows",
        "_cols",
        "_array",
        "_state_ids",
        "_action_ids",
        "_last_actions",
        "_last_view",
        "_gather",
        "_g0_view",
        "_g0",
        "_g1_view",
        "_g1",
        "_grow_count",
        "_frozen",
    )

    def __init__(
        self,
        initial_value: float = 0.0,
        index: Optional[StateActionIndex] = None,
    ) -> None:
        self.initial_value = float(initial_value)
        self.index = index if index is not None else StateActionIndex()
        #: Monotone write counter (see :attr:`QTable.version`); the
        #: memoized greedy readouts of :mod:`repro.rl.batch`
        #: revalidate against it.
        self.version = 0
        self._flat: List[float] = []
        self._written = bytearray()
        self._rows = 0
        self._cols = 0
        self._array: Optional[np.ndarray] = None
        # Hot-path shortcuts: the index's intern dicts are mutated in
        # place and never replaced, so the table can probe them with
        # one dict.get and fall back to the interning method only on
        # first sight.  ``_last_actions`` is a one-entry view cache --
        # the trainers pass the same actions tuple on every call.
        self._state_ids = self.index._state_ids
        self._action_ids = self.index._action_ids
        self._last_actions: Optional[Tuple[Action, ...]] = None
        self._last_view: Optional[_ActionView] = None
        # (state_id, view, sorted?) -> itemgetter over flat offsets.
        # Offsets bake in the stride, so _grow clears this in place
        # (hot paths hold a reference to the dict itself) and bumps
        # ``_grow_count`` so externally cached offsets can revalidate.
        self._gather: Dict[Tuple[int, _ActionView, int], object] = {}
        # Single-view fast lanes: almost every hot call uses one
        # action view, so the per-row gathers for that view live in
        # int-keyed dicts (``_g0`` given order, ``_g1`` repr order),
        # reset when the view changes or the table grows.
        self._g0_view: Optional[_ActionView] = None
        self._g0: Dict[int, object] = {}
        self._g1_view: Optional[_ActionView] = None
        self._g1: Dict[int, object] = {}
        self._grow_count = 0
        # Frozen tables serve reads straight out of an externally
        # owned buffer (an mmap'd sidecar or a shared-memory segment,
        # see repro.planning.binary); the first write thaws them into
        # private storage (copy-on-write).
        self._frozen = False

    @classmethod
    def from_frozen_buffers(
        cls,
        initial_value: float,
        states: Sequence[State],
        actions: Sequence[Action],
        q2d: np.ndarray,
        written: np.ndarray,
    ) -> "DenseQTable":
        """A read-only table served directly over external buffers.

        ``q2d`` is the float64 ``(n_states, n_actions)`` matrix and
        ``written`` its flat uint8 support mask; ``states`` and
        ``actions`` are interned in buffer order, so row/column ids
        line up with the matrix exactly.  Reads never copy; the first
        write (or any interning that outgrows the buffers) thaws the
        table into private storage via :meth:`_thaw`.
        """
        table = cls(float(initial_value))
        index = table.index
        for state in states:
            index.state_id(state)
        for action in actions:
            index.action_id(action)
        rows, cols = q2d.shape
        if rows != len(index.states) or cols != len(index.actions):
            raise ValueError(
                "frozen buffer shape does not match the interned tables"
            )
        if written.shape != (rows * cols,):
            raise ValueError("written mask does not match the Q matrix")
        table._flat = q2d.reshape(-1)
        table._written = written
        table._rows = rows
        table._cols = cols
        table._frozen = True
        return table

    def _thaw(self) -> None:
        """Copy-on-write: materialize private, mutable buffers.

        The declared entry point for writes to an arena-backed table
        -- every element-wise mutation of ``_flat``/``_written`` must
        be preceded by this guard (the analyzer's PAR003 rule enforces
        it project-wide).  Idempotent and cheap to probe: the hot
        paths pay one attribute test when the table is already
        private.
        """
        if not self._frozen:
            return
        self._flat = [float(value) for value in self._flat]
        self._written = bytearray(bytes(self._written))
        self._array = None
        self._frozen = False

    def _view(self, actions: Sequence[Action]) -> _ActionView:
        """The action view, via the one-entry identity cache."""
        if actions is self._last_actions:
            return self._last_view
        view = self.index.view(actions)
        if type(actions) is tuple:
            self._last_actions = actions
            self._last_view = view
        return view

    # ------------------------------------------------------------------
    # storage

    def _grow(self) -> None:
        """Grow the buffers to cover everything the index has interned."""
        if self._frozen:
            self._thaw()
        need_rows = len(self.index.states)
        need_cols = len(self.index.actions)
        rows, cols = self._rows, self._cols
        new_rows = max(rows, 16)
        while new_rows < need_rows:
            new_rows *= 2
        new_cols = max(cols, 8)
        while new_cols < need_cols:
            new_cols *= 2
        if new_rows == rows and new_cols == cols:
            return
        flat = [self.initial_value] * (new_rows * new_cols)
        written = bytearray(new_rows * new_cols)
        old_flat = self._flat
        old_written = self._written
        for r in range(rows):
            src = r * cols
            dst = r * new_cols
            flat[dst:dst + cols] = old_flat[src:src + cols]
            written[dst:dst + cols] = old_written[src:src + cols]
        self._flat = flat
        self._written = written
        self._rows = new_rows
        self._cols = new_cols
        self._array = None
        self._gather.clear()
        self._g0_view = None
        self._g0 = {}
        self._g1_view = None
        self._g1 = {}
        self._grow_count += 1

    def _ensure_capacity(self) -> None:
        """Cheap guard: grow if the index outgrew the buffers."""
        if (
            len(self.index.states) > self._rows
            or len(self.index.actions) > self._cols
        ):
            self._grow()

    def as_array(self) -> np.ndarray:
        """The NumPy ``[rows, cols]`` mirror of the flat storage.

        Rebuilt lazily after scalar writes; do not mutate it -- writes
        go through :meth:`set`/:meth:`add` so both layouts agree.
        """
        arr = self._array
        if arr is None:
            arr = np.asarray(self._flat, dtype=np.float64).reshape(
                self._rows, self._cols
            )
            self._array = arr
        return arr

    # ------------------------------------------------------------------
    # QTable-compatible API

    def value(self, state: State, action: Action) -> float:
        """Q(s, a), defaulting to the initial value for unseen pairs."""
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        aid = self._action_ids.get(action)
        if aid is None:
            aid = self.index.action_id(action)
        if sid >= self._rows or aid >= self._cols:
            self._grow()
        return self._flat[sid * self._cols + aid]

    def set(self, state: State, action: Action, value: float) -> None:
        """Assign Q(s, a)."""
        sid = self.index.state_id(state)
        aid = self.index.action_id(action)
        if sid >= self._rows or aid >= self._cols:
            self._grow()
        if self._frozen:
            self._thaw()
        off = sid * self._cols + aid
        self._flat[off] = float(value)
        self._written[off] = 1
        self._array = None
        self.version += 1

    def add(self, state: State, action: Action, delta: float) -> None:
        """In-place ``Q(s, a) += delta``."""
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        aid = self._action_ids.get(action)
        if aid is None:
            aid = self.index.action_id(action)
        if sid >= self._rows or aid >= self._cols:
            self._grow()
        if self._frozen:
            self._thaw()
        off = sid * self._cols + aid
        flat = self._flat
        flat[off] = flat[off] + delta
        self._written[off] = 1
        self._array = None
        self.version += 1

    def best_action(self, state: State, actions: Sequence[Action]) -> Action:
        """Argmax over ``actions``; first maximum in repr order wins.

        Raises ``ValueError`` on an empty action sequence -- a state
        with no actions is a modelling bug we want loud.
        """
        view = self._view(actions)
        sorted_ids = view.sorted_ids_list
        if not sorted_ids:
            raise ValueError(f"no actions available in state {state!r}")
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        if sid >= self._rows or view.max_id >= self._cols:
            self._grow()
        if view is self._g1_view:
            g = self._g1.get(sid)
        else:
            self._g1_view = view
            self._g1 = {}
            g = None
        if g is None:
            base = sid * self._cols
            g = _make_gather([base + a for a in sorted_ids])
            self._g1[sid] = g
        # index(max(values)) is the first maximum in repr order --
        # exactly the sparse tie-break -- with every scan in C.
        values = g(self._flat)
        return view.sorted_actions[values.index(max(values))]

    def max_value(self, state: State, actions: Sequence[Action]) -> float:
        """max_a Q(s, a) over the given actions."""
        view = self._view(actions)
        ids = view.ids_list
        if not ids:
            raise ValueError(f"no actions available in state {state!r}")
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        if sid >= self._rows or view.max_id >= self._cols:
            self._grow()
        if view is self._g0_view:
            g = self._g0.get(sid)
        else:
            self._g0_view = view
            self._g0 = {}
            g = None
        if g is None:
            base = sid * self._cols
            g = _make_gather([base + aid for aid in ids])
            self._g0[sid] = g
        return max(g(self._flat))

    def greedy_policy(
        self, states_actions: Dict[State, List[Action]]
    ) -> Dict[State, Action]:
        """The greedy action for every state in ``states_actions``."""
        return {
            state: self.best_action(state, actions)
            for state, actions in states_actions.items()
        }

    def known_pairs(self) -> List[Tuple[State, Action]]:
        """All (state, action) pairs ever written (unordered)."""
        states = self.index.states
        actions = self.index.actions
        cols = self._cols
        return [
            (states[off // cols], actions[off % cols])
            for off, flag in enumerate(self._written)
            if flag
        ]

    def copy(self) -> "DenseQTable":
        """An independent snapshot (the append-only index is shared)."""
        clone = DenseQTable(self.initial_value, index=self.index)
        clone._flat = self._flat[:]
        clone._written = self._written[:]
        clone._rows = self._rows
        clone._cols = self._cols
        # Slicing a frozen table's ndarray buffers returns views, so
        # the clone stays frozen and thaws independently on write.
        clone._frozen = self._frozen
        return clone

    def max_abs_difference(self, other) -> float:
        """sup-norm distance to ``other`` (sparse or dense) over either
        table's written support."""
        keys = set(self.known_pairs()) | set(other.known_pairs())
        if not keys:
            return 0.0
        return max(
            abs(self.value(s, a) - other.value(s, a))
            for s, a in sorted(keys, key=repr)
        )

    def __len__(self) -> int:
        return sum(self._written)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DenseQTable(entries={len(self)}, init={self.initial_value})"
        )

    # ------------------------------------------------------------------
    # batched extensions

    def action_values(
        self, state: State, actions: Sequence[Action]
    ) -> List[float]:
        """``[Q(s, a) for a in actions]`` in the given order."""
        view = self._view(actions)
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        if sid >= self._rows or view.max_id >= self._cols:
            self._grow()
        key = (sid, view, 0)
        g = self._gather.get(key)
        if g is None:
            base = sid * self._cols
            g = _make_gather([base + aid for aid in view.ids_list])
            self._gather[key] = g
        return list(g(self._flat))

    def action_values_sorted(
        self, state: State, actions: Sequence[Action]
    ) -> Tuple[List[float], Tuple[Action, ...]]:
        """(values, actions), both in the deterministic repr order."""
        view = self._view(actions)
        sorted_ids = view.sorted_ids_list
        if not sorted_ids:
            raise ValueError(f"no actions available in state {state!r}")
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        if sid >= self._rows or view.max_id >= self._cols:
            self._grow()
        key = (sid, view, 1)
        g = self._gather.get(key)
        if g is None:
            base = sid * self._cols
            g = _make_gather([base + aid for aid in sorted_ids])
            self._gather[key] = g
        return list(g(self._flat)), view.sorted_actions

    def best_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> List[Action]:
        """The greedy action for every state in ``states``.

        One batched NumPy argmax over the mirror for large batches;
        a scalar first-max loop (the same comparison sequence, so the
        same ties) below ``_VECTOR_MIN_ELEMENTS``.
        """
        view = self._view(actions)
        sorted_ids = view.sorted_ids_list
        if not sorted_ids:
            raise ValueError("no actions available")
        if not states:
            return []
        ids_get = self._state_ids.get
        intern = self.index.state_id
        sids = [ids_get(s) for s in states]
        if None in sids:
            sids = [intern(s) for s in states]
        if max(sids) >= self._rows or view.max_id >= self._cols:
            self._grow()
        sorted_actions = view.sorted_actions
        if len(sids) * len(sorted_ids) >= _VECTOR_MIN_ELEMENTS:
            block = self.as_array()[np.asarray(sids, dtype=np.intp)]
            block = block[:, view.sorted_ids]
            return [
                sorted_actions[i] for i in block.argmax(axis=1).tolist()
            ]
        flat = self._flat
        cols = self._cols
        gathers = self._gather
        out = []
        for sid in sids:
            key = (sid, view, 1)
            g = gathers.get(key)
            if g is None:
                base = sid * cols
                g = _make_gather([base + a for a in sorted_ids])
                gathers[key] = g
            values = g(flat)
            out.append(sorted_actions[values.index(max(values))])
        return out

    def argmax_prober(self, states: Sequence[State], actions: Sequence[Action]):
        """A prebound, repeatable batched argmax over fixed inputs.

        The trainer probes the same routine states with the same
        action set every iteration; the returned zero-argument
        callable bakes their flat offsets in (revalidating against
        ``_grow_count``) so the per-call work is one C gather, one
        ``max`` and one ``index`` per state.
        """
        return _ArgmaxProber(self, states, actions)


class _ArgmaxProber:
    """Batched first-max argmax with prebound flat offsets.

    Built by :meth:`DenseQTable.argmax_prober` for a fixed state and
    action sequence; tie-breaking matches :meth:`DenseQTable.
    best_action` exactly (first maximum in repr order).  Probes large
    enough to beat the interpreter (``_VECTOR_MIN_ELEMENTS``) are
    served by one row-indexed argmax over the NumPy mirror instead of
    per-state itemgetter chains; ``np.argmax`` also returns the first
    maximum, so the ties break identically.
    """

    __slots__ = (
        "_q",
        "_sids",
        "_max_sid",
        "_sid_arr",
        "_vector",
        "_view",
        "_gathers",
        "_grows",
    )

    def __init__(
        self,
        q: DenseQTable,
        states: Sequence[State],
        actions: Sequence[Action],
    ) -> None:
        view = q._view(actions)
        if not view.sorted_ids_list:
            raise ValueError("no actions available")
        index = q.index
        self._q = q
        self._view = view
        self._sids = [index.state_id(s) for s in states]
        self._max_sid = max(self._sids) if self._sids else -1
        self._sid_arr = np.array(self._sids, dtype=np.intp)
        self._vector = (
            len(self._sids) * len(view.sorted_ids_list)
            >= _VECTOR_MIN_ELEMENTS
        )
        self._gathers: List[object] = []
        self._grows = -1

    def _ensure_capacity(self) -> None:
        q = self._q
        if self._max_sid >= q._rows or self._view.max_id >= q._cols:
            q._grow()

    def _rebuild(self) -> None:
        q = self._q
        self._ensure_capacity()
        cols = q._cols
        ids = self._view.sorted_ids_list
        self._gathers = [
            _make_gather([sid * cols + a for a in ids])
            for sid in self._sids
        ]
        self._grows = q._grow_count

    def __call__(self) -> List[Action]:
        q = self._q
        view = self._view
        if self._vector:
            self._ensure_capacity()
            block = q.as_array()[self._sid_arr][:, view.sorted_ids]
            sorted_actions = view.sorted_actions
            return [
                sorted_actions[i] for i in block.argmax(axis=1).tolist()
            ]
        if self._grows != q._grow_count:
            self._rebuild()
        flat = q._flat
        sorted_actions = view.sorted_actions
        out = []
        for g in self._gathers:
            values = g(flat)
            out.append(sorted_actions[values.index(max(values))])
        return out


class DenseTraces:
    """Eligibility traces over interned pair ids, as flat vectors.

    Behaviour-compatible with
    :class:`~repro.rl.traces.EligibilityTraces` (visit rules, decay,
    cutoff drop, snapshot ``items()``), with the whole TD(λ) sweep
    exposed as :meth:`apply_update`: ``Q[active] += coef * e[active]``
    over precomputed flat offsets, no hashing, no snapshot copy.
    """

    __slots__ = (
        "kind",
        "cutoff",
        "index",
        "_slots",
        "_pairs",
        "_e",
        "_state_ids",
        "_action_ids",
    )

    def __init__(
        self,
        index: Optional[StateActionIndex] = None,
        kind: TraceKind = TraceKind.REPLACING,
        cutoff: float = 1e-4,
    ) -> None:
        if cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        self.kind = kind
        self.cutoff = cutoff
        self.index = index if index is not None else StateActionIndex()
        #: (state_id, action_id) -> position in the parallel vectors.
        self._slots: Dict[Tuple[int, int], int] = {}
        self._pairs: List[Tuple[int, int]] = []
        self._e: List[float] = []
        # Same in-place intern-dict shortcut as DenseQTable.
        self._state_ids = self.index._state_ids
        self._action_ids = self.index._action_ids

    def visit(self, state: State, action: Action) -> None:
        """Mark (s, a) as just visited."""
        sid = self._state_ids.get(state)
        if sid is None:
            sid = self.index.state_id(state)
        aid = self._action_ids.get(action)
        if aid is None:
            aid = self.index.action_id(action)
        key = (sid, aid)
        pos = self._slots.get(key)
        if pos is None:
            self._slots[key] = len(self._pairs)
            self._pairs.append(key)
            self._e.append(1.0)
        elif self.kind is TraceKind.ACCUMULATING:
            self._e[pos] += 1.0
        else:
            self._e[pos] = 1.0

    def decay(self, factor: float) -> None:
        """Multiply every trace by ``factor`` (= γλ), dropping tiny ones."""
        if factor == 0.0:
            self.reset()
            return
        old = self._e
        if not old:
            return
        e = [v * factor for v in old]
        self._e = e
        if min(e) < self.cutoff:
            self._compact()

    def _compact(self) -> None:
        """Drop traces below the cutoff, preserving insertion order."""
        e = self._e
        cutoff = self.cutoff
        pairs = self._pairs
        new_slots: Dict[Tuple[int, int], int] = {}
        new_pairs: List[Tuple[int, int]] = []
        new_e: List[float] = []
        for i in range(len(e)):
            if e[i] >= cutoff:
                new_slots[pairs[i]] = len(new_pairs)
                new_pairs.append(pairs[i])
                new_e.append(e[i])
        self._slots = new_slots
        self._pairs = new_pairs
        self._e = new_e

    def get(self, state: State, action: Action) -> float:
        """Current trace of (s, a) (0.0 if inactive)."""
        key = (self.index.state_id(state), self.index.action_id(action))
        pos = self._slots.get(key)
        return self._e[pos] if pos is not None else 0.0

    def reset(self) -> None:
        """Clear all traces (start of episode, or Watkins cut)."""
        self._slots = {}
        self._pairs = []
        self._e = []

    def items(self) -> Iterator[Tuple[Tuple[State, Action], float]]:
        """Iterate over a snapshot of active (key, trace) pairs."""
        states = self.index.states
        actions = self.index.actions
        return iter(
            [
                ((states[sid], actions[aid]), self._e[i])
                for i, (sid, aid) in enumerate(self._pairs)
            ]
        )

    def apply_update(self, q, coef: float) -> None:
        """``Q[pair] += coef * e[pair]`` for every active pair.

        Straight into the flat buffer when ``q`` is a
        :class:`DenseQTable` on the same index; a plain loop through
        ``q.add`` otherwise.  Elementwise multiply-then-add per
        independent pair, in insertion (first-visit) order --
        bit-identical to the sparse backend's per-pair arithmetic.
        """
        pairs = self._pairs
        if not pairs:
            return
        e = self._e
        if type(q) is DenseQTable and q.index is self.index:
            q._ensure_capacity()
            if q._frozen:
                q._thaw()
            flat = q._flat
            written = q._written
            cols = q._cols
            for i, (sid, aid) in enumerate(pairs):
                off = sid * cols + aid
                flat[off] = flat[off] + coef * e[i]
                written[off] = 1
            q._array = None
            q.version += 1
            return
        states = self.index.states
        actions = self.index.actions
        for i, (sid, aid) in enumerate(pairs):
            q.add(states[sid], actions[aid], coef * e[i])

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseTraces({self.kind.value}, active={len(self._pairs)})"


# ---------------------------------------------------------------------------
# backend selection


def make_qtable(
    backend: str,
    initial_value: float = 0.0,
    index: Optional[StateActionIndex] = None,
):
    """A Q-table of the requested backend (``"dense"`` | ``"sparse"``)."""
    if backend == "dense":
        return DenseQTable(initial_value, index=index)
    if backend == "sparse":
        return QTable(initial_value)
    raise ValueError(f"unknown q_backend {backend!r}")


def make_traces(q, kind: TraceKind = TraceKind.REPLACING):
    """Eligibility traces matching the backend of ``q``."""
    if isinstance(q, DenseQTable):
        return DenseTraces(index=q.index, kind=kind)
    return EligibilityTraces(kind=kind)
