"""TD(λ) Q-learning -- the paper's planning algorithm.

This is Watkins' Q(λ) [Watkins 1989; Sutton & Barto 1998, §7.6]: plain
one-step Q-learning augmented with eligibility traces that are *cut*
whenever the behaviour policy takes an exploratory (non-greedy)
action, preserving the off-policy convergence guarantee.

Update, per observed transition (s, a, r, s'):

    δ  = r + γ · max_a' Q(s', a') − Q(s, a)          (0 target if s' terminal)

* greedy a:       e(s, a) <- visit;  Q(x, u) += α δ e(x, u) for all
  active traces;  e <- γλ e
* exploratory a:  Q(s, a) += α δ only, then e <- 0 (the *strict* cut:
  an off-target action's TD error must not be credited to earlier
  pairs, or a large negative δ from a bad action can contaminate the
  values of correct actions visited earlier in the episode)

The learner is deliberately environment-agnostic: callers feed it
transitions (online from the event bus, or offline from logged routine
episodes) and query the greedy action.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.dense import (
    DenseQTable,
    DenseTraces,
    _make_gather,
    make_qtable,
    make_traces,
)
from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.schedules import ConstantSchedule, Schedule
from repro.rl.traces import TraceKind

__all__ = ["TDLambdaQLearner"]

State = Hashable
Action = Hashable


class TDLambdaQLearner:
    """Watkins Q(λ) over a tabular Q function."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        trace_decay: float = 0.7,
        policy: Optional[Policy] = None,
        trace_kind: TraceKind = TraceKind.REPLACING,
        initial_q: float = 0.0,
        q_backend: str = "dense",
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= trace_decay <= 1.0:
            raise ValueError("trace_decay must be in [0, 1]")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        # Constant learning rates (the common case) skip the schedule
        # call on every transition.
        self._alpha_const = (
            self.learning_rate_schedule.constant
            if type(self.learning_rate_schedule) is ConstantSchedule
            else None
        )
        self.discount = float(discount)
        self.trace_decay = float(trace_decay)
        # γλ, computed once -- the per-transition trace decay factor.
        self._glambda = self.discount * self.trace_decay
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q = make_qtable(q_backend, initial_q)
        self.traces = make_traces(self.q, trace_kind)
        # The fused dense update requires the table and traces to
        # share one index so interned ids mean the same thing in both.
        self._dense = (
            type(self.q) is DenseQTable
            and type(self.traces) is DenseTraces
            and self.traces.index is self.q.index
        )
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Reset traces at an episode boundary."""
        self.traces.reset()
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour-policy action for ``state``; see Policy.select."""
        return self.policy.select(self.q, state, actions, rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """The current greedy (target-policy) action."""
        return self.q.best_action(state, actions)

    def greedy_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> Sequence[Action]:
        """Greedy action per state (batched argmax on the dense backend)."""
        return self.q.best_actions(states, actions)

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        exploratory: bool = False,
    ) -> float:
        """Apply one Watkins Q(λ) update; returns the TD error δ.

        ``exploratory`` must be True when ``action`` deviated from
        the target (greedy) policy.  Such updates touch only the
        executed pair and reset the traces (strict Watkins cut).
        """
        alpha = self._alpha_const
        if alpha is None:
            alpha = self.learning_rate_schedule.value(self.updates)
        if self._dense:
            # The Watkins update fused against the dense flat buffer:
            # each state/action interned once, one capacity guard, the
            # trace visit/update applied inline.  The arithmetic (max
            # over given-order Python floats, per-pair multiply-then-
            # add in first-visit order) is exactly the sparse
            # backend's, so both paths are bit-identical.
            q = self.q
            traces = self.traces
            index = q.index
            sid = q._state_ids.get(state)
            if sid is None:
                sid = index.state_id(state)
            aid = q._action_ids.get(action)
            if aid is None:
                aid = index.action_id(action)
            view = None
            next_sid = -1
            if not done:
                next_sid = q._state_ids.get(next_state)
                if next_sid is None:
                    next_sid = index.state_id(next_state)
                view = q._view(
                    next_actions
                    if type(next_actions) is tuple
                    else tuple(next_actions)
                )
            if (
                sid >= q._rows
                or next_sid >= q._rows
                or aid >= q._cols
                or (view is not None and view.max_id >= q._cols)
            ):
                q._grow()
            if q._frozen:
                q._thaw()
            cols = q._cols
            flat = q._flat
            written = q._written
            if done:
                target = reward
            else:
                ids = view.ids_list
                if not ids:
                    raise ValueError(
                        f"no actions available in state {next_state!r}"
                    )
                if view is q._g0_view:
                    g = q._g0.get(next_sid)
                else:
                    q._g0_view = view
                    q._g0 = {}
                    g = None
                if g is None:
                    base = next_sid * cols
                    g = _make_gather([base + a for a in ids])
                    q._g0[next_sid] = g
                target = reward + self.discount * max(g(flat))
            off = sid * cols + aid
            delta = target - flat[off]
            if exploratory:
                flat[off] = flat[off] + alpha * delta
                written[off] = 1
                traces.reset()
            else:
                key = (sid, aid)
                slots = traces._slots
                pos = slots.get(key)
                if pos is None:
                    slots[key] = len(traces._pairs)
                    traces._pairs.append(key)
                    traces._e.append(1.0)
                elif traces.kind is TraceKind.ACCUMULATING:
                    traces._e[pos] += 1.0
                else:
                    traces._e[pos] = 1.0
                # Apply and decay fused into one pass over the active
                # pairs: Q[pair] += coef*e (same per-pair arithmetic
                # and order as traces.apply_update) while building the
                # decayed trace vector (same multiply as traces.decay).
                coef = alpha * delta
                gl = self._glambda
                new_e = []
                push = new_e.append
                for (psid, paid), ev in zip(traces._pairs, traces._e):
                    poff = psid * cols + paid
                    flat[poff] = flat[poff] + coef * ev
                    written[poff] = 1
                    push(ev * gl)
                if gl == 0.0:
                    traces.reset()
                else:
                    traces._e = new_e
                    if min(new_e) < traces.cutoff:
                        traces._compact()
            q._array = None
            q.version += 1
        else:
            if done:
                target = reward
            else:
                target = reward + self.discount * self.q.max_value(
                    next_state, next_actions
                )
            delta = target - self.q.value(state, action)
            if exploratory:
                self.q.add(state, action, alpha * delta)
                self.traces.reset()
            else:
                self.traces.visit(state, action)
                self.traces.apply_update(self.q, alpha * delta)
                self.traces.decay(self.discount * self.trace_decay)
        if done:
            self.traces.reset()
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TDLambdaQLearner(lambda={self.trace_decay}, "
            f"gamma={self.discount}, updates={self.updates})"
        )
