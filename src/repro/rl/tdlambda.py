"""TD(λ) Q-learning -- the paper's planning algorithm.

This is Watkins' Q(λ) [Watkins 1989; Sutton & Barto 1998, §7.6]: plain
one-step Q-learning augmented with eligibility traces that are *cut*
whenever the behaviour policy takes an exploratory (non-greedy)
action, preserving the off-policy convergence guarantee.

Update, per observed transition (s, a, r, s'):

    δ  = r + γ · max_a' Q(s', a') − Q(s, a)          (0 target if s' terminal)

* greedy a:       e(s, a) <- visit;  Q(x, u) += α δ e(x, u) for all
  active traces;  e <- γλ e
* exploratory a:  Q(s, a) += α δ only, then e <- 0 (the *strict* cut:
  an off-target action's TD error must not be credited to earlier
  pairs, or a large negative δ from a bad action can contaminate the
  values of correct actions visited earlier in the episode)

The learner is deliberately environment-agnostic: callers feed it
transitions (online from the event bus, or offline from logged routine
episodes) and query the greedy action.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.qtable import QTable
from repro.rl.schedules import ConstantSchedule, Schedule
from repro.rl.traces import EligibilityTraces, TraceKind

__all__ = ["TDLambdaQLearner"]

State = Hashable
Action = Hashable


class TDLambdaQLearner:
    """Watkins Q(λ) over a tabular Q function."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        trace_decay: float = 0.7,
        policy: Optional[Policy] = None,
        trace_kind: TraceKind = TraceKind.REPLACING,
        initial_q: float = 0.0,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= trace_decay <= 1.0:
            raise ValueError("trace_decay must be in [0, 1]")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        self.discount = float(discount)
        self.trace_decay = float(trace_decay)
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q = QTable(initial_value=initial_q)
        self.traces = EligibilityTraces(kind=trace_kind)
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Reset traces at an episode boundary."""
        self.traces.reset()
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour-policy action for ``state``; see Policy.select."""
        return self.policy.select(self.q, state, list(actions), rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """The current greedy (target-policy) action."""
        return self.q.best_action(state, list(actions))

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        exploratory: bool = False,
    ) -> float:
        """Apply one Watkins Q(λ) update; returns the TD error δ.

        ``exploratory`` must be True when ``action`` deviated from
        the target (greedy) policy.  Such updates touch only the
        executed pair and reset the traces (strict Watkins cut).
        """
        if done:
            target = reward
        else:
            target = reward + self.discount * self.q.max_value(
                next_state, list(next_actions)
            )
        delta = target - self.q.value(state, action)
        alpha = self.learning_rate_schedule.value(self.updates)
        if exploratory:
            self.q.add(state, action, alpha * delta)
            self.traces.reset()
        else:
            self.traces.visit(state, action)
            for (trace_state, trace_action), eligibility in self.traces.items():
                self.q.add(trace_state, trace_action, alpha * delta * eligibility)
            self.traces.decay(self.discount * self.trace_decay)
        if done:
            self.traces.reset()
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TDLambdaQLearner(lambda={self.trace_decay}, "
            f"gamma={self.discount}, updates={self.updates})"
        )
