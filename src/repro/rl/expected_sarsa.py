"""Expected SARSA [van Seijen et al. 2009].

On-policy like SARSA but bootstraps from the *expectation* of the
next action under the behaviour policy rather than the sampled next
action, cutting update variance.  With an ε-greedy policy:

    target = r + γ [ (1-ε) max_a Q(s',a) + ε · mean_a Q(s',a) ]

Completes the RL substrate's on-policy family; at ε → 0 it coincides
with Q-learning, which the tests pin down.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.qtable import QTable
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["ExpectedSarsaLearner"]

State = Hashable
Action = Hashable


class ExpectedSarsaLearner:
    """Tabular Expected SARSA with an ε-greedy behaviour policy."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        epsilon: float = 0.2,
        initial_q: float = 0.0,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        self.discount = float(discount)
        self.epsilon = float(epsilon)
        self.policy = EpsilonGreedyPolicy(epsilon)
        self.q = QTable(initial_value=initial_q)
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Episode boundary (interface symmetry)."""
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """ε-greedy behaviour action."""
        return self.policy.select(self.q, state, list(actions), rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """Current greedy action."""
        return self.q.best_action(state, list(actions))

    def expected_value(self, state: State, actions: Sequence[Action]) -> float:
        """E_π[Q(state, ·)] under the ε-greedy policy."""
        actions = list(actions)
        if not actions:
            raise ValueError(f"no actions available in state {state!r}")
        values = [self.q.value(state, a) for a in actions]
        greedy = max(values)
        uniform = sum(values) / len(values)
        return (1.0 - self.epsilon) * greedy + self.epsilon * uniform

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        exploratory: bool = False,
    ) -> float:
        """One Expected SARSA update; returns the TD error."""
        if done or not next_actions:
            target = reward
        else:
            target = reward + self.discount * self.expected_value(
                next_state, next_actions
            )
        delta = target - self.q.value(state, action)
        alpha = self.learning_rate_schedule.value(self.updates)
        self.q.add(state, action, alpha * delta)
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExpectedSarsaLearner(epsilon={self.epsilon}, updates={self.updates})"
