"""Expected SARSA [van Seijen et al. 2009].

On-policy like SARSA but bootstraps from the *expectation* of the
next action under the behaviour policy rather than the sampled next
action, cutting update variance.  With an ε-greedy policy:

    target = r + γ [ (1-ε) max_a Q(s',a) + ε · mean_a Q(s',a) ]

Completes the RL substrate's on-policy family; at ε → 0 it coincides
with Q-learning, which the tests pin down.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.rl.dense import DenseQTable, _make_gather, make_qtable
from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["ExpectedSarsaLearner"]

State = Hashable
Action = Hashable


class ExpectedSarsaLearner:
    """Tabular Expected SARSA with an ε-greedy behaviour policy."""

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        epsilon: float = 0.2,
        initial_q: float = 0.0,
        q_backend: str = "dense",
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        # Constant learning rates (the common case) skip the schedule
        # call on every transition.
        self._alpha_const = (
            self.learning_rate_schedule.constant
            if type(self.learning_rate_schedule) is ConstantSchedule
            else None
        )
        self.discount = float(discount)
        self.epsilon = float(epsilon)
        self.policy = EpsilonGreedyPolicy(epsilon)
        self.q = make_qtable(q_backend, initial_q)
        self._dense = type(self.q) is DenseQTable
        self.updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Episode boundary (interface symmetry)."""
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """ε-greedy behaviour action."""
        return self.policy.select(self.q, state, actions, rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """Current greedy action."""
        return self.q.best_action(state, actions)

    def greedy_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> Sequence[Action]:
        """Greedy action per state (batched argmax on the dense backend)."""
        return self.q.best_actions(states, actions)

    def expected_value(self, state: State, actions: Sequence[Action]) -> float:
        """E_π[Q(state, ·)] under the ε-greedy policy.

        The mean is taken with Python's left-to-right ``sum`` on both
        backends -- NumPy's pairwise summation rounds differently, and
        the backends must agree bit-for-bit.
        """
        if not actions:
            raise ValueError(f"no actions available in state {state!r}")
        values = self.q.action_values(state, actions)
        greedy = max(values)
        uniform = sum(values) / len(values)
        return (1.0 - self.epsilon) * greedy + self.epsilon * uniform

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        exploratory: bool = False,
    ) -> float:
        """One Expected SARSA update; returns the TD error."""
        alpha = self._alpha_const
        if alpha is None:
            alpha = self.learning_rate_schedule.value(self.updates)
        if self._dense:
            # Fused against the dense flat buffer (see
            # TDLambdaQLearner.observe).  The expectation runs over the
            # given-order gather -- the same value sequence
            # q.action_values returns -- with Python's left-to-right
            # max/sum, so both paths are bit-identical.
            q = self.q
            index = q.index
            sid = q._state_ids.get(state)
            if sid is None:
                sid = index.state_id(state)
            aid = q._action_ids.get(action)
            if aid is None:
                aid = index.action_id(action)
            view = None
            next_sid = -1
            if not done and next_actions:
                next_sid = q._state_ids.get(next_state)
                if next_sid is None:
                    next_sid = index.state_id(next_state)
                view = q._view(
                    next_actions
                    if type(next_actions) is tuple
                    else tuple(next_actions)
                )
            if (
                sid >= q._rows
                or next_sid >= q._rows
                or aid >= q._cols
                or (view is not None and view.max_id >= q._cols)
            ):
                q._grow()
            if q._frozen:
                q._thaw()
            cols = q._cols
            flat = q._flat
            if view is None:
                target = reward
            else:
                if view is q._g0_view:
                    g = q._g0.get(next_sid)
                else:
                    q._g0_view = view
                    q._g0 = {}
                    g = None
                if g is None:
                    base = next_sid * cols
                    g = _make_gather([base + a for a in view.ids_list])
                    q._g0[next_sid] = g
                values = g(flat)
                greedy = max(values)
                uniform = sum(values) / len(values)
                expected = (1.0 - self.epsilon) * greedy + self.epsilon * uniform
                target = reward + self.discount * expected
            off = sid * cols + aid
            delta = target - flat[off]
            flat[off] = flat[off] + alpha * delta
            q._written[off] = 1
            q._array = None
            q.version += 1
        else:
            if done or not next_actions:
                target = reward
            else:
                target = reward + self.discount * self.expected_value(
                    next_state, next_actions
                )
            delta = target - self.q.value(state, action)
            self.q.add(state, action, alpha * delta)
        self.updates += 1
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExpectedSarsaLearner(epsilon={self.epsilon}, updates={self.updates})"
