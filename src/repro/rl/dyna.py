"""Dyna-Q: the paper's "fast learning" future-work item, implemented.

The paper (section 4, challenge 2) notes CoReDA "spends a relatively
long time to learn the routine" and asks for a faster algorithm.
Dyna-Q [Sutton 1990] learns a tabular world model from the same
transitions and performs extra *planning* updates against the model
after every real step, multiplying the value of each observed episode.
The ablation bench shows the reduction in iterations-to-converge.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.dense import DenseQTable, _make_gather, make_qtable
from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["DynaQLearner"]

State = Hashable
Action = Hashable

# A learned outcome record: (reward, next_state, done, next_actions)
# on the sparse backend; the dense backend stores (state_id,
# action_id, reward, next_state_id, action_view, done, cache_cell)
# instead, where cache_cell memoises the stride-dependent gather and
# flat offset (see DynaQLearner.observe).
_Outcome = Tuple[float, State, bool, Tuple[Action, ...]]


class DynaQLearner:
    """Tabular Dyna-Q with a deterministic-latest world model.

    The model stores, per (state, action), the most recent observed
    outcome -- adequate for the near-deterministic routine MDPs of
    ADL guidance and intentionally simple.  ``planning_steps`` model
    sweeps run after each real update over uniformly sampled known
    pairs.
    """

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        planning_steps: int = 10,
        policy: Optional[Policy] = None,
        initial_q: float = 0.0,
        q_backend: str = "dense",
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if planning_steps < 0:
            raise ValueError("planning_steps must be >= 0")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        # Constant learning rates (the common case) skip the schedule
        # call on every transition.
        self._alpha_const = (
            self.learning_rate_schedule.constant
            if type(self.learning_rate_schedule) is ConstantSchedule
            else None
        )
        self.discount = float(discount)
        self.planning_steps = int(planning_steps)
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q = make_qtable(q_backend, initial_q)
        # The model is a parallel pair of lists so the planning sweep
        # samples by position without re-hashing keys; ``_model`` maps
        # a key -- (state, action) on the sparse backend, interned
        # (state_id, action_id) on the dense one -- to its position
        # for deduplication.  On the dense backend the outcome record
        # carries interned ids and the cached action view, so every
        # planning update runs against the flat buffer with no
        # hashing at all.
        self._model: Dict[Tuple[State, Action], int] = {}
        self._known_pairs: List[Tuple[State, Action]] = []
        self._outcomes: List[tuple] = []
        self._dense = type(self.q) is DenseQTable
        self.updates = 0
        self.planning_updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Episode boundary (kept for learner-interface symmetry)."""
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour-policy action for ``state``."""
        return self.policy.select(self.q, state, actions, rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """The current greedy action."""
        return self.q.best_action(state, actions)

    def greedy_actions(
        self, states: Sequence[State], actions: Sequence[Action]
    ) -> Sequence[Action]:
        """Greedy action per state (batched argmax on the dense backend)."""
        return self.q.best_actions(states, actions)

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        rng: Optional[np.random.Generator] = None,
        exploratory: bool = False,
    ) -> float:
        """One real Q-learning update + ``planning_steps`` model sweeps.

        ``exploratory`` is accepted (and ignored) so Dyna-Q is a
        drop-in replacement for the TD(λ) learner in the trainer.
        Returns the real-step TD error.
        """
        next_tuple = (
            next_actions
            if type(next_actions) is tuple
            else tuple(next_actions)
        )
        # The step counter advances once per observed transition, so
        # the schedule value is shared by the real update and every
        # planning update of this transition (schedules are pure
        # functions of the step).
        alpha = self._alpha_const
        if alpha is None:
            alpha = self.learning_rate_schedule.value(self.updates)
        if self._dense:
            q = self.q
            index = q.index
            sid = q._state_ids.get(state)
            if sid is None:
                sid = index.state_id(state)
            aid = q._action_ids.get(action)
            if aid is None:
                aid = index.action_id(action)
            next_sid = q._state_ids.get(next_state)
            if next_sid is None:
                next_sid = index.state_id(next_state)
            # Dense records are mutable lists [sid, aid, reward,
            # next_sid, view, done, gather, offset, grow_count]: the
            # last three memoise the stride-dependent pieces and are
            # revalidated against ``q._grow_count`` on every use
            # (``gather`` stays None for terminal/actionless records,
            # whose target is just the reward).
            record = [
                sid, aid, reward, next_sid, q._view(next_tuple), done,
                None, 0, -1,
            ]
            delta = self._q_update_dense(record, alpha)
            # Interned ids hash as plain ints -- much cheaper model
            # keys than (state, action) namedtuple pairs, and nothing
            # reads the dense model's keys back.
            key = (sid, aid)
        else:
            record = (reward, next_state, done, next_tuple)
            delta = self._q_update(
                state, action, reward, next_state, next_tuple, done, alpha
            )
            key = (state, action)
        pos = self._model.get(key)
        if pos is None:
            self._model[key] = len(self._known_pairs)
            self._known_pairs.append(key)
            self._outcomes.append(record)
        else:
            self._outcomes[pos] = record
        if rng is not None and self.planning_steps > 0 and self._known_pairs:
            self._plan(rng, alpha)
        self.updates += 1
        return delta

    def _plan(self, rng: np.random.Generator, alpha: float) -> None:
        outcomes = self._outcomes
        n = len(self._known_pairs)
        # One batched draw consumes the generator's bit stream exactly
        # like the equivalent sequence of scalar draws (pinned down in
        # tests), so the planning sample sequence is unchanged -- the
        # updates in between never touch the generator.
        picks = rng.integers(n, size=self.planning_steps).tolist()
        if self._dense:
            # Inlined :meth:`_q_update_dense` minus the capacity guard:
            # every record's ids were in range when its observe ran the
            # guarded real update, and the table never shrinks, so the
            # sweep can hold the flat buffer across iterations.
            # ``written`` needs no store here: every record's pair was
            # marked written by its real-step update in observe.
            q = self.q
            discount = self.discount
            if q._frozen:
                q._thaw()
            flat = q._flat
            grows = q._grow_count
            refresh = self._refresh_record
            for i in picks:
                r = outcomes[i]
                if r[8] != grows:
                    refresh(r)
                g = r[6]
                if g is None:
                    target = r[2]
                else:
                    values = g(flat)
                    target = r[2] + discount * max(values)
                off = r[7]
                flat[off] = flat[off] + alpha * (target - flat[off])
            q._array = None
            q.version += 1
        else:
            known = self._known_pairs
            for i in picks:
                state, action = known[i]
                reward, next_state, done, next_actions = outcomes[i]
                self._q_update(
                    state, action, reward, next_state, next_actions, done,
                    alpha,
                )
        self.planning_updates += self.planning_steps

    def _q_update(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Tuple[Action, ...],
        done: bool,
        alpha: float,
    ) -> float:
        if done or not next_actions:
            target = reward
        else:
            target = reward + self.discount * self.q.max_value(
                next_state, next_actions
            )
        delta = target - self.q.value(state, action)
        self.q.add(state, action, alpha * delta)
        return delta

    def _q_update_dense(self, record: list, alpha: float) -> float:
        """One Q update straight against the dense flat buffer.

        ``record`` carries interned ids and the cached action view, so
        the update pays no hashing and no repr sorting.  The scalar
        operations (max over the given-order values, one subtract, one
        multiply-add) are exactly those of :meth:`_q_update` through
        the table API, so both paths are bit-identical.
        """
        q = self.q
        view = record[4]
        if (
            record[0] >= q._rows
            or record[3] >= q._rows
            or record[1] >= q._cols
            or view.max_id >= q._cols
        ):
            q._grow()
        if q._frozen:
            q._thaw()
        flat = q._flat
        if record[8] != q._grow_count:
            self._refresh_record(record)
        g = record[6]
        if g is None:
            target = record[2]
        else:
            target = record[2] + self.discount * max(g(flat))
        off = record[7]
        delta = target - flat[off]
        flat[off] = flat[off] + alpha * delta
        q._written[off] = 1
        q._array = None
        q.version += 1
        return delta

    def _refresh_record(self, record: list) -> None:
        """Recompute a dense record's stride-dependent memo fields."""
        q = self.q
        cols = q._cols
        ids = record[4].ids_list
        if record[5] or not ids:
            record[6] = None
        else:
            base = record[3] * cols
            record[6] = _make_gather([base + a for a in ids])
        record[7] = record[0] * cols + record[1]
        record[8] = q._grow_count

    @property
    def model_size(self) -> int:
        """Number of (state, action) pairs in the learned model."""
        return len(self._model)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynaQLearner(planning_steps={self.planning_steps}, "
            f"model={len(self._model)}, updates={self.updates})"
        )
