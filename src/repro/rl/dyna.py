"""Dyna-Q: the paper's "fast learning" future-work item, implemented.

The paper (section 4, challenge 2) notes CoReDA "spends a relatively
long time to learn the routine" and asks for a faster algorithm.
Dyna-Q [Sutton 1990] learns a tabular world model from the same
transitions and performs extra *planning* updates against the model
after every real step, multiplying the value of each observed episode.
The ablation bench shows the reduction in iterations-to-converge.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.policies import EpsilonGreedyPolicy, Policy
from repro.rl.qtable import QTable
from repro.rl.schedules import ConstantSchedule, Schedule

__all__ = ["DynaQLearner"]

State = Hashable
Action = Hashable

# A learned outcome record: (reward, next_state, done, next_actions).
_Outcome = Tuple[float, State, bool, Tuple[Action, ...]]


class DynaQLearner:
    """Tabular Dyna-Q with a deterministic-latest world model.

    The model stores, per (state, action), the most recent observed
    outcome -- adequate for the near-deterministic routine MDPs of
    ADL guidance and intentionally simple.  ``planning_steps`` model
    sweeps run after each real update over uniformly sampled known
    pairs.
    """

    def __init__(
        self,
        learning_rate=0.2,
        discount: float = 0.9,
        planning_steps: int = 10,
        policy: Optional[Policy] = None,
        initial_q: float = 0.0,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        if planning_steps < 0:
            raise ValueError("planning_steps must be >= 0")
        if isinstance(learning_rate, Schedule):
            self.learning_rate_schedule: Schedule = learning_rate
        else:
            self.learning_rate_schedule = ConstantSchedule(float(learning_rate))
        self.discount = float(discount)
        self.planning_steps = int(planning_steps)
        self.policy: Policy = policy if policy is not None else EpsilonGreedyPolicy(0.2)
        self.q = QTable(initial_value=initial_q)
        self._model: Dict[Tuple[State, Action], _Outcome] = {}
        self._known_pairs: List[Tuple[State, Action]] = []
        self.updates = 0
        self.planning_updates = 0
        self.episodes = 0

    def begin_episode(self) -> None:
        """Episode boundary (kept for learner-interface symmetry)."""
        self.episodes += 1

    def select_action(
        self,
        state: State,
        actions: Sequence[Action],
        rng: np.random.Generator,
        step: int = 0,
    ) -> Tuple[Action, bool]:
        """Behaviour-policy action for ``state``."""
        return self.policy.select(self.q, state, list(actions), rng, step=step)

    def greedy_action(self, state: State, actions: Sequence[Action]) -> Action:
        """The current greedy action."""
        return self.q.best_action(state, list(actions))

    def observe(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Sequence[Action],
        done: bool,
        rng: Optional[np.random.Generator] = None,
        exploratory: bool = False,
    ) -> float:
        """One real Q-learning update + ``planning_steps`` model sweeps.

        ``exploratory`` is accepted (and ignored) so Dyna-Q is a
        drop-in replacement for the TD(λ) learner in the trainer.
        Returns the real-step TD error.
        """
        next_tuple = tuple(next_actions)
        delta = self._q_update(state, action, reward, next_state, next_tuple, done)
        key = (state, action)
        if key not in self._model:
            self._known_pairs.append(key)
        self._model[key] = (reward, next_state, done, next_tuple)
        if rng is not None and self.planning_steps > 0 and self._known_pairs:
            self._plan(rng)
        self.updates += 1
        return delta

    def _plan(self, rng: np.random.Generator) -> None:
        for _ in range(self.planning_steps):
            index = int(rng.integers(len(self._known_pairs)))
            state, action = self._known_pairs[index]
            reward, next_state, done, next_actions = self._model[(state, action)]
            self._q_update(state, action, reward, next_state, next_actions, done)
            self.planning_updates += 1

    def _q_update(
        self,
        state: State,
        action: Action,
        reward: float,
        next_state: State,
        next_actions: Tuple[Action, ...],
        done: bool,
    ) -> float:
        if done or not next_actions:
            target = reward
        else:
            target = reward + self.discount * self.q.max_value(
                next_state, list(next_actions)
            )
        delta = target - self.q.value(state, action)
        alpha = self.learning_rate_schedule.value(self.updates)
        self.q.add(state, action, alpha * delta)
        return delta

    @property
    def model_size(self) -> int:
        """Number of (state, action) pairs in the learned model."""
        return len(self._model)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynaQLearner(planning_steps={self.planning_steps}, "
            f"model={len(self._model)}, updates={self.updates})"
        )
