"""A from-scratch tabular reinforcement-learning toolbox.

This package replaces the paper's dependency on RL Toolbox 2.0.  It
provides the TD(λ) Q-learning algorithm the planning subsystem runs
on, plus the companions needed for baselines, ablations and the
paper's future-work extensions: SARSA(λ), Dyna-Q, value iteration,
behaviour policies, schedules, eligibility traces and convergence
detection.
"""

from repro.rl.convergence import ConvergenceDetector, convergence_iteration
from repro.rl.dense import (
    DenseQTable,
    DenseTraces,
    StateActionIndex,
    make_qtable,
    make_traces,
)
from repro.rl.double_q import DoubleQLearner
from repro.rl.dyna import DynaQLearner
from repro.rl.expected_sarsa import ExpectedSarsaLearner
from repro.rl.experience import ReplayBuffer, Transition
from repro.rl.mdp import TabularMDP, TransitionOutcome
from repro.rl.policies import (
    EpsilonGreedyPolicy,
    GreedyPolicy,
    Policy,
    SoftmaxPolicy,
)
from repro.rl.qtable import QTable
from repro.rl.rewards import CallableReward, RewardFunction, TabularReward
from repro.rl.sarsa import SarsaLambdaLearner
from repro.rl.schedules import (
    ConstantSchedule,
    ExponentialDecay,
    HarmonicDecay,
    LinearDecay,
    Schedule,
)
from repro.rl.tdlambda import TDLambdaQLearner
from repro.rl.traces import EligibilityTraces, TraceKind
from repro.rl.value_iteration import (
    ValueIterationResult,
    extract_policy,
    q_values,
    value_iteration,
)

__all__ = [
    "CallableReward",
    "ConstantSchedule",
    "ConvergenceDetector",
    "DenseQTable",
    "DenseTraces",
    "DoubleQLearner",
    "DynaQLearner",
    "EligibilityTraces",
    "EpsilonGreedyPolicy",
    "ExpectedSarsaLearner",
    "ExponentialDecay",
    "GreedyPolicy",
    "HarmonicDecay",
    "LinearDecay",
    "Policy",
    "QTable",
    "ReplayBuffer",
    "RewardFunction",
    "SarsaLambdaLearner",
    "Schedule",
    "SoftmaxPolicy",
    "StateActionIndex",
    "TabularMDP",
    "TabularReward",
    "TDLambdaQLearner",
    "TraceKind",
    "Transition",
    "TransitionOutcome",
    "ValueIterationResult",
    "convergence_iteration",
    "extract_policy",
    "make_qtable",
    "make_traces",
    "q_values",
    "value_iteration",
]
