"""Batched greedy-policy inference over trained Q-tables.

Training batches landed in :mod:`repro.rl.dense` (PR 5); this module
batches the *deployment* side.  A deployed predictor answers the same
question thousands of times per simulated day -- "greedy action in
state ⟨previous, current⟩?" -- against a Q-table that no longer
changes (or changes only at episode boundaries under online
adaptation).  Recomputing the argmax per call therefore repays the
same work over and over; the classes here precompute it once and
revalidate cheaply:

* :class:`GreedyPolicyTable` -- the full greedy policy of a
  :class:`~repro.rl.dense.DenseQTable` as one ``(n_states,)`` vector
  of action indices, built by a single row-indexed ``argmax`` over
  the dense buffer's NumPy mirror.  A lookup is one dict probe (state
  -> interned id) plus one array index.
* :class:`MemoizedGreedyPolicy` -- the backend-generic fallback: a
  lazily filled ``state -> action`` dict over any table exposing
  ``best_action`` (the sparse :class:`~repro.rl.qtable.QTable`,
  Double Q's mean view).
* :class:`ShardPredictor` -- a frozen, shareable predictor facade for
  the fleet's batched shard mode: one eagerly-built policy table per
  distinct training per shard, so per-step prediction inside the
  shared kernel is a single array index, not a ``best_action`` call.

Every path revalidates against the table's monotone ``version``
counter (bumped on every write), so a learner that keeps writing --
online adaptation -- invalidates the cache instead of being served
stale prompts.

The contract, as everywhere in this codebase: **byte-identity** with
the scalar reference.  ``np.argmax`` returns the first maximum, the
policy tables argmax over the same repr-sorted action order as
``best_action``, and a state the table has never interned maps to the
first action in repr order -- exactly what ``best_action`` computes
for an all-initial-value row.  ``tests/test_rl_batch.py`` pins this
down per backend.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.rl.dense import DenseQTable

__all__ = [
    "GreedyPolicyTable",
    "MemoizedGreedyPolicy",
    "ShardPredictor",
    "greedy_policy_for",
]

State = Hashable
Action = Hashable


class GreedyPolicyTable:
    """The full greedy policy of a dense table as one argmax vector.

    ``lookup(state)`` returns exactly what ``q.best_action(state,
    actions)`` would (same repr-order tie-breaking), without interning
    unseen states and without per-call gathers.  The table is rebuilt
    lazily whenever the underlying Q-table's ``version`` moves, so it
    is safe under continued learning -- just fastest when the table is
    frozen (the deployed-predictor case).
    """

    __slots__ = (
        "q",
        "actions",
        "_view",
        "_state_ids",
        "_table",
        "_version",
        "_n_states",
    )

    def __init__(self, q: DenseQTable, actions: Sequence[Action]) -> None:
        self.q = q
        self.actions: Tuple[Action, ...] = tuple(actions)
        view = q._view(self.actions)
        if not view.sorted_ids_list:
            raise ValueError("policy table needs a non-empty action space")
        self._view = view
        self._state_ids = q.index._state_ids
        self._table: Optional[np.ndarray] = None
        self._version = -1
        self._n_states = 0

    def _rebuild(self) -> None:
        q = self.q
        view = self._view
        n_states = q.index.n_states
        if n_states > q._rows or view.max_id >= q._cols:
            q._grow()
        if n_states:
            block = q.as_array()[:n_states][:, view.sorted_ids]
            self._table = block.argmax(axis=1)
        else:
            self._table = np.empty(0, dtype=np.intp)
        self._n_states = n_states
        self._version = q.version

    def lookup(self, state: State) -> Action:
        """The greedy action for ``state`` (= ``q.best_action``)."""
        if self._version != self.q.version:
            self._rebuild()
        sid = self._state_ids.get(state)
        if sid is None or sid >= self._n_states:
            # Never interned (or interned after the last write): every
            # Q-value is the initial value, so the first action in
            # repr order wins -- best_action's exact pick.
            return self._view.sorted_actions[0]
        return self._view.sorted_actions[self._table[sid]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GreedyPolicyTable(states={self._n_states}, "
            f"actions={len(self.actions)})"
        )


class MemoizedGreedyPolicy:
    """Backend-generic greedy memo: ``state -> best_action(state)``.

    Works over any table exposing ``best_action`` and a monotone
    ``version`` write counter (sparse :class:`~repro.rl.qtable.
    QTable`, Double Q's mean view); the memo is cleared whenever the
    version moves.  ``PlanningState`` is a ``NamedTuple``, so plain
    ``(previous, current)`` tuples hash and compare equal to it and
    share one memo entry.
    """

    __slots__ = ("q", "actions", "_memo", "_version")

    def __init__(self, q, actions: Sequence[Action]) -> None:
        if not actions:
            raise ValueError("policy memo needs a non-empty action space")
        self.q = q
        self.actions: Tuple[Action, ...] = tuple(actions)
        self._memo: Dict[State, Action] = {}
        self._version = q.version

    def lookup(self, state: State) -> Action:
        """The greedy action for ``state`` (= ``q.best_action``)."""
        q = self.q
        if self._version != q.version:
            self._memo.clear()
            self._version = q.version
        action = self._memo.get(state)
        if action is None:
            action = q.best_action(state, self.actions)
            self._memo[state] = action
        return action

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoizedGreedyPolicy(memoized={len(self._memo)}, "
            f"actions={len(self.actions)})"
        )


def greedy_policy_for(q, actions: Sequence[Action]):
    """The fastest greedy-policy cache available for ``q``'s type.

    ``None`` when ``q`` exposes no ``version`` counter -- a custom
    table the caller must treat as uncacheable (fall back to per-call
    ``best_action``).
    """
    if type(q) is DenseQTable:
        return GreedyPolicyTable(q, actions)
    if getattr(q, "version", None) is not None and hasattr(q, "best_action"):
        return MemoizedGreedyPolicy(q, actions)
    return None


class ShardPredictor:
    """A frozen, shareable next-step predictor for batched shards.

    Wraps a trained predictor (anything exposing ``q``, ``actions``
    and ``converged``) behind an eagerly-built greedy-policy cache:
    the batched shard mode resolves one predictor per distinct
    training key and serves every shard-mate from it, so the policy
    table is computed once per shard and each per-step prediction
    inside the shared kernel is a single array index.

    Predictions are byte-identical to the wrapped predictor's -- the
    cache machinery above guarantees it -- and the wrapped predictor
    stays reachable via ``inner`` for persistence helpers.
    """

    __slots__ = ("inner", "q", "actions", "converged", "_policy")

    def __init__(self, predictor) -> None:
        self.inner = predictor
        self.q = predictor.q
        self.actions: Tuple[Action, ...] = tuple(predictor.actions)
        self.converged = predictor.converged
        policy = greedy_policy_for(self.q, self.actions)
        if policy is None:
            raise TypeError(
                f"cannot build a shard policy table over {type(self.q).__name__}"
            )
        self._policy = policy

    def precompute(self) -> "ShardPredictor":
        """Force-build the policy cache now (off the simulated clock).

        For the dense backend this materializes the full argmax
        vector; for memo backends it is a no-op warm-up hook.
        Returns ``self`` for chaining.
        """
        policy = self._policy
        if isinstance(policy, GreedyPolicyTable):
            if policy._version != policy.q.version:
                policy._rebuild()
        return self

    def predict(self, state) -> Action:
        """The prompt for ``state`` = ⟨previous StepID, current StepID⟩."""
        return self._policy.lookup(state)

    def predict_next_tool(
        self, previous_step_id: int, current_step_id: int
    ) -> int:
        """Just the ToolID of the predicted next step."""
        return self._policy.lookup((previous_step_id, current_step_id)).tool_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardPredictor(actions={len(self.actions)}, "
            f"converged={self.converged})"
        )
