"""Episode segmentation of continuous usage histories.

The paper trains on "training samples", each "a complete process of
an ADL" -- but a deployed sensing subsystem records one continuous
stream of tool detections, not pre-cut episodes.  This module closes
that gap: it splits a :class:`~repro.sensing.history.UsageHistory`
into episodes at idle gaps (no detection for longer than
``idle_gap``), collapses repeated detections within a step, and can
infer the user's routine as the modal complete episode -- everything
needed to train straight from what the system itself observed
(``CoReDA.train_from_history``).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.core.adl import ADL, Routine
from repro.core.errors import RoutineError
from repro.sensing.history import UsageHistory

__all__ = ["segment_episodes", "infer_routine"]


def segment_episodes(
    history: UsageHistory,
    idle_gap: float = 30.0,
    min_length: int = 2,
) -> List[List[int]]:
    """Split a continuous detection stream into step-id episodes.

    A new episode starts whenever the gap since the previous
    detection exceeds ``idle_gap``.  Within an episode, consecutive
    detections of the same tool collapse to one step (they belong to
    one handling).  Episodes shorter than ``min_length`` steps are
    dropped as fragments (a lone detection between idle stretches is
    more likely noise than an activity).
    """
    if idle_gap <= 0:
        raise ValueError("idle_gap must be positive")
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    episodes: List[List[int]] = []
    current: List[int] = []
    previous_time: Optional[float] = None
    for record in history.records():
        if previous_time is not None and record.time - previous_time > idle_gap:
            if len(current) >= min_length:
                episodes.append(current)
            current = []
        if not current or current[-1] != record.tool_id:
            current.append(record.tool_id)
        previous_time = record.time
    if len(current) >= min_length:
        episodes.append(current)
    return episodes


def infer_routine(
    adl: ADL,
    episodes: Sequence[Sequence[int]],
) -> Tuple[Routine, int]:
    """The user's routine, inferred as the modal *complete* episode.

    An episode is complete when it visits every step of the ADL
    exactly once (sensing gaps make incomplete ones common -- Table 3).
    Returns ``(routine, support)`` where support is how many episodes
    matched the winner exactly.  Raises :class:`RoutineError` when no
    complete episode exists -- the caller should record more data (or
    use :class:`~repro.recognition.repair.EpisodeRepairer` first).
    """
    full_set = set(adl.step_ids)
    complete = [
        tuple(episode)
        for episode in episodes
        if len(episode) == len(full_set) and set(episode) == full_set
    ]
    if not complete:
        raise RoutineError(
            f"no complete {adl.name!r} episode among {len(episodes)} "
            "segmented episodes; record more data"
        )
    counts = Counter(complete)
    winner, support = max(
        sorted(counts.items()), key=lambda item: item[1]
    )
    return Routine(adl, winner), support
