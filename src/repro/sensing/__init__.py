"""The sensing subsystem: sensor frames in, StepID stream out."""

from repro.sensing.calibration import (
    CalibrationResult,
    calibrate_threshold,
    false_positive_rate,
)
from repro.sensing.history import DwellStats, UsageHistory, UsageRecord
from repro.sensing.segmentation import infer_routine, segment_episodes
from repro.sensing.step_extractor import StepExtractor
from repro.sensing.subsystem import SensingSubsystem

__all__ = [
    "CalibrationResult",
    "DwellStats",
    "SensingSubsystem",
    "StepExtractor",
    "UsageHistory",
    "UsageRecord",
    "calibrate_threshold",
    "false_positive_rate",
    "infer_routine",
    "segment_episodes",
]
