"""Threshold calibration for the usage detector.

The paper speaks of "a pre-defined threshold" per sensor.  Deployments
need a way to *choose* it: this module fits the threshold from labelled
recordings (idle-only and active-only traces), placing it where idle
false-trigger risk and active miss risk balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CalibrationResult", "calibrate_threshold", "false_positive_rate"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a threshold calibration."""

    threshold: float
    idle_quantile_value: float
    active_quantile_value: float
    separable: bool


def calibrate_threshold(
    idle_samples: Sequence[float],
    active_samples: Sequence[float],
    idle_quantile: float = 0.999,
    active_quantile: float = 0.25,
) -> CalibrationResult:
    """Choose a detection threshold between idle noise and activity.

    The threshold is the midpoint between a high quantile of the idle
    distribution and a low quantile of the active distribution.  When
    the two overlap (``separable=False``) the midpoint is still
    returned -- the caller decides whether that is acceptable for the
    tool in question.
    """
    if len(idle_samples) == 0 or len(active_samples) == 0:
        raise ValueError("need non-empty idle and active sample sets")
    idle_q = float(np.quantile(np.asarray(idle_samples, dtype=float), idle_quantile))
    active_q = float(
        np.quantile(np.asarray(active_samples, dtype=float), active_quantile)
    )
    threshold = (idle_q + active_q) / 2.0
    return CalibrationResult(
        threshold=threshold,
        idle_quantile_value=idle_q,
        active_quantile_value=active_q,
        separable=active_q > idle_q,
    )


def false_positive_rate(
    idle_samples: Sequence[float], threshold: float
) -> float:
    """Fraction of idle samples that would exceed ``threshold``."""
    samples = np.asarray(idle_samples, dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one idle sample")
    return float(np.mean(samples > threshold))
