"""StepID extraction from the tool-usage stream (paper section 2.1).

The StepID of the user's current step is the id of the tool mainly
used in it; StepID 0 means "nothing is done for a long time".  The
extractor therefore:

* turns the first detection of a *different* tool into a step change;
* swallows repeated detections of the current tool;
* runs an idle timer that emits a transition to StepID 0 when no tool
  has been used for ``idle_timeout`` seconds.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.adl import IDLE_STEP_ID
from repro.core.events import StepEvent
from repro.sim.kernel import Event, Simulator

__all__ = ["StepExtractor"]


class StepExtractor:
    """Maintains the current StepID and emits transitions.

    ``on_step`` is invoked with a :class:`~repro.core.events.StepEvent`
    for every transition, including into idle (StepID 0).  Call
    :meth:`reset` between ADL episodes.
    """

    def __init__(
        self,
        sim: Simulator,
        idle_timeout: float,
        on_step: Callable[[StepEvent], None],
    ) -> None:
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.sim = sim
        self.idle_timeout = idle_timeout
        self._on_step = on_step
        self.current_step_id = IDLE_STEP_ID
        self.transitions = 0
        self._idle_event: Optional[Event] = None
        self.step_log: List[StepEvent] = []

    def observe_tool(self, tool_id: int) -> Optional[StepEvent]:
        """Process one tool-usage detection.

        Returns the emitted :class:`StepEvent`, or ``None`` when the
        detection belongs to the step already in progress.
        """
        self._rearm_idle_timer()
        if tool_id == self.current_step_id:
            return None
        return self._transition(tool_id)

    def reset(self) -> None:
        """Back to idle with no pending timer (between episodes)."""
        self._disarm_idle_timer()
        self.current_step_id = IDLE_STEP_ID

    def _transition(self, step_id: int) -> StepEvent:
        event = StepEvent(
            time=self.sim.now,
            step_id=step_id,
            previous_step_id=self.current_step_id,
        )
        self.current_step_id = step_id
        self.transitions += 1
        self.step_log.append(event)
        self._on_step(event)
        return event

    def _on_idle_timeout(self) -> None:
        self._idle_event = None
        if self.current_step_id == IDLE_STEP_ID:
            return
        self._transition(IDLE_STEP_ID)

    def _rearm_idle_timer(self) -> None:
        self._disarm_idle_timer()
        self._idle_event = self.sim.schedule(
            self.idle_timeout, self._on_idle_timeout
        )

    def _disarm_idle_timer(self) -> None:
        if self._idle_event is not None:
            self._idle_event.cancel()
            self._idle_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StepExtractor(current={self.current_step_id}, "
            f"transitions={self.transitions})"
        )
