"""The sensing subsystem (paper section 2.1, Figure 2 left box).

Wiring: base-station frames -> ToolUsageEvent -> usage history +
StepExtractor -> StepEvent.  All outputs go onto the shared event bus
so the planning subsystem never touches radio internals.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adl import ADL
from repro.core.bus import EventBus
from repro.core.config import SensingConfig
from repro.core.events import SensorFrameEvent, StepEvent, ToolUsageEvent
from repro.sensing.history import UsageHistory
from repro.sensing.step_extractor import StepExtractor
from repro.sensors.network import BaseStation
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder

__all__ = ["SensingSubsystem"]


class SensingSubsystem:
    """Extracts the user's current ADL step from sensor frames.

    Publishes :class:`ToolUsageEvent` (every accepted detection) and
    :class:`StepEvent` (every step transition, including idle) on the
    bus, and feeds the usage history used for dwell statistics.
    """

    def __init__(
        self,
        sim: Simulator,
        adl: ADL,
        bus: EventBus,
        config: SensingConfig,
        base_station: Optional[BaseStation] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.adl = adl
        self.bus = bus
        self.config = config
        self._trace = trace
        self.history = UsageHistory()
        self.extractor = StepExtractor(
            sim=sim, idle_timeout=config.idle_timeout, on_step=self._publish_step
        )
        self.frames_ignored = 0
        if base_station is not None:
            base_station.frames.subscribe(self.on_frame)

    def on_frame(self, frame: SensorFrameEvent) -> None:
        """Handle one uplink frame from the base station.

        Frames from uids that are not tools of this ADL are counted
        and dropped (a foreign node sharing the radio channel must not
        corrupt the step stream).
        """
        if not self.adl.has_step(frame.node_uid):
            self.frames_ignored += 1
            return
        self._accept_usage(frame.node_uid)

    def inject_usage(self, tool_id: int) -> None:
        """Feed a detection directly (offline training / unit tests)."""
        if not self.adl.has_step(tool_id):
            self.frames_ignored += 1
            return
        self._accept_usage(tool_id)

    def _accept_usage(self, tool_id: int) -> None:
        now = self.sim.now
        self.history.append(now, tool_id)
        usage = ToolUsageEvent(time=now, tool_id=tool_id)
        if self._trace is not None:
            self._trace.emit(now, "sensing.tool_usage", tool_id=tool_id)
        self.bus.publish(usage)
        self.extractor.observe_tool(tool_id)

    def _publish_step(self, event: StepEvent) -> None:
        if self._trace is not None:
            self._trace.emit(
                event.time,
                "sensing.step",
                step_id=event.step_id,
                previous=event.previous_step_id,
            )
        self.bus.publish(event)

    @property
    def current_step_id(self) -> int:
        """The StepID the user is currently in (0 = idle)."""
        return self.extractor.current_step_id

    def reset_episode(self) -> None:
        """Prepare for a new ADL episode (extractor back to idle)."""
        self.extractor.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SensingSubsystem({self.adl.name!r}, "
            f"current_step={self.current_step_id})"
        )
