"""The tool-usage history store (Figure 2: "Tool Usage History Data").

An append-only record of ``(time, tool_id)`` detections.  Besides the
raw sequence fed to the planning subsystem, it computes the per-step
dwell statistics the paper's footnote 1 calls for: "this time should
be determined from the statistical data of how long a user will use
this tool" -- the reminding subsystem derives its stall timeouts from
these statistics.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["UsageRecord", "DwellStats", "UsageHistory"]


@dataclass(frozen=True)
class UsageRecord:
    """One tool-usage detection as seen by the server."""

    time: float
    tool_id: int


@dataclass(frozen=True)
class DwellStats:
    """Duration statistics of one step (time until the *next* step)."""

    count: int
    mean: float
    sd: float

    def timeout(self, sd_factor: float) -> float:
        """Stall timeout: mean + ``sd_factor`` standard deviations."""
        return self.mean + sd_factor * self.sd


class UsageHistory:
    """Chronological store of usage records with dwell statistics."""

    def __init__(self) -> None:
        self._records: List[UsageRecord] = []

    def append(self, time: float, tool_id: int) -> None:
        """Record one detection (times must be non-decreasing)."""
        if self._records and time < self._records[-1].time:
            raise ValueError(
                f"usage recorded out of order: t={time} after "
                f"t={self._records[-1].time}"
            )
        self._records.append(UsageRecord(time=float(time), tool_id=int(tool_id)))

    def records(self) -> List[UsageRecord]:
        """All records, oldest first."""
        return list(self._records)

    def of_tool(self, tool_id: int) -> List[UsageRecord]:
        """All records for one tool."""
        return [r for r in self._records if r.tool_id == tool_id]

    def last_time(self) -> Optional[float]:
        """Time of the most recent detection, or ``None`` if empty."""
        if not self._records:
            return None
        return self._records[-1].time

    def step_sequence(self) -> List[int]:
        """Tool ids with consecutive duplicates collapsed.

        This is the StepID sequence in the paper's sense: repeated
        detections of the same tool belong to one step.
        """
        sequence: List[int] = []
        for record in self._records:
            if not sequence or sequence[-1] != record.tool_id:
                sequence.append(record.tool_id)
        return sequence

    def dwell_stats(self) -> Dict[int, DwellStats]:
        """Per-tool statistics of time spent before the next step.

        A dwell sample for tool T is the gap between the first
        detection of T in a run and the first detection of the next
        distinct tool.  Tools that never hand over (e.g. the last
        detection in the history) contribute no sample.
        """
        samples: Dict[int, List[float]] = {}
        run_start: Optional[UsageRecord] = None
        for record in self._records:
            if run_start is None:
                run_start = record
                continue
            if record.tool_id != run_start.tool_id:
                samples.setdefault(run_start.tool_id, []).append(
                    record.time - run_start.time
                )
                run_start = record
        stats: Dict[int, DwellStats] = {}
        for tool_id, durations in samples.items():
            count = len(durations)
            mean = sum(durations) / count
            if count > 1:
                variance = sum((d - mean) ** 2 for d in durations) / (count - 1)
            else:
                variance = 0.0
            stats[tool_id] = DwellStats(count=count, mean=mean, sd=math.sqrt(variance))
        return stats

    def save(self, path: Union[str, Path]) -> None:
        """Persist the history as JSON."""
        data = [{"time": r.time, "tool_id": r.tool_id} for r in self._records]
        Path(path).write_text(json.dumps(data, indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "UsageHistory":
        """Restore a history previously written by :meth:`save`."""
        history = cls()
        for item in json.loads(Path(path).read_text()):
            history.append(item["time"], item["tool_id"])
        return history

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UsageHistory(records={len(self._records)})"
