"""Batched HMM forward inference across many models and streams.

The recognizer scores one usage stream under every candidate ADL's
HMM; a fleet shard scores *many* residents' streams under the same
candidates.  Running the forward recursion per (stream, model) pair
repays the Python/NumPy dispatch overhead |streams| x |models| times
per timestep.  :class:`BatchedHMM` stacks the candidate models into
padded ``(M, S)`` / ``(M, S, S)`` / ``(M, S, V)`` log-parameter
tensors and runs **one** forward recursion for the whole stack -- a
single logsumexp per timestep covers every model (and, in the matrix
form, every stream).

The contract, as for every backend in this codebase, is
**bit-identity** with the scalar reference (:meth:`DiscreteHMM.
log_likelihood`), which holds by construction:

* models are padded to the widest state count with ``-inf`` log
  parameters.  Padded entries contribute ``exp(-inf) = 0`` to the
  logsumexp sums -- and NumPy accumulates reductions over a non-final
  axis sequentially in index order, so trailing zeros leave every
  partial sum bit-identical -- and ``-inf`` to the maxes, which are
  order-independent;
* the per-timestep tensor ops are elementwise identical to the
  scalar ``_logsumexp_matrix`` step (same subtraction, same ``exp`` /
  ``log`` calls on the same floats);
* the final per-model reduction reuses the scalar ``_logsumexp`` on
  each model's *unpadded* state slice, so even the last pairwise
  1-D summation is the literal reference computation.

``tests/test_recognition_batch.py`` pins the equality to the last ULP
on randomized model stacks of mixed sizes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.recognition.hmm import DiscreteHMM, _logsumexp

__all__ = ["BatchedHMM"]


def _batched_logsumexp(scores: np.ndarray) -> np.ndarray:
    """Logsumexp over the source-state axis (``-2``) of ``scores``.

    Mirrors the scalar ``_logsumexp_matrix`` exactly: peak-shift with
    all-``-inf`` columns clamped to a safe peak of 0, so a padded
    column comes out ``-inf`` (``log(0)``) instead of NaN.  The
    reduced axis is never the last one, so NumPy sums it sequentially
    in index order -- the property the bit-identity argument needs.
    """
    peak = scores.max(axis=-2)
    safe = np.where(np.isneginf(peak), 0.0, peak)
    with np.errstate(divide="ignore"):
        return safe + np.log(
            np.exp(scores - safe[..., None, :]).sum(axis=-2)
        )


class BatchedHMM:
    """A stack of :class:`DiscreteHMM` models scored in one recursion.

    Built *from* constructed models (not raw parameters) so the
    stacked log tensors are the models' own floats -- the noise-floor
    ``log(p + eps)`` arithmetic happens exactly once, in the scalar
    reference.
    """

    __slots__ = (
        "n_models",
        "n_symbols",
        "max_states",
        "_n_states",
        "_log_prior",
        "_log_transition",
        "_log_emission",
    )

    def __init__(self, models: Sequence[DiscreteHMM]) -> None:
        models = list(models)
        if not models:
            raise ValueError("need at least one model to batch")
        n_symbols = models[0].n_symbols
        for model in models[1:]:
            if model.n_symbols != n_symbols:
                raise ValueError(
                    "all models must share one symbol alphabet; got "
                    f"{model.n_symbols} symbols vs {n_symbols}"
                )
        self.n_models = len(models)
        self.n_symbols = n_symbols
        self._n_states: List[int] = [model.n_states for model in models]
        self.max_states = max(self._n_states)
        shape = (self.n_models, self.max_states)
        self._log_prior = np.full(shape, -np.inf)
        self._log_transition = np.full(shape + (self.max_states,), -np.inf)
        self._log_emission = np.full(shape + (n_symbols,), -np.inf)
        for index, model in enumerate(models):
            n = model.n_states
            self._log_prior[index, :n] = model._log_prior
            self._log_transition[index, :n, :n] = model._log_transition
            self._log_emission[index, :n, :] = model._log_emission

    # ------------------------------------------------------------------
    # inference

    def log_likelihoods(self, observations: Sequence[int]) -> np.ndarray:
        """``log P(observations | model m)`` for every model, shape (M,).

        An empty sequence returns zeros -- the scalar contract
        (``log_likelihood([]) == 0.0``) per model.
        """
        obs = self._check_symbols(observations)
        if obs is None:
            return np.zeros(self.n_models)
        emission = self._log_emission[:, :, obs]  # (M, S, T)
        alpha = self._log_prior + emission[:, :, 0]
        transition = self._log_transition
        for t in range(1, obs.shape[0]):
            alpha = (
                _batched_logsumexp(alpha[:, :, None] + transition)
                + emission[:, :, t]
            )
        return self._finalize(alpha)

    def log_likelihood_matrix(
        self, streams: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """``log P(stream r | model m)`` for every pair, shape (R, M).

        Streams may have different lengths: shorter streams are
        masked out of later timesteps (their forward rows freeze at
        their own final step), so each row equals the single-stream
        result bit for bit.  Empty streams get all-zero rows.
        """
        checked = [self._check_symbols(stream) for stream in streams]
        n_streams = len(checked)
        result = np.zeros((n_streams, self.n_models))
        lengths = np.array(
            [0 if obs is None else obs.shape[0] for obs in checked],
            dtype=np.intp,
        )
        horizon = int(lengths.max()) if n_streams else 0
        if horizon == 0:
            return result
        obs = np.zeros((n_streams, horizon), dtype=np.intp)
        for row, stream in enumerate(checked):
            if stream is not None:
                obs[row, : stream.shape[0]] = stream
        # (R, M, S) forward rows; rows of empty streams hold garbage
        # and are overwritten with the 0.0 contract at the end.
        alpha = self._log_prior[None] + np.moveaxis(
            self._log_emission[:, :, obs[:, 0]], 2, 0
        )
        transition = self._log_transition[None]
        for t in range(1, horizon):
            step = (
                _batched_logsumexp(alpha[:, :, :, None] + transition)
                + np.moveaxis(self._log_emission[:, :, obs[:, t]], 2, 0)
            )
            np.copyto(alpha, step, where=(lengths > t)[:, None, None])
        for row in range(n_streams):
            if lengths[row]:
                result[row] = self._finalize(alpha[row])
        return result

    # ------------------------------------------------------------------
    # internals

    def _finalize(self, alpha: np.ndarray) -> np.ndarray:
        """Per-model logsumexp of the final forward rows, shape (M,).

        Runs the scalar ``_logsumexp`` on each model's unpadded slice
        so the 1-D pairwise summation matches the reference exactly
        (padded entries would reshuffle its accumulator blocking).
        """
        out = np.empty(self.n_models)
        for index in range(self.n_models):
            out[index] = _logsumexp(alpha[index, : self._n_states[index]])
        return out

    def _check_symbols(self, observations: Sequence[int]) -> Optional[np.ndarray]:
        """Validate and return ``observations`` as an int array.

        Same contract as the scalar model's check (same message, first
        offender named); ``None`` for an empty sequence.
        """
        if not isinstance(observations, (list, tuple, np.ndarray)):
            observations = list(observations)
        arr = np.asarray(observations, dtype=np.intp)
        if arr.shape[0] == 0:
            return None
        bad = (arr < 0) | (arr >= self.n_symbols)
        if bad.any():
            symbol = int(arr[int(np.argmax(bad))])
            raise ValueError(
                f"observation {symbol} outside [0, {self.n_symbols})"
            )
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedHMM(models={self.n_models}, "
            f"max_states={self.max_states}, symbols={self.n_symbols})"
        )
