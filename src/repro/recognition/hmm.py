"""A discrete hidden Markov model (log-space, numpy).

The paper's related work (Philipose et al., "Inferring activities
from interactions with objects") recognizes ADLs with probabilistic
inference over object-touch observations.  This module provides that
substrate: a classic discrete HMM with forward filtering, sequence
log-likelihood and Viterbi decoding, numerically stable in log space.

Used by :mod:`repro.recognition.repair` (fixing sensing dropouts in
training logs) and :mod:`repro.recognition.recognizer` (identifying
which ADL a usage stream belongs to).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["DiscreteHMM"]

#: Additive floor before taking logs, so impossible-but-observed
#: events degrade gracefully instead of producing -inf everywhere.
_EPS = 1e-12


class DiscreteHMM:
    """An HMM with ``n_states`` hidden states, ``n_symbols`` outputs.

    Parameters are plain row-stochastic numpy arrays:

    * ``prior``      shape (n_states,)
    * ``transition`` shape (n_states, n_states); ``transition[i, j]``
      = P(next = j | current = i)
    * ``emission``   shape (n_states, n_symbols); ``emission[i, k]``
      = P(observe k | state = i)
    """

    def __init__(
        self,
        prior: np.ndarray,
        transition: np.ndarray,
        emission: np.ndarray,
    ) -> None:
        prior = np.asarray(prior, dtype=float)
        transition = np.asarray(transition, dtype=float)
        emission = np.asarray(emission, dtype=float)
        n_states = prior.shape[0]
        if transition.shape != (n_states, n_states):
            raise ValueError(
                f"transition must be ({n_states}, {n_states}), "
                f"got {transition.shape}"
            )
        if emission.shape[0] != n_states:
            raise ValueError(
                f"emission must have {n_states} rows, got {emission.shape[0]}"
            )
        for name, matrix in (("prior", prior[None, :]),
                             ("transition", transition),
                             ("emission", emission)):
            sums = matrix.sum(axis=1)
            if not np.allclose(sums, 1.0, atol=1e-6):
                raise ValueError(f"{name} rows must sum to 1 (got {sums})")
        self.n_states = n_states
        self.n_symbols = emission.shape[1]
        self._log_prior = np.log(prior + _EPS)
        self._log_transition = np.log(transition + _EPS)
        self._log_emission = np.log(emission + _EPS)

    # ------------------------------------------------------------------
    # inference

    def log_likelihood(self, observations: Sequence[int]) -> float:
        """log P(observations) under the model (0-length -> 0.0)."""
        alpha = self._forward(observations)
        if alpha is None:
            return 0.0
        return float(_logsumexp(alpha))

    def filter(self, observations: Sequence[int]) -> np.ndarray:
        """P(state_T | observations) -- the filtering distribution."""
        alpha = self._forward(observations)
        if alpha is None:
            return np.exp(self._log_prior - _logsumexp(self._log_prior))
        return np.exp(alpha - _logsumexp(alpha))

    def viterbi(self, observations: Sequence[int]) -> Tuple[List[int], float]:
        """Most likely state path and its log probability."""
        observations = self._check_symbols(observations)
        if observations is None:
            return [], 0.0
        n = observations.shape[0]
        emission = self._log_emission[:, observations]
        delta = np.empty((n, self.n_states))
        backpointer = np.zeros((n, self.n_states), dtype=int)
        delta[0] = self._log_prior + emission[:, 0]
        for t in range(1, n):
            scores = delta[t - 1][:, None] + self._log_transition
            backpointer[t] = scores.argmax(axis=0)
            delta[t] = scores.max(axis=0) + emission[:, t]
        path = [int(delta[-1].argmax())]
        for t in range(n - 1, 0, -1):
            path.append(int(backpointer[t][path[-1]]))
        path.reverse()
        return path, float(delta[-1].max())

    # ------------------------------------------------------------------
    # internals

    def _forward(self, observations: Sequence[int]):
        """The final forward row ``alpha_T`` (``None`` for no data).

        Rolling two-row recursion: filtering and likelihood only need
        the last row, so the full ``(T, n_states)`` trellis is never
        materialized (Viterbi keeps its own, for backtracking).  The
        per-step emission columns are gathered once up front.
        """
        observations = self._check_symbols(observations)
        if observations is None:
            return None
        emission = self._log_emission[:, observations]
        alpha = self._log_prior + emission[:, 0]
        transition = self._log_transition
        for t in range(1, observations.shape[0]):
            alpha = (
                _logsumexp_matrix(alpha[:, None] + transition)
                + emission[:, t]
            )
        return alpha

    def _check_symbols(self, observations: Sequence[int]):
        """Validate and return ``observations`` as an int array.

        One vectorized bounds check instead of a per-symbol Python
        loop; the error message names the first offending symbol, as
        the scalar loop did.  Returns ``None`` for an empty sequence.
        """
        if not isinstance(observations, (list, tuple, np.ndarray)):
            observations = list(observations)
        arr = np.asarray(observations, dtype=np.intp)
        if arr.shape[0] == 0:
            return None
        bad = (arr < 0) | (arr >= self.n_symbols)
        if bad.any():
            symbol = int(arr[int(np.argmax(bad))])
            raise ValueError(
                f"observation {symbol} outside [0, {self.n_symbols})"
            )
        return arr


def _logsumexp(values: np.ndarray) -> float:
    peak = values.max()
    if np.isneginf(peak):
        return float("-inf")
    return float(peak + np.log(np.exp(values - peak).sum()))


def _logsumexp_matrix(matrix: np.ndarray) -> np.ndarray:
    """Column-wise logsumexp of a (states, states) score matrix."""
    peak = matrix.max(axis=0)
    safe = np.where(np.isneginf(peak), 0.0, peak)
    return safe + np.log(np.exp(matrix - safe[None, :]).sum(axis=0))
