"""ADL recognition: which activity does a usage stream belong to?

A care home deploys CoReDA for many activities at once; before
guiding, the server must decide *which* ADL an incoming usage stream
is (the problem of the paper's related work [2], solved there with
RFID + probabilistic inference).  The recognizer scores the stream
under one routine-structured HMM per candidate ADL and classifies by
posterior.

With the shipped ADL library the tool-id spaces are disjoint, so the
interesting cases are noisy ones: substituted detections (a foreign
tool id in the stream) and gappy streams — both handled by the HMM's
noise floors rather than brittle set-membership.

Under the default ``"batched"`` inference backend the candidate
models are additionally stacked into one :class:`~repro.recognition.
batch.BatchedHMM`, so a posterior costs one forward recursion instead
of one per candidate, and whole fleets of streams can be classified
in a single call (:meth:`ActivityRecognizer.classify_batch`).  The
``"scalar"`` backend keeps the per-model loop as the bit-identical
reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.adl import ADL
from repro.core.config import default_infer_backend
from repro.recognition.batch import BatchedHMM
from repro.recognition.hmm import DiscreteHMM

__all__ = ["ActivityRecognizer"]


class ActivityRecognizer:
    """Maximum-posterior ADL identification over usage streams."""

    def __init__(
        self,
        adls: Sequence[ADL],
        miss_probability: float = 0.15,
        substitution_noise: float = 0.05,
        backend: Optional[str] = None,
    ) -> None:
        if not adls:
            raise ValueError("need at least one candidate ADL")
        if backend is None:
            backend = default_infer_backend()
        if backend not in ("batched", "scalar"):
            raise ValueError(
                f"backend must be 'batched' or 'scalar', got {backend!r}"
            )
        self.backend = backend
        self.adls = list(adls)
        # One shared symbol alphabet across all candidates, so
        # likelihoods are comparable.
        tools = sorted(
            {step_id for adl in self.adls for step_id in adl.step_ids}
        )
        self._tool_to_symbol = {tool: index for index, tool in enumerate(tools)}
        n_symbols = len(tools)
        self._models: Dict[str, DiscreteHMM] = {}
        for adl in self.adls:
            self._models[adl.name] = self._build_model(
                adl, n_symbols, miss_probability, substitution_noise
            )
        # Model stack in candidate order (== dict insertion order), so
        # batched likelihood vectors zip back onto names losslessly.
        self._names: List[str] = [adl.name for adl in self.adls]
        self._batched: Optional[BatchedHMM] = (
            BatchedHMM([self._models[name] for name in self._names])
            if backend == "batched"
            else None
        )

    def _build_model(
        self,
        adl: ADL,
        n_symbols: int,
        miss_probability: float,
        substitution_noise: float,
    ) -> DiscreteHMM:
        positions = len(adl.step_ids)
        prior = np.array(
            [miss_probability**k for k in range(positions)], dtype=float
        )
        prior /= prior.sum()
        transition = np.zeros((positions, positions))
        for i in range(positions):
            weights = {
                j: miss_probability ** (j - i - 1)
                for j in range(i + 1, positions)
            }
            if not weights:
                transition[i, i] = 1.0
                continue
            total = sum(weights.values())
            for j, weight in weights.items():
                transition[i, j] = weight / total
        emission = np.full(
            (positions, n_symbols), substitution_noise / max(n_symbols - 1, 1)
        )
        for position, step_id in enumerate(adl.step_ids):
            emission[position, self._tool_to_symbol[step_id]] = (
                1.0 - substitution_noise
            )
        emission /= emission.sum(axis=1, keepdims=True)
        return DiscreteHMM(prior, transition, emission)

    def _effective_symbols(self, observed: Sequence[int]) -> List[int]:
        """The stream mapped onto the shared alphabet (unknowns dropped)."""
        return [
            self._tool_to_symbol[tool]
            for tool in observed
            if tool in self._tool_to_symbol
        ]

    def _posterior_from_likelihoods(
        self, log_likelihoods: Sequence[float]
    ) -> Dict[str, float]:
        """Normalize per-candidate log-likelihoods (uniform prior)."""
        peak = max(log_likelihoods)
        weights = [float(np.exp(value - peak)) for value in log_likelihoods]
        total = sum(weights)
        return {
            name: weight / total
            for name, weight in zip(self._names, weights)
        }

    def posterior(self, observed: Sequence[int]) -> Dict[str, float]:
        """P(ADL | usage stream), uniform prior over candidates.

        Tools outside every candidate's alphabet are ignored; an
        empty effective stream returns the uniform prior.
        """
        symbols = self._effective_symbols(observed)
        if not symbols:
            uniform = 1.0 / len(self.adls)
            return {adl.name: uniform for adl in self.adls}
        if self._batched is not None:
            values = self._batched.log_likelihoods(symbols).tolist()
        else:
            values = [
                self._models[name].log_likelihood(symbols)
                for name in self._names
            ]
        return self._posterior_from_likelihoods(values)

    def classify(self, observed: Sequence[int]) -> str:
        """The maximum-posterior ADL name (ties break alphabetically)."""
        posterior = self.posterior(observed)
        return max(sorted(posterior), key=lambda name: posterior[name])

    def posterior_batch(
        self, streams: Sequence[Sequence[int]]
    ) -> List[Dict[str, float]]:
        """One posterior dict per stream, in stream order.

        On the batched backend every stream of every candidate runs
        through a single stacked forward recursion; on the scalar
        backend this is just a loop over :meth:`posterior`.  The
        outputs are bit-identical either way.
        """
        if self._batched is None:
            return [self.posterior(stream) for stream in streams]
        effective = [self._effective_symbols(stream) for stream in streams]
        nonempty = [sym for sym in effective if sym]
        matrix = self._batched.log_likelihood_matrix(nonempty)
        uniform = 1.0 / len(self.adls)
        posteriors = []
        row = 0
        for symbols in effective:
            if not symbols:
                posteriors.append({adl.name: uniform for adl in self.adls})
                continue
            posteriors.append(
                self._posterior_from_likelihoods(matrix[row].tolist())
            )
            row += 1
        return posteriors

    def classify_batch(self, streams: Sequence[Sequence[int]]) -> List[str]:
        """The maximum-posterior ADL name per stream, in stream order."""
        return [
            max(sorted(posterior), key=lambda name: posterior[name])
            for posterior in self.posterior_batch(streams)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivityRecognizer(candidates={[a.name for a in self.adls]})"
