"""ADL recognition: which activity does a usage stream belong to?

A care home deploys CoReDA for many activities at once; before
guiding, the server must decide *which* ADL an incoming usage stream
is (the problem of the paper's related work [2], solved there with
RFID + probabilistic inference).  The recognizer scores the stream
under one routine-structured HMM per candidate ADL and classifies by
posterior.

With the shipped ADL library the tool-id spaces are disjoint, so the
interesting cases are noisy ones: substituted detections (a foreign
tool id in the stream) and gappy streams — both handled by the HMM's
noise floors rather than brittle set-membership.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.adl import ADL
from repro.recognition.hmm import DiscreteHMM

__all__ = ["ActivityRecognizer"]


class ActivityRecognizer:
    """Maximum-posterior ADL identification over usage streams."""

    def __init__(
        self,
        adls: Sequence[ADL],
        miss_probability: float = 0.15,
        substitution_noise: float = 0.05,
    ) -> None:
        if not adls:
            raise ValueError("need at least one candidate ADL")
        self.adls = list(adls)
        # One shared symbol alphabet across all candidates, so
        # likelihoods are comparable.
        tools = sorted(
            {step_id for adl in self.adls for step_id in adl.step_ids}
        )
        self._tool_to_symbol = {tool: index for index, tool in enumerate(tools)}
        n_symbols = len(tools)
        self._models: Dict[str, DiscreteHMM] = {}
        for adl in self.adls:
            self._models[adl.name] = self._build_model(
                adl, n_symbols, miss_probability, substitution_noise
            )

    def _build_model(
        self,
        adl: ADL,
        n_symbols: int,
        miss_probability: float,
        substitution_noise: float,
    ) -> DiscreteHMM:
        positions = len(adl.step_ids)
        prior = np.array(
            [miss_probability**k for k in range(positions)], dtype=float
        )
        prior /= prior.sum()
        transition = np.zeros((positions, positions))
        for i in range(positions):
            weights = {
                j: miss_probability ** (j - i - 1)
                for j in range(i + 1, positions)
            }
            if not weights:
                transition[i, i] = 1.0
                continue
            total = sum(weights.values())
            for j, weight in weights.items():
                transition[i, j] = weight / total
        emission = np.full(
            (positions, n_symbols), substitution_noise / max(n_symbols - 1, 1)
        )
        for position, step_id in enumerate(adl.step_ids):
            emission[position, self._tool_to_symbol[step_id]] = (
                1.0 - substitution_noise
            )
        emission /= emission.sum(axis=1, keepdims=True)
        return DiscreteHMM(prior, transition, emission)

    def posterior(self, observed: Sequence[int]) -> Dict[str, float]:
        """P(ADL | usage stream), uniform prior over candidates.

        Tools outside every candidate's alphabet are ignored; an
        empty effective stream returns the uniform prior.
        """
        symbols = [
            self._tool_to_symbol[tool]
            for tool in observed
            if tool in self._tool_to_symbol
        ]
        if not symbols:
            uniform = 1.0 / len(self.adls)
            return {adl.name: uniform for adl in self.adls}
        log_likelihoods = {
            name: model.log_likelihood(symbols)
            for name, model in self._models.items()
        }
        peak = max(log_likelihoods.values())
        weights = {
            name: float(np.exp(value - peak))
            for name, value in log_likelihoods.items()
        }
        total = sum(weights.values())
        return {name: weight / total for name, weight in weights.items()}

    def classify(self, observed: Sequence[int]) -> str:
        """The maximum-posterior ADL name (ties break alphabetically)."""
        posterior = self.posterior(observed)
        return max(sorted(posterior), key=lambda name: posterior[name])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivityRecognizer(candidates={[a.name for a in self.adls]})"
