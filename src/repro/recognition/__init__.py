"""Probabilistic recognition over usage streams (HMM substrate).

The paper's related work [2] infers activities from object
interactions with probabilistic models; this package provides that
capability on CoReDA's usage streams: a generic discrete HMM,
gappy-log repair against a known routine, and multi-ADL stream
classification.
"""

from repro.recognition.batch import BatchedHMM
from repro.recognition.hmm import DiscreteHMM
from repro.recognition.recognizer import ActivityRecognizer
from repro.recognition.repair import EpisodeRepairer

__all__ = [
    "ActivityRecognizer",
    "BatchedHMM",
    "DiscreteHMM",
    "EpisodeRepairer",
]
