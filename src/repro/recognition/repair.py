"""Episode repair: fixing sensing dropouts in training logs.

Table 3 shows the sensing subsystem misses short steps ~15-20% of the
time, so real training logs are *gappy*: a recorded tea-making run
may read ``[tea-box, kettle, tea-cup]`` with the pot step missing.
Training directly on gappy logs teaches wrong transitions (tea-box →
kettle).

:class:`EpisodeRepairer` rebuilds the most likely complete run with a
routine-structured HMM:

* hidden state = position in the known routine;
* transitions advance by one position per observation, with geometric
  probability of having *skipped* positions (a skip = a missed
  detection);
* emissions are the position's tool, with a small substitution noise.

Viterbi over the observed tools yields the most likely positions;
the skipped positions in between are re-inserted.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.adl import Routine
from repro.recognition.hmm import DiscreteHMM

__all__ = ["EpisodeRepairer"]


class EpisodeRepairer:
    """Repairs gappy episode logs against a known routine."""

    def __init__(
        self,
        routine: Routine,
        miss_probability: float = 0.15,
        substitution_noise: float = 0.02,
    ) -> None:
        if not 0.0 <= miss_probability < 1.0:
            raise ValueError("miss_probability must be in [0, 1)")
        if not 0.0 <= substitution_noise < 1.0:
            raise ValueError("substitution_noise must be in [0, 1)")
        self.routine = routine
        self.miss_probability = miss_probability
        positions = len(routine.step_ids)
        tools = sorted(routine.adl.step_ids)
        self._tool_to_symbol: Dict[int, int] = {
            tool: index for index, tool in enumerate(tools)
        }
        self._symbols = tools
        n_symbols = len(tools)

        # Prior: the first *observed* tool is position k if positions
        # 0..k-1 were all missed.
        prior = np.array(
            [miss_probability**k for k in range(positions)], dtype=float
        )
        prior /= prior.sum()

        # Transition: from position i the next observation comes from
        # position j > i, having missed j-i-1 detections in between.
        transition = np.zeros((positions, positions))
        for i in range(positions):
            weights = {
                j: miss_probability ** (j - i - 1)
                for j in range(i + 1, positions)
            }
            if not weights:
                transition[i, i] = 1.0  # terminal position absorbs
                continue
            total = sum(weights.values())
            for j, weight in weights.items():
                transition[i, j] = weight / total

        emission = np.full(
            (positions, n_symbols), substitution_noise / max(n_symbols - 1, 1)
        )
        for position, step_id in enumerate(routine.step_ids):
            emission[position, self._tool_to_symbol[step_id]] = (
                1.0 - substitution_noise
            )
        emission /= emission.sum(axis=1, keepdims=True)
        self._hmm = DiscreteHMM(prior, transition, emission)

    def repair(self, observed: Sequence[int]) -> List[int]:
        """The most likely complete step sequence behind ``observed``.

        Tools that do not belong to the ADL are dropped (foreign
        detections); an empty observation list repairs to the full
        routine (the run happened, the radio was down).
        """
        symbols = [
            self._tool_to_symbol[tool]
            for tool in observed
            if tool in self._tool_to_symbol
        ]
        if not symbols:
            return list(self.routine.step_ids)
        path, _ = self._hmm.viterbi(symbols)
        # Re-insert every routine position from the start through the
        # last decoded one; positions beyond the final observation are
        # unknown (the run may genuinely have been cut short).
        last_position = path[-1]
        return list(self.routine.step_ids[: last_position + 1])

    def repair_all(
        self, episodes: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Repair a whole training log."""
        return [self.repair(episode) for episode in episodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpisodeRepairer(routine={list(self.routine.step_ids)}, "
            f"miss={self.miss_probability})"
        )
