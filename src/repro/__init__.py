"""CoReDA: a Context-aware Reminding system for Daily Activities.

A complete reproduction of Si, Kim, Kawanishi & Morikawa (ICDCS 2007):
a ubiquitous guidance system that senses tool usage through simulated
PAVENET wireless sensor nodes, learns each user's personal routine
for an Activity of Daily Living with TD(λ) Q-learning, and delivers
minimal/specific reminders (text, picture, LED) when the user stalls
or uses the wrong tool.

Quickstart::

    from repro import CoReDA, CoReDAConfig
    from repro.adls import default_registry

    definition = default_registry().get("tea-making")
    system = CoReDA.build(definition, CoReDAConfig(seed=7))
    system.train_offline(episodes=120)
    outcome = system.run_episode(system.create_resident())

Subpackages
-----------
``repro.core``      data model, events, configuration, orchestrator
``repro.sim``       discrete-event simulation kernel
``repro.sensors``   PAVENET node substrate (signals, detector, radio)
``repro.sensing``   sensing subsystem (StepID extraction)
``repro.rl``        tabular RL toolbox (TD(λ) Q-learning and friends)
``repro.planning``  planning subsystem (training, prediction, prompts)
``repro.reminding`` reminding subsystem (display, LEDs, escalation)
``repro.resident``  simulated care recipients
``repro.adls``      ADL library (tea-making, tooth-brushing, ...)
``repro.baselines`` comparison systems (fixed plan, bigram, MDP)
``repro.evalx``     the paper's tables and figures, regenerable
"""

from repro.core import (
    ADL,
    ADLStep,
    CoReDA,
    CoReDAConfig,
    CoReDAError,
    ReminderLevel,
    Routine,
    SensorType,
    Tool,
)

__version__ = "1.0.0"

__all__ = [
    "ADL",
    "ADLStep",
    "CoReDA",
    "CoReDAConfig",
    "CoReDAError",
    "ReminderLevel",
    "Routine",
    "SensorType",
    "Tool",
    "__version__",
]
