"""Personal-routine generation.

"Keep the dementia patients do ADLs as they did before" is the
paper's first care principle -- every resident has their own step
order.  This module derives personalized routines from an ADL's
canonical order, and produces the clean training-episode logs the
planning subsystem learns from (the paper's "120 training samples").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.adl import ADL, Routine

__all__ = ["personalized_routine", "training_episodes", "noisy_episodes"]


def personalized_routine(
    adl: ADL,
    rng: np.random.Generator,
    shuffle_probability: float = 0.5,
) -> Routine:
    """A per-user routine: canonical order, possibly reshuffled inside.

    With ``shuffle_probability`` the *interior* steps are permuted;
    the first step (the episode trigger) and the terminal step (the
    activity's goal) stay fixed, which keeps every generated routine
    a sensible way to perform the activity.
    """
    ids = list(adl.step_ids)
    if len(ids) > 3 and rng.random() < shuffle_probability:
        interior = ids[1:-1]
        rng.shuffle(interior)
        ids = [ids[0]] + interior + [ids[-1]]
    return Routine(adl, ids)


def training_episodes(routine: Routine, count: int) -> List[List[int]]:
    """``count`` clean complete runs of ``routine``.

    The paper's training samples are error-free complete processes;
    repetition (rather than variation) is faithful to that setup.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    return [list(routine.step_ids) for _ in range(count)]


def noisy_episodes(
    routine: Routine,
    count: int,
    rng: np.random.Generator,
    miss_probability: float = 0.05,
    min_length: int = 2,
) -> List[List[int]]:
    """Training episodes with sensing dropouts.

    Each step is independently missing with ``miss_probability``
    (modelling a lost detection); episodes shorter than
    ``min_length`` after dropout are regenerated clean.  Used by the
    robustness tests to show TD(λ) still converges on imperfect logs.
    """
    if not 0.0 <= miss_probability < 1.0:
        raise ValueError("miss_probability must be in [0, 1)")
    episodes: List[List[int]] = []
    for _ in range(count):
        kept = [
            step_id
            for step_id in routine.step_ids
            if rng.random() >= miss_probability
        ]
        if len(kept) < min_length or kept[-1] != routine.terminal_step_id:
            kept = list(routine.step_ids)
        episodes.append(kept)
    return episodes
