"""Population generation for cohort studies.

The paper's partner NPO cares for 25 patients aged 72-91 with varying
dementia severity.  :func:`generate_population` produces a comparable
synthetic cohort: each member gets their own routine (per care
principle 1, "keep the dementia patients do ADLs as they did
before"), severity and compliance behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.adl import ADL, Routine
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile
from repro.resident.routines import personalized_routine
from repro.sim.random import RandomStreams

__all__ = ["ResidentProfile", "generate_population"]


@dataclass(frozen=True)
class ResidentProfile:
    """The static description of one cohort member."""

    name: str
    age: int
    severity: float
    routine: Routine
    dementia: DementiaProfile
    compliance: ComplianceModel


def generate_population(
    adl: ADL,
    count: int,
    streams: RandomStreams,
    min_age: int = 72,
    max_age: int = 91,
    max_severity: float = 0.8,
) -> List[ResidentProfile]:
    """A synthetic cohort of ``count`` residents for one ADL.

    Ages are uniform over the NPO cohort's range; severity is uniform
    in [0.1, ``max_severity``]; roughly half the cohort uses a
    personalized (non-canonical) routine.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if not 0.1 <= max_severity <= 1.0:
        raise ValueError(
            f"max_severity must be in [0.1, 1.0], got {max_severity}"
        )
    if min_age > max_age:
        raise ValueError(
            f"min_age ({min_age}) must not exceed max_age ({max_age})"
        )
    rng = streams.get("population")
    profiles = []
    for index in range(count):
        severity = float(rng.uniform(0.1, max_severity))
        compliance = ComplianceModel(
            minimal_response=float(rng.uniform(0.7, 0.95)),
            specific_response=float(rng.uniform(0.95, 1.0)),
            delay_mean=float(rng.uniform(2.0, 6.0)),
            delay_sd=1.0,
        )
        profiles.append(
            ResidentProfile(
                name=f"resident-{index:02d}",
                age=int(rng.integers(min_age, max_age + 1)),
                severity=severity,
                routine=personalized_routine(adl, rng),
                dementia=DementiaProfile.from_severity(severity),
                compliance=compliance,
            )
        )
    return profiles
