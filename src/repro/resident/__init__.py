"""Simulated care recipients: routines, errors, compliance, cohorts."""

from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile, ErrorKind, ScriptedError
from repro.resident.model import EpisodeOutcome, Resident
from repro.resident.population import ResidentProfile, generate_population
from repro.resident.routines import (
    noisy_episodes,
    personalized_routine,
    training_episodes,
)

__all__ = [
    "ComplianceModel",
    "DementiaProfile",
    "EpisodeOutcome",
    "ErrorKind",
    "Resident",
    "ResidentProfile",
    "ScriptedError",
    "generate_population",
    "noisy_episodes",
    "personalized_routine",
    "training_episodes",
]
