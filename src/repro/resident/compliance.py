"""Prompt-compliance modelling.

Whether a reminder actually gets the user moving depends on its
level: a specific prompt (name, long message, more blinks) is more
salient than a minimal one.  The compliance model captures that with
per-level response probabilities and a lognormal-ish response delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adl import ReminderLevel

__all__ = ["ComplianceModel"]


@dataclass(frozen=True)
class ComplianceModel:
    """Per-level response behaviour of one resident."""

    #: Probability a MINIMAL reminder is acted on.
    minimal_response: float = 0.85
    #: Probability a SPECIFIC reminder is acted on.
    specific_response: float = 0.97
    #: Mean seconds between noticing a reminder and acting.
    delay_mean: float = 4.0
    #: Delay spread (truncated normal; never below delay_floor).
    delay_sd: float = 1.5
    delay_floor: float = 0.5

    def __post_init__(self) -> None:
        for p in (self.minimal_response, self.specific_response):
            if not 0.0 <= p <= 1.0:
                raise ValueError("response probabilities must be in [0, 1]")
        if self.minimal_response > self.specific_response:
            raise ValueError(
                "specific prompts must be at least as effective as minimal"
            )
        if self.delay_mean <= 0 or self.delay_floor <= 0:
            raise ValueError("delays must be positive")

    def responds(self, level: ReminderLevel, rng: np.random.Generator) -> bool:
        """Does the resident act on a reminder of this level?"""
        probability = (
            self.minimal_response
            if level is ReminderLevel.MINIMAL
            else self.specific_response
        )
        return bool(rng.random() < probability)

    def response_delay(self, rng: np.random.Generator) -> float:
        """Seconds before the resident starts the prompted step."""
        return float(max(rng.normal(self.delay_mean, self.delay_sd), self.delay_floor))

    @classmethod
    def perfect(cls) -> "ComplianceModel":
        """Always responds, minimal delay (deterministic scenarios)."""
        return cls(
            minimal_response=1.0,
            specific_response=1.0,
            delay_mean=2.0,
            delay_sd=0.0,
            delay_floor=0.5,
        )
