"""Dementia error models.

The paper's care observations motivate two reminder triggers: the
user *stalls* (forgets the next step and does nothing) or *uses the
wrong tool*.  We add perseveration (re-doing the step just finished),
a third error mode well documented in the dementia literature, used
by robustness tests.  Error probabilities scale with a severity knob
so population studies can span the NPO cohort's range ("ages 72-91",
mild to severe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ErrorKind", "DementiaProfile", "ScriptedError"]


class ErrorKind:
    """String constants for the error modes."""

    NONE = "none"
    STALL = "stall"
    WRONG_TOOL = "wrong_tool"
    PERSEVERATE = "perseverate"


@dataclass(frozen=True)
class ScriptedError:
    """A deterministic error injected at a specific step index.

    Used by the Figure 1 scenario harness, which needs the wrong tool
    at step 2 and the stall at step 4 to happen exactly.
    """

    kind: str
    wrong_tool_id: Optional[int] = None

    def __post_init__(self) -> None:
        valid = {ErrorKind.STALL, ErrorKind.WRONG_TOOL, ErrorKind.PERSEVERATE}
        if self.kind not in valid:
            raise ValueError(f"unknown error kind {self.kind!r}")
        if self.kind == ErrorKind.WRONG_TOOL and self.wrong_tool_id is None:
            raise ValueError("wrong_tool errors need a wrong_tool_id")


@dataclass(frozen=True)
class DementiaProfile:
    """Per-step error probabilities of one resident."""

    stall_probability: float = 0.1
    wrong_tool_probability: float = 0.1
    perseveration_probability: float = 0.0

    def __post_init__(self) -> None:
        total = (
            self.stall_probability
            + self.wrong_tool_probability
            + self.perseveration_probability
        )
        if total > 1.0:
            raise ValueError(f"error probabilities sum to {total} > 1")
        for value in (
            self.stall_probability,
            self.wrong_tool_probability,
            self.perseveration_probability,
        ):
            if value < 0:
                raise ValueError("error probabilities must be >= 0")

    @classmethod
    def from_severity(cls, severity: float) -> "DementiaProfile":
        """Scale error rates from a severity in [0, 1].

        severity 0 -> error-free; severity 1 -> errors on roughly
        two-thirds of steps.
        """
        if not 0.0 <= severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        return cls(
            stall_probability=0.35 * severity,
            wrong_tool_probability=0.25 * severity,
            perseveration_probability=0.05 * severity,
        )

    @classmethod
    def none(cls) -> "DementiaProfile":
        """An error-free profile (used to record training samples)."""
        return cls(0.0, 0.0, 0.0)

    def draw_error(self, rng: np.random.Generator) -> str:
        """Sample the error mode for one step."""
        roll = rng.random()
        if roll < self.stall_probability:
            return ErrorKind.STALL
        roll -= self.stall_probability
        if roll < self.wrong_tool_probability:
            return ErrorKind.WRONG_TOOL
        roll -= self.wrong_tool_probability
        if roll < self.perseveration_probability:
            return ErrorKind.PERSEVERATE
        return ErrorKind.NONE
