"""The behaving resident: a simulated care recipient.

The resident executes their personal routine as a simulation process,
physically driving the signal sources of the sensor network (so the
whole pipeline -- sampling, detection, radio, step extraction,
planning, reminding -- is exercised end to end), injecting dementia
errors, and reacting to reminders according to a compliance model.

Error handling mirrors the paper's two trigger situations:

* **stall** -- the resident does nothing until a reminder for the
  right tool arrives (or self-recovers after a long timeout);
* **wrong tool** -- the resident briefly uses another tool, then
  waits for guidance;
* **perseveration** -- the resident re-handles the previous tool
  (invisible as a step change, so it presents to the system as a
  stall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.adl import Routine
from repro.core.bus import EventBus
from repro.core.events import ReminderEvent
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile, ErrorKind, ScriptedError
from repro.sensors.network import SensorNetwork
from repro.sim.kernel import Signal, Simulator
from repro.sim.process import Process, Timeout, Wait
from repro.sim.tracing import TraceRecorder

__all__ = ["EpisodeOutcome", "Resident"]


@dataclass
class EpisodeOutcome:
    """What happened during one episode attempt."""

    completed: bool
    duration: float
    reminders_seen: int
    reminders_followed: int
    self_recoveries: int


class Resident:
    """A simulated dementia patient performing one ADL.

    ``error_script`` maps a 0-based step index to a
    :class:`ScriptedError` for deterministic scenarios (Figure 1);
    otherwise errors are drawn from ``dementia`` per step.  Stochastic
    errors are never drawn at index 0: before the first tool is
    touched the system has nothing to predict from (paper section
    3.3), so a first-step error would only measure the self-recovery
    fallback.
    """

    def __init__(
        self,
        sim: Simulator,
        routine: Routine,
        network: SensorNetwork,
        bus: EventBus,
        rng: np.random.Generator,
        dementia: Optional[DementiaProfile] = None,
        compliance: Optional[ComplianceModel] = None,
        error_script: Optional[Dict[int, ScriptedError]] = None,
        dwell_overrides: Optional[Dict[int, float]] = None,
        handling_overrides: Optional[Dict[int, float]] = None,
        error_use_duration: float = 3.0,
        prompt_wait_timeout: float = 120.0,
        name: str = "resident",
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.routine = routine
        self.adl = routine.adl
        self.network = network
        self.bus = bus
        self.name = name
        self._rng = rng
        self.dementia = dementia if dementia is not None else DementiaProfile.none()
        self.compliance = (
            compliance if compliance is not None else ComplianceModel()
        )
        self.error_script = dict(error_script or {})
        self.dwell_overrides = dict(dwell_overrides or {})
        self.handling_overrides = dict(handling_overrides or {})
        self.error_use_duration = error_use_duration
        self.prompt_wait_timeout = prompt_wait_timeout
        self._trace = trace
        self._reminder_queue: List[ReminderEvent] = []
        self._reminder_signal = Signal(f"{name}.reminders")
        self.outcome: Optional[EpisodeOutcome] = None
        self._reminders_seen = 0
        self._reminders_followed = 0
        self._self_recoveries = 0
        bus.subscribe(ReminderEvent, self._on_reminder)

    # ------------------------------------------------------------------
    # public API

    def start_episode(self) -> Process:
        """Spawn the episode process; returns it for completion checks."""
        return Process(
            self.sim, self._episode(), name=f"{self.name}.episode"
        )

    # ------------------------------------------------------------------
    # reminders

    def _on_reminder(self, reminder: ReminderEvent) -> None:
        self._reminder_queue.append(reminder)
        self._reminders_seen += 1
        self._reminder_signal.fire(reminder)

    def _pop_reminder(self, expected_tool_id: int) -> Optional[ReminderEvent]:
        for index, reminder in enumerate(self._reminder_queue):
            if reminder.tool_id == expected_tool_id:
                del self._reminder_queue[index]
                return reminder
        return None

    # ------------------------------------------------------------------
    # behaviour

    def _episode(self):
        start = self.sim.now
        previous_tool: Optional[int] = None
        for index, step_id in enumerate(self.routine.step_ids):
            error = self._decide_error(index, previous_tool)
            if error is not None:
                yield from self._act_out_error(error, step_id, previous_tool)
            yield from self._perform_step(step_id, is_last=step_id == self.routine.terminal_step_id)
            previous_tool = step_id
        self.outcome = EpisodeOutcome(
            completed=True,
            duration=self.sim.now - start,
            reminders_seen=self._reminders_seen,
            reminders_followed=self._reminders_followed,
            self_recoveries=self._self_recoveries,
        )
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, "resident.completed", duration=self.outcome.duration
            )
        return self.outcome

    def _decide_error(
        self, index: int, previous_tool: Optional[int]
    ) -> Optional[ScriptedError]:
        if index in self.error_script:
            return self.error_script[index]
        if index == 0:
            return None
        kind = self.dementia.draw_error(self._rng)
        if kind == ErrorKind.NONE:
            return None
        if kind == ErrorKind.WRONG_TOOL:
            wrong = self._pick_wrong_tool(index, previous_tool)
            if wrong is None:
                return None
            return ScriptedError(kind=kind, wrong_tool_id=wrong)
        if kind == ErrorKind.PERSEVERATE and previous_tool is None:
            return None
        return ScriptedError(kind=kind)

    def _pick_wrong_tool(
        self, index: int, previous_tool: Optional[int]
    ) -> Optional[int]:
        expected = self.routine.step_ids[index]
        candidates = [
            tool.tool_id
            for tool in self.adl.tools
            if tool.tool_id not in (expected, previous_tool)
        ]
        if not candidates:
            return None
        return int(candidates[int(self._rng.integers(len(candidates)))])

    def _act_out_error(self, error: ScriptedError, expected_step_id: int, previous_tool):
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "resident.error",
                kind=error.kind,
                expected=expected_step_id,
                wrong_tool=error.wrong_tool_id,
            )
        if error.kind == ErrorKind.WRONG_TOOL:
            assert error.wrong_tool_id is not None
            yield from self._use_tool(error.wrong_tool_id, self.error_use_duration)
        elif error.kind == ErrorKind.PERSEVERATE and previous_tool is not None:
            yield from self._use_tool(previous_tool, self.error_use_duration)
        yield from self._await_prompt(expected_step_id)

    def _await_prompt(self, expected_tool_id: int):
        """Wait until a compliant reminder for the right tool arrives."""
        while True:
            reminder = self._pop_reminder(expected_tool_id)
            if reminder is None:
                payload = yield Wait(
                    self._reminder_signal, timeout=self.prompt_wait_timeout
                )
                if payload is Wait.TIMED_OUT:
                    # No (answerable) guidance came: the resident
                    # eventually remembers on their own.
                    self._self_recoveries += 1
                    if self._trace is not None:
                        self._trace.emit(self.sim.now, "resident.self_recovery")
                    return
                continue
            if self.compliance.responds(reminder.level, self._rng):
                self._reminders_followed += 1
                yield Timeout(self.compliance.response_delay(self._rng))
                return
            # The reminder went unnoticed; wait for the escalation.

    def _perform_step(self, step_id: int, is_last: bool):
        step = self.adl.step(step_id)
        dwell = self.dwell_overrides.get(step_id)
        if dwell is None:
            dwell = float(
                max(
                    self._rng.normal(step.typical_duration, step.duration_sd),
                    step.handling_duration + 0.5,
                )
            )
        handling = self.handling_overrides.get(step_id, step.handling_duration)
        handling = min(handling, dwell - 0.2)
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "resident.step",
                step_id=step_id,
                dwell=dwell,
                handling=handling,
            )
        source = self.network.source(step_id)
        source.begin_use(self.sim.now, handling)
        # The final step's dwell does not delay episode completion
        # accounting, but the tool is still handled to its end.
        yield Timeout(handling if is_last else dwell)

    def _use_tool(self, tool_id: int, duration: float):
        source = self.network.source(tool_id)
        source.begin_use(self.sim.now, duration)
        yield Timeout(duration + 0.5)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resident({self.name!r}, adl={self.adl.name!r})"
