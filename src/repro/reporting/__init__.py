"""Caregiver-facing reporting over deployment sessions."""

from repro.reporting.caregiver import CaregiverReport, StepStruggle

__all__ = ["CaregiverReport", "StepStruggle"]
