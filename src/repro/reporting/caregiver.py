"""Caregiver summaries of deployment sessions.

The paper's goal is reducing caregiver burden; the operational
artifact a care home needs from a reminder system is the *summary*:
which activities were completed, how much prompting each needed,
which steps the resident struggles with, and whether the system ever
gave up (a caregiver alert).  :class:`CaregiverReport` builds that
from a :class:`~repro.core.session.SessionLog` plus the reminding
subsystem's counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.adl import ADL, ReminderLevel
from repro.core.events import TriggerReason
from repro.core.session import SessionLog
from repro.evalx.tables import format_table

__all__ = ["StepStruggle", "CaregiverReport"]


@dataclass(frozen=True)
class StepStruggle:
    """How often one step needed prompting."""

    step_name: str
    reminders: int
    stalls: int
    wrong_tools: int


@dataclass
class CaregiverReport:
    """A session-level summary for the care team."""

    adl_name: str
    episodes_completed: int
    reminders_total: int
    reminders_per_episode: float
    minimal_reminders: int
    specific_reminders: int
    stall_reminders: int
    wrong_tool_reminders: int
    praises: int
    caregiver_alerts: int
    struggles: List[StepStruggle] = field(default_factory=list)

    @classmethod
    def from_session(
        cls,
        session: SessionLog,
        adl: ADL,
        caregiver_alerts: int = 0,
    ) -> "CaregiverReport":
        """Aggregate a session into a report."""
        by_level = Counter(reminder.level for reminder in session.reminders)
        by_reason = Counter(reminder.reason for reminder in session.reminders)
        per_step: Dict[int, Counter] = {}
        for reminder in session.reminders:
            counter = per_step.setdefault(reminder.tool_id, Counter())
            counter["total"] += 1
            if reminder.reason is TriggerReason.STALL:
                counter["stall"] += 1
            else:
                counter["wrong"] += 1
        struggles = [
            StepStruggle(
                step_name=adl.step(tool_id).name,
                reminders=counter["total"],
                stalls=counter["stall"],
                wrong_tools=counter["wrong"],
            )
            for tool_id, counter in sorted(
                per_step.items(), key=lambda item: -item[1]["total"]
            )
            if adl.has_step(tool_id)
        ]
        return cls(
            adl_name=adl.name,
            episodes_completed=session.completions,
            reminders_total=len(session.reminders),
            reminders_per_episode=session.reminders_per_episode(),
            minimal_reminders=by_level.get(ReminderLevel.MINIMAL, 0),
            specific_reminders=by_level.get(ReminderLevel.SPECIFIC, 0),
            stall_reminders=by_reason.get(TriggerReason.STALL, 0),
            wrong_tool_reminders=by_reason.get(TriggerReason.WRONG_TOOL, 0),
            praises=session.praises,
            caregiver_alerts=caregiver_alerts,
            struggles=struggles,
        )

    @property
    def independence_ratio(self) -> Optional[float]:
        """Fraction of reminders kept at the MINIMAL level.

        The design goal behind the 100-vs-50 reward gap: higher is
        better (the resident acts on light nudges).  None when no
        reminders were needed at all -- full independence.
        """
        if self.reminders_total == 0:
            return None
        return self.minimal_reminders / self.reminders_total

    def to_text(self) -> str:
        """Render the report for a care-home noticeboard."""
        lines = [
            f"Caregiver report — {self.adl_name}",
            "",
            f"  activities completed:    {self.episodes_completed}",
            f"  reminders given:         {self.reminders_total} "
            f"({self.reminders_per_episode:.1f} per activity)",
            f"    minimal / specific:    {self.minimal_reminders} / "
            f"{self.specific_reminders}",
            f"    stalled / wrong tool:  {self.stall_reminders} / "
            f"{self.wrong_tool_reminders}",
            f"  praise given:            {self.praises}",
            f"  caregiver alerts:        {self.caregiver_alerts}",
        ]
        ratio = self.independence_ratio
        if ratio is None:
            lines.append("  independence:            no reminders needed")
        else:
            lines.append(f"  independence:            {ratio:.0%} of reminders "
                         "stayed minimal")
        if self.struggles:
            lines.append("")
            lines.append(
                format_table(
                    ["Step needing help", "Reminders", "Stalls", "Wrong tool"],
                    [
                        (s.step_name, s.reminders, s.stalls, s.wrong_tools)
                        for s in self.struggles
                    ],
                )
            )
        return "\n".join(lines)
