"""Table 3: extract precision of tool usage.

The paper collected 320 physical samples (40 per tool over two ADLs)
and reports, per ADL step, how often handling the tool was extracted
as that step.  We replay the experiment end to end through the
simulated substrate: for each step, the tool's signal source is
activated for the step's handling duration, the node's 10 Hz sampler
and 3-of-10 detector run, frames cross the lossy radio, and we check
whether the sensing subsystem recorded the usage.

Expected shape (not exact percentages): long vigorous steps detect
essentially always; the two short steps -- "Dry with a towel" and
"Pour hot water into kettle" -- are the weakest, exactly the paper's
finding ("the duration of these two steps are relatively shorter").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.adls.library import ADLDefinition
from repro.core.config import CoReDAConfig
from repro.core.metrics import proportion, wilson_interval
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import format_table
from repro.sensing.subsystem import SensingSubsystem
from repro.sensors.network import SensorNetwork
from repro.core.bus import EventBus
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams

__all__ = [
    "StepPrecision",
    "ExtractPrecisionResult",
    "run_extract_precision",
    "plan_extract_precision",
]

#: Quiet time between trials so detector windows and radio retries
#: from one trial cannot bleed into the next.
_TRIAL_GAP = 6.0


@dataclass(frozen=True)
class StepPrecision:
    """One row of Table 3."""

    adl_name: str
    step_name: str
    detections: int
    trials: int

    @property
    def precision(self) -> float:
        return proportion(self.detections, self.trials)

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.detections, self.trials)


@dataclass
class ExtractPrecisionResult:
    """All rows plus rendering."""

    rows: List[StepPrecision]

    def row_for(self, step_name: str) -> StepPrecision:
        """Look a row up by step name."""
        for row in self.rows:
            if row.step_name == step_name:
                return row
        raise KeyError(step_name)

    def to_table(self) -> str:
        """Render in the paper's Table 3 layout."""
        cells = [
            (
                row.adl_name,
                row.step_name,
                f"{row.precision:.0%}",
                f"{row.detections}/{row.trials}",
            )
            for row in self.rows
        ]
        return format_table(
            ["ADL", "ADL Step", "Extract Precision", "Samples"],
            cells,
            title="Table 3. Extract Precision of ADL Step",
        )


def _extract_cell(
    definition: ADLDefinition,
    samples_per_step: int,
    config: CoReDAConfig,
    seed: int,
) -> List[StepPrecision]:
    """One ADL's full node-radio-server replay (pure, picklable)."""
    rows: List[StepPrecision] = []
    sim = Simulator()
    streams = RandomStreams(seed)
    bus = EventBus()
    network = SensorNetwork(
        sim=sim,
        adl=definition.adl,
        sensing_config=config.sensing,
        radio_config=config.radio,
        streams=streams.fork(definition.adl.name),
        profiles=definition.signal_profiles,
    )
    sensing = SensingSubsystem(
        sim=sim,
        adl=definition.adl,
        bus=bus,
        config=config.sensing,
        base_station=network.base_station,
    )
    network.start()
    for step in definition.adl.steps:
        detections = 0
        for _ in range(samples_per_step):
            before = len(sensing.history.of_tool(step.step_id))
            network.source(step.step_id).begin_use(
                sim.now, step.handling_duration
            )
            sim.run_until(sim.now + step.handling_duration + 2.0)
            network.source(step.step_id).end_use()
            sim.run_until(sim.now + _TRIAL_GAP)
            after = len(sensing.history.of_tool(step.step_id))
            if after > before:
                detections += 1
        rows.append(
            StepPrecision(
                adl_name=definition.adl.name,
                step_name=step.name,
                detections=detections,
                trials=samples_per_step,
            )
        )
    network.stop()
    return rows


def plan_extract_precision(
    definitions: Sequence[ADLDefinition],
    samples_per_step: int = 40,
    config: Optional[CoReDAConfig] = None,
    seed: int = 0,
) -> Section:
    """Table 3 as a section of one cell per ADL."""
    config = config if config is not None else CoReDAConfig()
    cells = [
        Cell(
            _extract_cell,
            (definition, samples_per_step, config, seed),
            label=f"extract.{definition.adl.name}",
        )
        for definition in definitions
    ]

    def merge(per_adl: List[List[StepPrecision]]) -> ExtractPrecisionResult:
        rows: List[StepPrecision] = []
        for adl_rows in per_adl:
            rows.extend(adl_rows)
        return ExtractPrecisionResult(rows=rows)

    return Section("table3.extract", cells, merge)


def run_extract_precision(
    definitions: Sequence[ADLDefinition],
    samples_per_step: int = 40,
    config: Optional[CoReDAConfig] = None,
    seed: int = 0,
    jobs: int = 1,
) -> ExtractPrecisionResult:
    """Regenerate Table 3 over ``definitions``.

    The paper's experiment is 40 samples per tool; one *sample* here
    is one complete handling of the tool at the step's typical
    handling duration, through the full node-radio-server pipeline.
    """
    return run_section(
        plan_extract_precision(definitions, samples_per_step, config, seed),
        jobs=jobs,
    )
