"""Figure 4: the TD(λ) Q-learning learning curve.

The paper trains on 120 samples per ADL and reads convergence off the
curve at the 95% and 98% criteria (tooth-brushing: 49 / 91
iterations; tea-making: 56 / 98).  A single run's numbers are
seed-dependent (the behaviour policy explores stochastically), so the
harness reports the per-seed numbers *and* the mean over a seed set
-- the claims that must hold are the shape claims:

* both criteria converge well within the 120-sample budget;
* the 98% criterion needs substantially more iterations than 95%;
* the curve rises monotonically (after smoothing) toward 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.adl import ADL, Routine
from repro.core.config import PlanningConfig
from repro.core.metrics import mean, sample_sd
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import ascii_curve, format_table
from repro.planning.store import PolicyCache, train_routine_cached
from repro.planning.trainer import LearningCurve
from repro.sim.random import derive_seed

__all__ = [
    "CurveRun",
    "LearningCurveResult",
    "run_learning_curve",
    "plan_learning_curve",
]


@dataclass(frozen=True)
class CurveRun:
    """One seed's training run."""

    seed: int
    convergence: Dict[float, Optional[int]]
    curve: LearningCurve


@dataclass
class LearningCurveResult:
    """All runs for one ADL plus summary rendering."""

    adl_name: str
    criteria: Sequence[float]
    runs: List[CurveRun]

    def converged_iterations(self, criterion: float) -> List[int]:
        """Per-seed convergence iterations (converged runs only)."""
        return [
            run.convergence[criterion]
            for run in self.runs
            if run.convergence.get(criterion) is not None
        ]

    def convergence_rate(self, criterion: float) -> float:
        """Fraction of seeds that converged at ``criterion``."""
        return len(self.converged_iterations(criterion)) / len(self.runs)

    def summary_rows(self) -> List[List[str]]:
        rows = []
        for criterion in self.criteria:
            iterations = self.converged_iterations(criterion)
            if iterations:
                rows.append(
                    [
                        self.adl_name,
                        f"{criterion:.0%}",
                        f"{mean(iterations):.1f}",
                        f"{sample_sd(iterations):.1f}",
                        f"{min(iterations)}-{max(iterations)}",
                        f"{self.convergence_rate(criterion):.0%}",
                    ]
                )
            else:
                rows.append(
                    [self.adl_name, f"{criterion:.0%}", "-", "-", "-", "0%"]
                )
        return rows

    def to_table(self) -> str:
        """Render the convergence summary (Figure 4's readout)."""
        return format_table(
            ["ADL", "Criterion", "Mean iter", "SD", "Range", "Converged"],
            self.summary_rows(),
            title="Figure 4. Learning curve convergence",
        )

    def representative_plot(self) -> str:
        """ASCII plot of the first seed's smoothed curve."""
        return ascii_curve(
            self.runs[0].curve.smoothed_accuracy,
            title=f"Figure 4. Learning curve ({self.adl_name}, seed "
            f"{self.runs[0].seed}, smoothed behaviour accuracy)",
        )

    def to_csv(self) -> str:
        """Per-iteration series as CSV (for external plotting).

        Columns: seed, iteration (1-based), behaviour accuracy,
        smoothed accuracy, greedy accuracy, minimal fraction.
        """
        lines = ["seed,iteration,behaviour,smoothed,greedy,minimal"]
        for run in self.runs:
            curve = run.curve
            for index in range(curve.iterations()):
                lines.append(
                    f"{run.seed},{index + 1},"
                    f"{curve.behaviour_accuracy[index]:.6f},"
                    f"{curve.smoothed_accuracy[index]:.6f},"
                    f"{curve.greedy_accuracy[index]:.6f},"
                    f"{curve.minimal_fraction[index]:.6f}"
                )
        return "\n".join(lines) + "\n"


def _curve_cell(
    adl: ADL,
    routine_ids: Sequence[int],
    seed: int,
    episodes: int,
    criteria: Sequence[float],
    config: PlanningConfig,
    cache_dir: Optional[str] = None,
) -> CurveRun:
    """One seed's training run -- pure, picklable, cacheable."""
    # Derive the stream from (seed, ADL name): two ADLs with the
    # same chain length must not produce bit-identical curves.
    rng_seed = derive_seed(seed, f"curve.{adl.name}")
    cache = PolicyCache(cache_dir) if cache_dir else None
    trained = train_routine_cached(
        adl,
        routine_ids,
        config,
        rng_seed,
        episodes,
        criteria=tuple(criteria),
        cache=cache,
    )
    return CurveRun(
        seed=seed, convergence=trained.convergence, curve=trained.curve
    )


def plan_learning_curve(
    adl: ADL,
    routine: Optional[Routine] = None,
    episodes: int = 120,
    seeds: Sequence[int] = tuple(range(10)),
    criteria: Sequence[float] = (0.95, 0.98),
    config: Optional[PlanningConfig] = None,
    cache_dir: Optional[str] = None,
) -> Section:
    """Figure 4 for one ADL as a section of per-seed cells."""
    if routine is None:
        routine = adl.canonical_routine()
    config = config if config is not None else PlanningConfig()
    criteria = tuple(criteria)
    cells = [
        Cell(
            _curve_cell,
            (adl, list(routine.step_ids), seed, episodes, criteria, config,
             cache_dir),
            label=f"curve.{adl.name}[{seed}]",
        )
        for seed in seeds
    ]

    def merge(runs: List[CurveRun]) -> LearningCurveResult:
        return LearningCurveResult(
            adl_name=adl.name, criteria=criteria, runs=list(runs)
        )

    return Section(f"fig4.curve.{adl.name}", cells, merge)


def run_learning_curve(
    adl: ADL,
    routine: Optional[Routine] = None,
    episodes: int = 120,
    seeds: Sequence[int] = tuple(range(10)),
    criteria: Sequence[float] = (0.95, 0.98),
    config: Optional[PlanningConfig] = None,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
) -> LearningCurveResult:
    """Regenerate Figure 4 for one ADL over a seed set."""
    return run_section(
        plan_learning_curve(
            adl,
            routine=routine,
            episodes=episodes,
            seeds=seeds,
            criteria=criteria,
            config=config,
            cache_dir=cache_dir,
        ),
        jobs=jobs,
    )
