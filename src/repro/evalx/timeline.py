"""Generic trace-to-timeline rendering.

Turns any :class:`~repro.sim.tracing.TraceRecorder` slice into the
human-readable event timeline of Figure 1 -- steps, reminders, LED
blinks, praise, completions -- for any ADL.  Used by the CLI's
``simulate --timeline`` and handy in notebooks and bug reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.adl import ADL
from repro.evalx.tables import format_table
from repro.sim.tracing import TraceRecorder

__all__ = ["timeline_rows", "render_timeline"]

#: Categories rendered by default, in no particular order (the trace
#: is already chronological).
DEFAULT_CATEGORIES = (
    "sensing.step",
    "reminder.prompt",
    "reminder.praise",
    "reminder.gave_up",
    "node.led",
    "planning.completed",
    "resident.error",
    "resident.self_recovery",
    "node.battery_dead",
)


def timeline_rows(
    trace: TraceRecorder,
    adl: ADL,
    start: float = 0.0,
    end: Optional[float] = None,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
) -> List[Tuple[float, str, str]]:
    """(time, kind, detail) rows for the selected trace window."""
    if end is None:
        last = trace.entries()[-1].time if len(trace) else start
        end = last
    wanted = set(categories)
    rows: List[Tuple[float, str, str]] = []
    for entry in trace.between(start, end):
        if entry.category not in wanted:
            continue
        rows.append((entry.time, *_describe(entry.category, entry.payload, adl)))
    return rows


def render_timeline(
    trace: TraceRecorder,
    adl: ADL,
    start: float = 0.0,
    end: Optional[float] = None,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    title: str = "Timeline",
) -> str:
    """Render the selected window as an aligned table."""
    rows = timeline_rows(trace, adl, start=start, end=end,
                         categories=categories)
    cells = [(f"{time:8.1f}", kind, detail) for time, kind, detail in rows]
    return format_table(["Time (s)", "Event", "Detail"], cells, title=title)


def _tool_name(adl: ADL, tool_id) -> str:
    if tool_id is not None and adl.has_step(tool_id):
        return adl.tool(tool_id).name
    return f"tool#{tool_id}"


def _describe(category: str, payload: dict, adl: ADL) -> Tuple[str, str]:
    if category == "sensing.step":
        step_id = payload.get("step_id")
        if step_id == 0:
            return "step", "idle (nothing used for a while)"
        name = adl.step(step_id).name if adl.has_step(step_id) else f"step#{step_id}"
        return "step", name
    if category == "reminder.prompt":
        detail = (
            f"prompt[{payload.get('level')}] use "
            f"{_tool_name(adl, payload.get('tool_id'))} "
            f"({payload.get('reason')})"
        )
        wrong = payload.get("wrong_tool_id")
        if wrong is not None:
            detail += f"; misusing {_tool_name(adl, wrong)}"
        return "reminder", detail
    if category == "reminder.praise":
        return "praise", "Excellent!"
    if category == "reminder.gave_up":
        return "alert", (
            f"gave up prompting {_tool_name(adl, payload.get('tool_id'))} "
            f"after {payload.get('attempts')} attempts -- caregiver needed"
        )
    if category == "node.led":
        return "led", (
            f"{payload.get('color')} LED x{payload.get('blinks')} on "
            f"{_tool_name(adl, payload.get('uid'))}"
        )
    if category == "planning.completed":
        return "completed", f"{payload.get('adl')} finished"
    if category == "resident.error":
        kind = payload.get("kind")
        detail = f"{kind} before {_tool_name(adl, payload.get('expected'))}"
        wrong = payload.get("wrong_tool")
        if wrong is not None:
            detail += f" (grabbed {_tool_name(adl, wrong)})"
        return "resident", detail
    if category == "resident.self_recovery":
        return "resident", "recovered without help"
    if category == "node.battery_dead":
        return "node", f"{_tool_name(adl, payload.get('uid'))} battery dead"
    return "event", str(payload)
