"""Table 4: predict precision of ADL step.

After training converges, the paper probes both reminder-trigger
situations -- (1) the user does not use the expected tool, (2) the
user incorrectly uses another tool -- with 30 test samples per ADL,
the two situations equally examined, and reports per-step precision
(100% everywhere except the first step, which has no preceding state
to predict from).

The probes here run through the deployed online system: step events
are injected at the sensing layer (Table 4 measures *prediction*, so
the sensing noise already quantified by Table 3 is bypassed), the
planning subsystem's stall timers and wrong-tool logic fire for real,
and a trial counts as correct when the first reminder of the expected
trigger kind prompts the right tool.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.adls.library import ADLDefinition
from repro.core.config import CoReDAConfig
from repro.core.events import TriggerReason
from repro.core.metrics import proportion
from repro.core.system import CoReDA
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import format_table

__all__ = [
    "PredictRow",
    "PredictPrecisionResult",
    "run_predict_precision",
    "plan_predict_precision",
]

#: Spacing between injected step events, seconds (well under any
#: stall timeout).
_STEP_SPACING = 3.0


@dataclass(frozen=True)
class PredictRow:
    """One row of Table 4."""

    adl_name: str
    step_name: str
    correct: Optional[int]
    trials: Optional[int]

    @property
    def precision(self) -> Optional[float]:
        """Precision, or ``None`` for the untestable first step."""
        if self.correct is None or self.trials is None:
            return None
        return proportion(self.correct, self.trials)


@dataclass
class PredictPrecisionResult:
    """All rows plus rendering."""

    rows: List[PredictRow]

    def row_for(self, step_name: str) -> PredictRow:
        """Look a row up by step name."""
        for row in self.rows:
            if row.step_name == step_name:
                return row
        raise KeyError(step_name)

    def to_table(self) -> str:
        """Render in the paper's Table 4 layout."""
        cells = []
        for row in self.rows:
            if row.precision is None:
                cells.append((row.adl_name, row.step_name, "-", "-"))
            else:
                cells.append(
                    (
                        row.adl_name,
                        row.step_name,
                        f"{row.precision:.0%}",
                        f"{row.correct}/{row.trials}",
                    )
                )
        return format_table(
            ["ADL", "ADL Step", "Predict Precision", "Samples"],
            cells,
            title="Table 4. Predict Precision of ADL Step",
        )


def plan_predict_precision(
    definitions: Sequence[ADLDefinition],
    samples_per_adl: int = 30,
    config: Optional[CoReDAConfig] = None,
    training_episodes: int = 120,
) -> Section:
    """Table 4 as a section of one cell per ADL.

    The probes use a fixed stall timeout and a long idle window: the
    injected step stream is paced artificially (3 s between steps, a
    held stall per trial), so letting the statistical-timeout rule
    learn dwell times from the probe traffic itself would corrupt the
    timers between trials.  Timing behaviour is Figure 1's subject;
    Table 4 isolates *prediction*.
    """
    config = config if config is not None else CoReDAConfig()
    config = replace(
        config,
        reminding=replace(
            config.reminding, statistical_timeout=False, stall_timeout=25.0
        ),
        sensing=replace(config.sensing, idle_timeout=600.0),
    )
    cells = [
        Cell(
            _evaluate_adl,
            (definition, samples_per_adl, config, training_episodes),
            label=f"predict.{definition.adl.name}",
        )
        for definition in definitions
    ]

    def merge(per_adl: List[List[PredictRow]]) -> PredictPrecisionResult:
        rows: List[PredictRow] = []
        for adl_rows in per_adl:
            rows.extend(adl_rows)
        return PredictPrecisionResult(rows=rows)

    return Section("table4.predict", cells, merge)


def run_predict_precision(
    definitions: Sequence[ADLDefinition],
    samples_per_adl: int = 30,
    config: Optional[CoReDAConfig] = None,
    training_episodes: int = 120,
    jobs: int = 1,
) -> PredictPrecisionResult:
    """Regenerate Table 4 over ``definitions``."""
    return run_section(
        plan_predict_precision(
            definitions, samples_per_adl, config, training_episodes
        ),
        jobs=jobs,
    )


def _evaluate_adl(
    definition: ADLDefinition,
    samples_per_adl: int,
    config: CoReDAConfig,
    training_episodes: int,
) -> List[PredictRow]:
    system = CoReDA.build(definition, config)
    routine = definition.adl.canonical_routine()
    system.train_offline(routine=routine, episodes=training_episodes)
    steps = routine.step_ids
    testable = len(steps) - 1
    per_step = max(samples_per_adl // max(testable, 1), 2)
    rows: List[PredictRow] = [
        PredictRow(
            adl_name=definition.adl.name,
            step_name=definition.adl.step(steps[0]).name,
            correct=None,
            trials=None,
        )
    ]
    wrong_rng = system.streams.get("predict_precision.wrong_tool")
    for position in range(1, len(steps)):
        correct = 0
        trials = 0
        for trial in range(per_step):
            stall = trial % 2 == 0
            if stall:
                hit = _stall_trial(system, steps, position)
            else:
                hit = _wrong_tool_trial(system, steps, position, wrong_rng)
            correct += int(hit)
            trials += 1
        rows.append(
            PredictRow(
                adl_name=definition.adl.name,
                step_name=definition.adl.step(steps[position]).name,
                correct=correct,
                trials=trials,
            )
        )
    return rows


def _inject_prefix(system: CoReDA, steps: Sequence[int], position: int) -> None:
    for step_id in steps[:position]:
        system.sensing.inject_usage(step_id)
        system.sim.run_until(system.sim.now + _STEP_SPACING)


def _finish_episode(system: CoReDA, steps: Sequence[int], position: int) -> None:
    for step_id in steps[position:]:
        system.sensing.inject_usage(step_id)
        system.sim.run_until(system.sim.now + _STEP_SPACING)
    system.planning.reset_episode()
    system.sensing.reset_episode()
    system.sim.run_until(system.sim.now + 2.0)


def _first_new_reminder(system: CoReDA, since: int, reason: TriggerReason):
    for reminder in system.reminding.reminders[since:]:
        if reminder.reason is reason:
            return reminder
    return None


def _stall_trial(system: CoReDA, steps: Sequence[int], position: int) -> bool:
    """Situation 1: the user stops before step ``position``."""
    before = len(system.reminding.reminders)
    _inject_prefix(system, steps, position)
    timeout = system.stall_timeout_for(steps[position - 1])
    system.sim.run_until(system.sim.now + timeout + 2.0)
    reminder = _first_new_reminder(system, before, TriggerReason.STALL)
    hit = reminder is not None and reminder.tool_id == steps[position]
    _finish_episode(system, steps, position)
    return hit


def _wrong_tool_trial(
    system: CoReDA, steps: Sequence[int], position: int, rng
) -> bool:
    """Situation 2: the user grabs a wrong tool before ``position``."""
    before = len(system.reminding.reminders)
    _inject_prefix(system, steps, position)
    candidates = [
        tool.tool_id
        for tool in system.adl.tools
        if tool.tool_id not in (steps[position], steps[position - 1])
    ]
    wrong = int(candidates[int(rng.integers(len(candidates)))])
    system.sensing.inject_usage(wrong)
    system.sim.run_until(system.sim.now + 1.0)
    reminder = _first_new_reminder(system, before, TriggerReason.WRONG_TOOL)
    hit = (
        reminder is not None
        and reminder.tool_id == steps[position]
        and reminder.wrong_tool_id == wrong
    )
    _finish_episode(system, steps, position)
    return hit
