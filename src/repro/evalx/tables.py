"""Plain-text table and sparkline rendering for experiment output.

The benches print the same rows the paper's tables report; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table", "ascii_curve"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats are shown as given (format upstream
    for precision control).
    """
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_curve(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    y_min: float = 0.0,
    y_max: float = 1.0,
    title: Optional[str] = None,
) -> str:
    """A terminal rendering of a learning curve (Figure 4 style).

    The x-axis is compressed to ``width`` columns by averaging; each
    column's value is drawn as a '*' on a ``height``-row grid.
    """
    if not values:
        raise ValueError("cannot plot an empty series")
    if y_max <= y_min:
        raise ValueError("y_max must exceed y_min")
    # Compress to `width` columns.
    columns: List[float] = []
    n = len(values)
    for col in range(min(width, n)):
        lo = col * n // min(width, n)
        hi = max(lo + 1, (col + 1) * n // min(width, n))
        chunk = values[lo:hi]
        columns.append(sum(chunk) / len(chunk))
    grid = [[" "] * len(columns) for _ in range(height)]
    for col, value in enumerate(columns):
        clamped = min(max(value, y_min), y_max)
        level = (clamped - y_min) / (y_max - y_min)
        row = height - 1 - int(round(level * (height - 1)))
        grid[row][col] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        label = y_max - (y_max - y_min) * index / (height - 1)
        lines.append(f"{label:5.2f} |" + "".join(row))
    lines.append("      +" + "-" * len(columns))
    lines.append(f"       iterations 1..{n}")
    return "\n".join(lines)
