"""One-shot experiment runner: regenerate everything the paper reports.

``python -m repro.evalx.runner`` prints every table and figure
(Tables 1-4, Figures 1 and 4) plus the ablations, and can write the
whole report to a file -- EXPERIMENTS.md is generated this way.

The report is assembled from :class:`~repro.evalx.parallel.Section`
plans: every sweep decomposes into pure (seed, config) cells, so
``--jobs N`` fans the whole workload out over N worker processes and
merges a report that is **byte-identical** to the serial one.
``--cache DIR`` adds a content-addressed store of trained policies
(see :mod:`repro.planning.store`): re-runs, and sweeps that train the
same (ADL, routine, hyper-parameters, seed) cell, skip retraining.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, TextIO

from repro.adls.library import default_registry
from repro.evalx.ablations import (
    plan_adaptation_speed,
    plan_detector_sweep,
    plan_dyna_sweep,
    plan_escalation_ablation,
    plan_lambda_sweep,
    plan_multi_routine_comparison,
    plan_radio_sweep,
    plan_sarsa_comparison,
    plan_wrong_reward_sweep,
)
from repro.evalx.baseline_compare import plan_baseline_comparison
from repro.evalx.burden import plan_burden_study
from repro.evalx.extract_precision import plan_extract_precision
from repro.evalx.hardware_table import table1_hardware, table2_sensor_map
from repro.evalx.learning_curve import plan_learning_curve
from repro.evalx.parallel import Cell, Section, run_sections
from repro.evalx.predict_precision import plan_predict_precision
from repro.evalx.scenario import run_tea_scenario
from repro.evalx.sensitivity import plan_alpha_sweep, plan_epsilon_sweep

__all__ = ["run_all", "build_sections", "write_report"]


def _blocks(section: Section, render) -> Section:
    """Wrap ``section`` so its merge yields the report blocks."""
    inner = section.merge
    return Section(
        section.name, section.cells, lambda results: render(inner(results))
    )


def _scenario_blocks(results) -> List[str]:
    scenario = results[0]
    return [
        scenario.to_table(),
        f"Scenario structure check: "
        f"{'PASS' if scenario.structure_ok() else 'FAIL'}",
    ]


def build_sections(
    fast: bool = False,
    include_ablations: bool = True,
    cache_dir: Optional[str] = None,
) -> List[Section]:
    """The full report as an ordered list of section plans.

    Every section's merge returns the list of report blocks it
    contributes; the blocks, joined in section order, are the report.
    """
    registry = default_registry()
    paper_adls = [registry.get("tooth-brushing"), registry.get("tea-making")]
    tea_definition = registry.get("tea-making")
    tea = tea_definition.adl
    samples = 10 if fast else 40
    seeds = tuple(range(3)) if fast else tuple(range(10))
    sections: List[Section] = []

    sections.append(
        Section("table1.hardware", [Cell(table1_hardware, label="table1")],
                lambda results: [results[0]])
    )
    sections.append(
        Section(
            "table2.sensors",
            [Cell(table2_sensor_map, (paper_adls,), label="table2")],
            lambda results: [results[0]],
        )
    )
    sections.append(
        _blocks(
            plan_extract_precision(paper_adls, samples_per_step=samples),
            lambda result: [result.to_table()],
        )
    )
    for definition in paper_adls:
        sections.append(
            _blocks(
                plan_learning_curve(
                    definition.adl, seeds=seeds, cache_dir=cache_dir
                ),
                lambda curve: [curve.to_table(), curve.representative_plot()],
            )
        )
    sections.append(
        _blocks(
            plan_predict_precision(
                paper_adls, samples_per_adl=12 if fast else 30
            ),
            lambda result: [result.to_table()],
        )
    )
    sections.append(
        Section(
            "fig1.scenario",
            [Cell(run_tea_scenario, label="scenario")],
            _scenario_blocks,
        )
    )
    sections.append(
        _blocks(
            plan_baseline_comparison(
                tea,
                n_users=5 if fast else 20,
                episodes=40 if fast else 120,
                cache_dir=cache_dir,
            ),
            lambda result: [result.to_table()],
        )
    )
    sections.append(
        _blocks(
            plan_burden_study(tea_definition, episodes=4 if fast else 10),
            lambda result: [result.to_table()],
        )
    )

    if include_ablations:
        ablation_seeds = tuple(range(2)) if fast else tuple(range(8))
        one_block = lambda table: [table]  # noqa: E731 - tiny adapter
        sections.append(
            _blocks(
                plan_lambda_sweep(
                    tea, seeds=ablation_seeds, cache_dir=cache_dir
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_wrong_reward_sweep(
                    tea, seeds=ablation_seeds[:3] or (0,), cache_dir=cache_dir
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(plan_detector_sweep(trials=60 if fast else 300), one_block)
        )
        sections.append(
            _blocks(
                plan_dyna_sweep(
                    tea, seeds=ablation_seeds, cache_dir=cache_dir
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_radio_sweep(
                    tea_definition, samples_per_step=8 if fast else 25
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_sarsa_comparison(
                    tea, seeds=ablation_seeds, cache_dir=cache_dir
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_alpha_sweep(
                    tea, seeds=ablation_seeds, cache_dir=cache_dir
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_epsilon_sweep(
                    tea, seeds=ablation_seeds, cache_dir=cache_dir
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_multi_routine_comparison(
                    episodes_per_routine=20 if fast else 60
                ),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_adaptation_speed(tea, seeds=ablation_seeds[:3] or (0,)),
                one_block,
            )
        )
        sections.append(
            _blocks(
                plan_escalation_ablation(
                    tea_definition, episodes=3 if fast else 8
                ),
                one_block,
            )
        )

    return sections


def run_all(
    fast: bool = False,
    include_ablations: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timings: Optional[Dict[str, float]] = None,
) -> str:
    """Run every experiment; returns the full report text.

    ``fast`` trims sample counts and seed sets (used by smoke tests);
    the defaults match the paper's sample sizes.  ``jobs`` > 1 fans
    the section cells out over worker processes; the report text is
    byte-identical for every ``jobs`` value.  ``timings``, when
    given, is filled with per-section cell seconds.
    """
    sections = build_sections(
        fast=fast, include_ablations=include_ablations, cache_dir=cache_dir
    )
    merged = run_sections(sections, jobs=jobs, timings=timings)
    blocks: List[str] = []
    for section_blocks in merged:
        blocks.extend(section_blocks)
    return "\n\n".join(blocks) + "\n"


def write_report(
    report: str,
    output: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> None:
    """Print ``report`` and optionally persist it.

    The file is always written UTF-8 so the report's non-ASCII
    characters survive non-UTF-8 locales; both the CLI ``repro
    report`` and this module's ``main`` share this path.
    """
    (stream if stream is not None else sys.stdout).write(report)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(report)


def check_cache_dir(parser: argparse.ArgumentParser, cache: str) -> None:
    """Exit with a readable error when ``--cache`` cannot be a directory."""
    if os.path.exists(cache) and not os.path.isdir(cache):
        parser.error(f"--cache: {cache!r} exists and is not a directory")


def print_timings(
    timings: Dict[str, float], total_seconds: float, stream: TextIO
) -> None:
    """Per-section timing table (stderr by default: never in the report)."""
    width = max(len(name) for name in timings) if timings else 0
    stream.write("section timings (cell seconds):\n")
    for name, seconds in timings.items():
        stream.write(f"  {name:<{width}}  {seconds:8.2f}s\n")
    stream.write(
        f"  {'total wall-clock':<{width}}  {total_seconds:8.2f}s\n"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every CoReDA paper table and figure."
    )
    parser.add_argument("--fast", action="store_true", help="small sample counts")
    parser.add_argument(
        "--no-ablations", action="store_true", help="skip the ablation sweeps"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial; output is "
        "byte-identical either way)",
    )
    parser.add_argument(
        "--cache", metavar="DIR",
        help="content-addressed trained-policy cache directory",
    )
    parser.add_argument(
        "--timing", action="store_true",
        help="print per-section timings to stderr",
    )
    parser.add_argument("--output", help="also write the report to this file")
    args = parser.parse_args(argv)
    if args.cache:
        check_cache_dir(parser, args.cache)
    timings: Dict[str, float] = {}
    start = time.perf_counter()  # repro: allow[DET002] timing display only
    report = run_all(
        fast=args.fast,
        include_ablations=not args.no_ablations,
        jobs=args.jobs,
        cache_dir=args.cache,
        timings=timings,
    )
    elapsed = time.perf_counter() - start  # repro: allow[DET002] timing display only
    write_report(report, output=args.output)
    if args.timing:
        print_timings(timings, elapsed, sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
