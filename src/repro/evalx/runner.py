"""One-shot experiment runner: regenerate everything the paper reports.

``python -m repro.evalx.runner`` prints every table and figure
(Tables 1-4, Figures 1 and 4) plus the ablations, and can write the
whole report to a file -- EXPERIMENTS.md is generated this way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adls.library import default_registry
from repro.evalx.ablations import (
    adaptation_speed,
    detector_sweep,
    dyna_sweep,
    escalation_ablation,
    lambda_sweep,
    multi_routine_comparison,
    radio_sweep,
    sarsa_comparison,
    wrong_reward_sweep,
)
from repro.evalx.baseline_compare import run_baseline_comparison
from repro.evalx.burden import run_burden_study
from repro.evalx.extract_precision import run_extract_precision
from repro.evalx.hardware_table import table1_hardware, table2_sensor_map
from repro.evalx.learning_curve import run_learning_curve
from repro.evalx.predict_precision import run_predict_precision
from repro.evalx.scenario import run_tea_scenario
from repro.evalx.sensitivity import alpha_sweep, epsilon_sweep

__all__ = ["run_all"]


def run_all(fast: bool = False, include_ablations: bool = True) -> str:
    """Run every experiment; returns the full report text.

    ``fast`` trims sample counts and seed sets (used by smoke tests);
    the defaults match the paper's sample sizes.
    """
    registry = default_registry()
    paper_adls = [registry.get("tooth-brushing"), registry.get("tea-making")]
    samples = 10 if fast else 40
    seeds = tuple(range(3)) if fast else tuple(range(10))
    sections: List[str] = []

    sections.append(table1_hardware())
    sections.append(table2_sensor_map(paper_adls))

    extract = run_extract_precision(paper_adls, samples_per_step=samples)
    sections.append(extract.to_table())

    for definition in paper_adls:
        curve = run_learning_curve(definition.adl, seeds=seeds)
        sections.append(curve.to_table())
        sections.append(curve.representative_plot())

    predict = run_predict_precision(
        paper_adls, samples_per_adl=12 if fast else 30
    )
    sections.append(predict.to_table())

    scenario = run_tea_scenario()
    sections.append(scenario.to_table())
    sections.append(
        f"Scenario structure check: {'PASS' if scenario.structure_ok() else 'FAIL'}"
    )

    tea = registry.get("tea-making").adl
    baseline = run_baseline_comparison(
        tea, n_users=5 if fast else 20, episodes=40 if fast else 120
    )
    sections.append(baseline.to_table())

    burden = run_burden_study(
        registry.get("tea-making"), episodes=4 if fast else 10
    )
    sections.append(burden.to_table())

    if include_ablations:
        ablation_seeds = tuple(range(2)) if fast else tuple(range(8))
        sections.append(lambda_sweep(tea, seeds=ablation_seeds))
        sections.append(wrong_reward_sweep(tea, seeds=ablation_seeds[:3] or (0,)))
        sections.append(detector_sweep(trials=60 if fast else 300))
        sections.append(dyna_sweep(tea, seeds=ablation_seeds))
        sections.append(
            radio_sweep(
                registry.get("tea-making"),
                samples_per_step=8 if fast else 25,
            )
        )
        sections.append(sarsa_comparison(tea, seeds=ablation_seeds))
        sections.append(alpha_sweep(tea, seeds=ablation_seeds))
        sections.append(epsilon_sweep(tea, seeds=ablation_seeds))
        sections.append(
            multi_routine_comparison(
                episodes_per_routine=20 if fast else 60
            )
        )
        sections.append(
            adaptation_speed(tea, seeds=ablation_seeds[:3] or (0,))
        )
        sections.append(
            escalation_ablation(
                registry.get("tea-making"), episodes=3 if fast else 8
            )
        )

    return "\n\n".join(sections) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every CoReDA paper table and figure."
    )
    parser.add_argument("--fast", action="store_true", help="small sample counts")
    parser.add_argument(
        "--no-ablations", action="store_true", help="skip the ablation sweeps"
    )
    parser.add_argument("--output", help="also write the report to this file")
    args = parser.parse_args(argv)
    report = run_all(fast=args.fast, include_ablations=not args.no_ablations)
    sys.stdout.write(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
