"""Caregiver-burden study: the paper's motivation, quantified.

    "With the assistance of ubiquitous guidance system which can
    remind elderly instead of them, caregivers' burden will be
    significantly reduced."

Without CoReDA, *every* error a resident makes (a stall, a wrong
tool) needs a caregiver to step in -- that is the pre-deployment
world the paper describes.  With CoReDA deployed, a caregiver is
needed only when guidance fails: the system gives up on a step
(caregiver alert) or the resident ends up recovering without help
after prompts went unanswered.  The study runs guided episodes across
a severity sweep and reports the fraction of error events resolved by
the system alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adls.library import ADLDefinition
from repro.core.config import CoReDAConfig
from repro.core.system import CoReDA
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import format_table
from repro.resident.dementia import DementiaProfile

__all__ = [
    "BurdenRow",
    "BurdenResult",
    "run_burden_study",
    "plan_burden_study",
]


@dataclass(frozen=True)
class BurdenRow:
    """One severity level's outcome."""

    severity: float
    episodes: int
    completed: int
    errors: int
    caregiver_interventions: int

    @property
    def errors_per_episode(self) -> float:
        return self.errors / self.episodes

    @property
    def burden_reduction(self) -> Optional[float]:
        """Fraction of error events CoReDA handled without a caregiver.

        ``None`` when the resident made no errors at all (nothing to
        reduce).
        """
        if self.errors == 0:
            return None
        return 1.0 - self.caregiver_interventions / self.errors


@dataclass
class BurdenResult:
    """The full sweep plus rendering."""

    adl_name: str
    rows: List[BurdenRow]

    def to_table(self) -> str:
        cells = []
        for row in self.rows:
            reduction = row.burden_reduction
            cells.append(
                (
                    f"{row.severity:.1f}",
                    f"{row.completed}/{row.episodes}",
                    f"{row.errors_per_episode:.1f}",
                    str(row.caregiver_interventions),
                    "-" if reduction is None else f"{reduction:.0%}",
                )
            )
        return format_table(
            [
                "Severity",
                "Completed",
                "Errors/episode",
                "Caregiver interventions",
                "Burden reduction",
            ],
            cells,
            title=f"Caregiver-burden study ({self.adl_name})",
        )


def _severity_cell(
    definition: ADLDefinition,
    severity: float,
    episodes: int,
    seed: int,
) -> BurdenRow:
    """One severity level's guided episodes (pure, picklable)."""
    system = CoReDA.build(
        definition, CoReDAConfig(seed=seed + int(severity * 100))
    )
    system.train_offline()
    reliable = {
        step.step_id: max(step.handling_duration, 5.0)
        for step in definition.adl.steps
    }
    completed = 0
    for index in range(episodes):
        resident = system.create_resident(
            dementia=DementiaProfile.from_severity(severity),
            handling_overrides=reliable,
            error_use_duration=5.0,
            name=f"burden.{severity}.{index}",
        )
        outcome = system.run_episode(resident, horizon=3600.0)
        completed += int(outcome.completed)
    errors = system.trace.count("resident.error")
    self_recoveries = system.trace.count("resident.self_recovery")
    interventions = self_recoveries + system.reminding.caregiver_alerts
    return BurdenRow(
        severity=severity,
        episodes=episodes,
        completed=completed,
        errors=errors,
        caregiver_interventions=interventions,
    )


def plan_burden_study(
    definition: ADLDefinition,
    severities: Sequence[float] = (0.2, 0.5, 0.8),
    episodes: int = 10,
    seed: int = 0,
) -> Section:
    """The severity sweep as a section of one cell per severity."""
    cells = [
        Cell(
            _severity_cell,
            (definition, severity, episodes, seed),
            label=f"burden.{severity}",
        )
        for severity in severities
    ]

    def merge(rows: List[BurdenRow]) -> BurdenResult:
        return BurdenResult(adl_name=definition.adl.name, rows=list(rows))

    return Section(f"burden.{definition.adl.name}", cells, merge)


def run_burden_study(
    definition: ADLDefinition,
    severities: Sequence[float] = (0.2, 0.5, 0.8),
    episodes: int = 10,
    seed: int = 0,
    jobs: int = 1,
) -> BurdenResult:
    """Run the severity sweep for one ADL."""
    return run_section(
        plan_burden_study(definition, severities, episodes, seed), jobs=jobs
    )
