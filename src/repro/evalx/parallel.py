"""Deterministic parallel fan-out for the experiment harness.

Every sweep in ``repro.evalx`` decomposes into *cells*: pure,
picklable units of work (one trained seed, one detector rule, one
radio loss rate, ...).  A :class:`Section` is an ordered list of
cells plus a merge function that folds the cell results back into the
report text.  The executor fans the cells of all sections out over a
``ProcessPoolExecutor`` and merges results **in submission order**,
so the parallel report is byte-identical to the serial one: each cell
derives its randomness only from its arguments (explicit seeds, never
shared generators), and the merge order never depends on completion
order.

``--jobs 1`` (the default) runs every cell inline in the parent
process -- the parallel path and the serial path execute the same
cell functions, which is what makes byte-equality testable.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.random import derive_seed

__all__ = [
    "Cell",
    "Section",
    "cell_seed",
    "run_cells",
    "run_section",
    "run_sections",
]


def cell_seed(sweep_name: str, cell_index: int, base_seed: int) -> int:
    """Derive the seed for cell ``cell_index`` of ``sweep_name``.

    SHA-256 based (via :func:`repro.sim.random.derive_seed`), so the
    mapping is stable across processes and Python versions; two cells
    of the same sweep, or the same index in two sweeps, never share a
    stream.
    """
    return derive_seed(base_seed, f"{sweep_name}[{cell_index}]")


@dataclass(frozen=True)
class Cell:
    """One pure unit of experiment work.

    ``fn`` must be a module-level callable and every argument must be
    picklable: a cell may execute in a worker process.  A cell must
    not read mutable global state -- its result is a function of its
    arguments only.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass
class Section:
    """An ordered group of cells plus the fold back into a result."""

    name: str
    cells: List[Cell]
    merge: Callable[[List[Any]], Any]


def _timed_cell(cell: Cell) -> Tuple[Any, float]:
    """Worker entry point: run one cell, returning (result, seconds)."""
    start = time.perf_counter()  # repro: allow[DET002] timing display only
    result = cell.run()
    return result, time.perf_counter() - start  # repro: allow[DET002] timing display only


def run_cells(
    cells: Sequence[Cell], jobs: int = 1
) -> Tuple[List[Any], List[float]]:
    """Run ``cells``; return their results *in submission order*.

    ``jobs <= 1`` runs inline; otherwise a process pool of ``jobs``
    workers executes the cells concurrently.  Either way the returned
    lists are ordered like ``cells``, which is the determinism
    contract every merge function relies on.
    """
    if jobs <= 1 or len(cells) <= 1:
        results: List[Any] = []
        seconds: List[float] = []
        for cell in cells:
            result, elapsed = _timed_cell(cell)
            results.append(result)
            seconds.append(elapsed)
        return results, seconds
    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        futures = [pool.submit(_timed_cell, cell) for cell in cells]
        pairs = [future.result() for future in futures]
    return [pair[0] for pair in pairs], [pair[1] for pair in pairs]


def run_section(section: Section, jobs: int = 1) -> Any:
    """Run one section start to finish; returns its merged result."""
    results, _ = run_cells(section.cells, jobs=jobs)
    return section.merge(results)


def run_sections(
    sections: Sequence[Section],
    jobs: int = 1,
    timings: Optional[Dict[str, float]] = None,
) -> List[Any]:
    """Run many sections over one shared pool of ``jobs`` workers.

    The cells of *all* sections are flattened into one task list, so
    a wide section cannot starve a narrow one; merges still happen
    per section, in section order.  ``timings``, when given, is
    filled with the summed cell seconds per section name (CPU cost,
    not wall-clock -- cells of different sections overlap).
    """
    flat: List[Cell] = []
    spans: List[Tuple[int, int]] = []
    for section in sections:
        start = len(flat)
        flat.extend(section.cells)
        spans.append((start, len(flat)))
    results, seconds = run_cells(flat, jobs=jobs)
    merged: List[Any] = []
    for section, (start, stop) in zip(sections, spans):
        merge_start = time.perf_counter()  # repro: allow[DET002] timing display only
        merged.append(section.merge(results[start:stop]))
        if timings is not None:
            timings[section.name] = sum(seconds[start:stop]) + (
                time.perf_counter() - merge_start  # repro: allow[DET002] timing display only
            )
    return merged
