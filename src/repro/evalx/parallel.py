"""Deterministic parallel fan-out for the experiment harness.

Every sweep in ``repro.evalx`` decomposes into *cells*: pure,
picklable units of work (one trained seed, one detector rule, one
radio loss rate, ...).  A :class:`Section` is an ordered list of
cells plus a merge function that folds the cell results back into the
report text.  The executor fans the cells of all sections out over a
``ProcessPoolExecutor`` and merges results **in submission order**,
so the parallel report is byte-identical to the serial one: each cell
derives its randomness only from its arguments (explicit seeds, never
shared generators), and the merge order never depends on completion
order.

``--jobs 1`` (the default) runs every cell inline in the parent
process -- the parallel path and the serial path execute the same
cell functions, which is what makes byte-equality testable.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.random import derive_seed

__all__ = [
    "Cell",
    "Section",
    "WorkerPool",
    "cell_seed",
    "run_cells",
    "run_section",
    "run_sections",
]


def cell_seed(sweep_name: str, cell_index: int, base_seed: int) -> int:
    """Derive the seed for cell ``cell_index`` of ``sweep_name``.

    SHA-256 based (via :func:`repro.sim.random.derive_seed`), so the
    mapping is stable across processes and Python versions; two cells
    of the same sweep, or the same index in two sweeps, never share a
    stream.
    """
    return derive_seed(base_seed, f"{sweep_name}[{cell_index}]")


@dataclass(frozen=True)
class Cell:
    """One pure unit of experiment work.

    ``fn`` must be a module-level callable and every argument must be
    picklable: a cell may execute in a worker process.  A cell must
    not read mutable global state -- its result is a function of its
    arguments only.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass
class Section:
    """An ordered group of cells plus the fold back into a result."""

    name: str
    cells: List[Cell]
    merge: Callable[[List[Any]], Any]


def _timed_cell(cell: Cell) -> Tuple[Any, float]:
    """Worker entry point: run one cell, returning (result, seconds)."""
    start = time.perf_counter()  # repro: allow[DET002] timing display only
    result = cell.run()
    return result, time.perf_counter() - start  # repro: allow[DET002] timing display only


class WorkerPool:
    """A persistent process pool reused across :func:`run_cells` calls.

    A fleet run pushes several waves of cells (the distinct-routine
    training wave, then the home shards) through one pool, so worker
    processes fork once and amortize interpreter startup over the
    whole run.  The underlying executor is created lazily: a pool
    opened for a ``jobs=1`` run never forks at all.

    ``initializer``/``initargs`` run once in every worker process as
    it starts -- the channel for per-run, many-cell state (the fleet's
    shared-memory policy registry rides here, so cell payloads stay
    scalar).  The initializer must be a module-level function and its
    arguments picklable, the same contract as the cells themselves.

    Use as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        jobs: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> None:
        self.jobs = max(int(jobs), 1)
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> Executor:
        """The lazily created process-pool executor."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _drain_windowed(
    executor: Executor,
    cells: Sequence[Cell],
    window: int,
    results: List[Any],
    seconds: List[float],
) -> None:
    """Submit ``cells`` through a bounded window, collecting in order.

    At most ``window`` cells are in flight at once, so a million-cell
    fleet never materializes a million futures (or their buffered
    results) in the parent.  Results are taken strictly in submission
    order -- the head of the window must finish before the next cell
    is submitted -- which preserves the ordered-merge contract.  When
    a cell raises, every not-yet-running future is cancelled, cells
    beyond the window are never submitted at all, and the error
    propagates to the caller.
    """
    pending: "deque" = deque()
    iterator = iter(cells)
    for cell in itertools.islice(iterator, window):
        pending.append(executor.submit(_timed_cell, cell))
    while pending:
        head = pending.popleft()
        try:
            result, elapsed = head.result()
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        results.append(result)
        seconds.append(elapsed)
        for cell in itertools.islice(iterator, 1):
            pending.append(executor.submit(_timed_cell, cell))


def run_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    window: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> Tuple[List[Any], List[float]]:
    """Run ``cells``; return their results *in submission order*.

    ``jobs <= 1`` runs inline; otherwise a process pool of ``jobs``
    workers executes the cells concurrently.  Either way the returned
    lists are ordered like ``cells``, which is the determinism
    contract every merge function relies on.

    Submission is windowed: at most ``window`` cells (default
    ``4 * jobs``) are outstanding at any moment, and a failing cell
    cancels everything still queued instead of letting the remaining
    work run to completion.  ``pool`` lends a persistent
    :class:`WorkerPool` so several calls share one set of worker
    processes; without it a fresh pool is created per call.  Neither
    knob changes the results -- the inline ``jobs <= 1`` path and the
    pooled path execute the same cell functions in the same order.
    """
    if jobs <= 1 or len(cells) <= 1:
        results: List[Any] = []
        seconds: List[float] = []
        for cell in cells:
            result, elapsed = _timed_cell(cell)
            results.append(result)
            seconds.append(elapsed)
        return results, seconds
    if window is None:
        window = 4 * jobs
    window = max(window, 1)
    results = []
    seconds = []
    if pool is not None:
        _drain_windowed(pool.executor(), cells, window, results, seconds)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as owned:
            _drain_windowed(owned, cells, window, results, seconds)
    return results, seconds


def run_section(section: Section, jobs: int = 1) -> Any:
    """Run one section start to finish; returns its merged result."""
    results, _ = run_cells(section.cells, jobs=jobs)
    return section.merge(results)


def run_sections(
    sections: Sequence[Section],
    jobs: int = 1,
    timings: Optional[Dict[str, float]] = None,
) -> List[Any]:
    """Run many sections over one shared pool of ``jobs`` workers.

    The cells of *all* sections are flattened into one task list, so
    a wide section cannot starve a narrow one; merges still happen
    per section, in section order.  ``timings``, when given, is
    filled with the summed cell seconds per section name (CPU cost,
    not wall-clock -- cells of different sections overlap).
    """
    flat: List[Cell] = []
    spans: List[Tuple[int, int]] = []
    for section in sections:
        start = len(flat)
        flat.extend(section.cells)
        spans.append((start, len(flat)))
    results, seconds = run_cells(flat, jobs=jobs)
    merged: List[Any] = []
    for section, (start, stop) in zip(sections, spans):
        merge_start = time.perf_counter()  # repro: allow[DET002] timing display only
        merged.append(section.merge(results[start:stop]))
        if timings is not None:
            timings[section.name] = sum(seconds[start:stop]) + (
                time.perf_counter() - merge_start  # repro: allow[DET002] timing display only
            )
    return merged
