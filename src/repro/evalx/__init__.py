"""The evaluation harness: every paper table and figure, regenerable.

One module per artifact:

========================  =========================================
``hardware_table``        Table 1 (PAVENET) and Table 2 (sensor map)
``extract_precision``     Table 3 (extract precision of ADL step)
``learning_curve``        Figure 4 (TD(λ) learning curve)
``predict_precision``     Table 4 (predict precision of ADL step)
``scenario``              Figure 1 (the typical tea-making scenario)
``baseline_compare``      personalization vs pre-planned baselines
``ablations``             λ / reward / detector / Dyna / radio / SARSA
``parallel``              deterministic cell fan-out (``--jobs N``)
``runner``                run everything, write the report
========================  =========================================
"""

from repro.evalx.baseline_compare import (
    BaselineComparisonResult,
    BaselineRow,
    run_baseline_comparison,
)
from repro.evalx.burden import BurdenResult, BurdenRow, run_burden_study
from repro.evalx.extract_precision import (
    ExtractPrecisionResult,
    StepPrecision,
    run_extract_precision,
)
from repro.evalx.hardware_table import table1_hardware, table2_sensor_map
from repro.evalx.learning_curve import (
    CurveRun,
    LearningCurveResult,
    run_learning_curve,
)
from repro.evalx.parallel import (
    Cell,
    Section,
    cell_seed,
    run_cells,
    run_section,
    run_sections,
)
from repro.evalx.predict_precision import (
    PredictPrecisionResult,
    PredictRow,
    run_predict_precision,
)
from repro.evalx.runner import run_all, write_report
from repro.evalx.scenario import ScenarioResult, TimelineEvent, run_tea_scenario
from repro.evalx.sensitivity import alpha_sweep, epsilon_sweep
from repro.evalx.tables import ascii_curve, format_table
from repro.evalx.timeline import render_timeline, timeline_rows

__all__ = [
    "BaselineComparisonResult",
    "BaselineRow",
    "BurdenResult",
    "BurdenRow",
    "Cell",
    "CurveRun",
    "ExtractPrecisionResult",
    "LearningCurveResult",
    "PredictPrecisionResult",
    "PredictRow",
    "ScenarioResult",
    "Section",
    "StepPrecision",
    "TimelineEvent",
    "alpha_sweep",
    "ascii_curve",
    "cell_seed",
    "epsilon_sweep",
    "format_table",
    "run_all",
    "run_cells",
    "run_section",
    "run_sections",
    "write_report",
    "run_baseline_comparison",
    "run_burden_study",
    "run_extract_precision",
    "run_learning_curve",
    "run_predict_precision",
    "run_tea_scenario",
    "render_timeline",
    "timeline_rows",
    "table1_hardware",
    "table2_sensor_map",
]
