"""Hyper-parameter sensitivity sweeps (learning rate α, exploration ε).

The paper notes the operator "can set the parameters (converging
condition, learning rate, etc.)" to trade convergence for continual
adaptation.  These sweeps chart that trade-off: how iterations-to-
converge and final policy quality move with α and with the ε
schedule.

Each (config, seed) cell is pure and picklable, so the sweeps run
under the deterministic parallel executor and share the trained-
policy cache with every other :class:`RoutineTrainer`-based sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.core.adl import ADL
from repro.core.config import PlanningConfig
from repro.core.metrics import mean
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import format_table
from repro.planning.store import PolicyCache, train_routine_cached

__all__ = [
    "alpha_sweep",
    "epsilon_sweep",
    "plan_alpha_sweep",
    "plan_epsilon_sweep",
]


def _sensitivity_cell(
    adl: ADL,
    config: PlanningConfig,
    seed: int,
    episodes: int,
    criterion: float,
    cache_dir: Optional[str] = None,
) -> Tuple[Optional[int], float]:
    """One seed of one config: (convergence iteration, final accuracy)."""
    cache = PolicyCache(cache_dir) if cache_dir else None
    trained = train_routine_cached(
        adl,
        list(adl.canonical_routine().step_ids),
        config,
        seed,
        episodes,
        criteria=(criterion,),
        cache=cache,
    )
    return trained.convergence[criterion], trained.curve.greedy_accuracy[-1]


def _plan_sweep(
    name: str,
    adl: ADL,
    configs: Sequence[Tuple[str, PlanningConfig]],
    seeds: Sequence[int],
    episodes: int,
    criterion: float,
    columns: Sequence[str],
    title: str,
    cache_dir: Optional[str] = None,
) -> Section:
    """A labelled-config sweep as one section of (config, seed) cells."""
    cells = [
        Cell(
            _sensitivity_cell,
            (adl, config, seed, episodes, criterion, cache_dir),
            label=f"{name}.{label}[{seed}]",
        )
        for label, config in configs
        for seed in seeds
    ]

    def merge(results: List[Tuple[Optional[int], float]]) -> str:
        rows = []
        for index, (label, _) in enumerate(configs):
            chunk = results[index * len(seeds):(index + 1) * len(seeds)]
            iterations = [it for it, _ in chunk if it is not None]
            final = [accuracy for _, accuracy in chunk]
            rows.append(
                (
                    label,
                    f"{mean(iterations):.1f}" if iterations else "-",
                    f"{len(iterations) / len(seeds):.0%}",
                    f"{mean(final):.0%}",
                )
            )
        return format_table(columns, rows, title=title)

    return Section(name, cells, merge)


def plan_alpha_sweep(
    adl: ADL,
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 1.0),
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
    cache_dir: Optional[str] = None,
) -> Section:
    """Learning rate α vs convergence speed and final accuracy."""
    configs = [
        (f"{alpha:.2f}", replace(PlanningConfig(), learning_rate=alpha))
        for alpha in alphas
    ]
    return _plan_sweep(
        f"sensitivity.alpha.{adl.name}",
        adl,
        configs,
        seeds,
        episodes,
        criterion,
        ["alpha", "Mean iterations (95%)", "Converged", "Final accuracy"],
        f"Sensitivity: learning rate ({adl.name})",
        cache_dir=cache_dir,
    )


def alpha_sweep(
    adl: ADL,
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 1.0),
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
) -> str:
    """Learning rate α vs convergence speed and final accuracy."""
    return run_section(
        plan_alpha_sweep(adl, alphas, seeds, episodes, criterion)
    )


def plan_epsilon_sweep(
    adl: ADL,
    schedules: Sequence[Tuple[float, float]] = (
        (0.1, 0.978),
        (0.2, 0.978),
        (0.4, 0.978),
        (0.4, 1.0),
    ),
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
    cache_dir: Optional[str] = None,
) -> Section:
    """ε schedule vs convergence: the always-adapting mode in numbers.

    The ``(0.4, 1.0)`` row is the paper's "update all the while"
    setting (no ε decay): behaviour accuracy then plateaus *below*
    the criterion -- the system keeps exploring forever, never
    "converges", yet its greedy policy is perfect.  Exactly the
    trade-off section 3.2 describes.
    """
    configs = [
        (
            f"eps0={epsilon} decay={decay}",
            replace(PlanningConfig(), epsilon=epsilon, epsilon_decay=decay),
        )
        for epsilon, decay in schedules
    ]
    return _plan_sweep(
        f"sensitivity.epsilon.{adl.name}",
        adl,
        configs,
        seeds,
        episodes,
        criterion,
        ["epsilon schedule", "Mean iterations (95%)", "Converged",
         "Final accuracy"],
        f"Sensitivity: exploration schedule ({adl.name})",
        cache_dir=cache_dir,
    )


def epsilon_sweep(
    adl: ADL,
    schedules: Sequence[Tuple[float, float]] = (
        (0.1, 0.978),
        (0.2, 0.978),
        (0.4, 0.978),
        (0.4, 1.0),
    ),
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
) -> str:
    """ε schedule vs convergence (see :func:`plan_epsilon_sweep`)."""
    return run_section(
        plan_epsilon_sweep(adl, schedules, seeds, episodes, criterion)
    )
