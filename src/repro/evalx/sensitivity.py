"""Hyper-parameter sensitivity sweeps (learning rate α, exploration ε).

The paper notes the operator "can set the parameters (converging
condition, learning rate, etc.)" to trade convergence for continual
adaptation.  These sweeps chart that trade-off: how iterations-to-
converge and final policy quality move with α and with the ε
schedule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adl import ADL
from repro.core.config import PlanningConfig
from repro.core.metrics import mean
from repro.evalx.tables import format_table
from repro.planning.trainer import RoutineTrainer

__all__ = ["alpha_sweep", "epsilon_sweep"]


def _sweep(
    adl: ADL,
    configs: Sequence[Tuple[str, PlanningConfig]],
    seeds: Sequence[int],
    episodes: int,
    criterion: float,
) -> List[Tuple[str, Optional[float], float, float]]:
    """(label, mean iterations, converged rate, final greedy accuracy)."""
    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    rows = []
    for label, config in configs:
        iterations: List[int] = []
        final: List[float] = []
        for seed in seeds:
            trainer = RoutineTrainer(adl, config, rng=np.random.default_rng(seed))
            result = trainer.train(log, routine=routine, criteria=(criterion,))
            if result.convergence[criterion] is not None:
                iterations.append(result.convergence[criterion])
            final.append(result.curve.greedy_accuracy[-1])
        rows.append(
            (
                label,
                mean(iterations) if iterations else None,
                len(iterations) / len(seeds),
                mean(final),
            )
        )
    return rows


def alpha_sweep(
    adl: ADL,
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.5, 1.0),
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
) -> str:
    """Learning rate α vs convergence speed and final accuracy."""
    configs = [
        (f"{alpha:.2f}", replace(PlanningConfig(), learning_rate=alpha))
        for alpha in alphas
    ]
    rows = _sweep(adl, configs, seeds, episodes, criterion)
    return format_table(
        ["alpha", "Mean iterations (95%)", "Converged", "Final accuracy"],
        [
            (
                label,
                f"{iterations:.1f}" if iterations is not None else "-",
                f"{rate:.0%}",
                f"{accuracy:.0%}",
            )
            for label, iterations, rate, accuracy in rows
        ],
        title=f"Sensitivity: learning rate ({adl.name})",
    )


def epsilon_sweep(
    adl: ADL,
    schedules: Sequence[Tuple[float, float]] = (
        (0.1, 0.978),
        (0.2, 0.978),
        (0.4, 0.978),
        (0.4, 1.0),
    ),
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
) -> str:
    """ε schedule vs convergence: the always-adapting mode in numbers.

    The ``(0.4, 1.0)`` row is the paper's "update all the while"
    setting (no ε decay): behaviour accuracy then plateaus *below*
    the criterion -- the system keeps exploring forever, never
    "converges", yet its greedy policy is perfect.  Exactly the
    trade-off section 3.2 describes.
    """
    configs = [
        (
            f"eps0={epsilon} decay={decay}",
            replace(PlanningConfig(), epsilon=epsilon, epsilon_decay=decay),
        )
        for epsilon, decay in schedules
    ]
    rows = _sweep(adl, configs, seeds, episodes, criterion)
    return format_table(
        ["epsilon schedule", "Mean iterations (95%)", "Converged",
         "Final accuracy"],
        [
            (
                label,
                f"{iterations:.1f}" if iterations is not None else "-",
                f"{rate:.0%}",
                f"{accuracy:.0%}",
            )
            for label, iterations, rate, accuracy in rows
        ],
        title=f"Sensitivity: exploration schedule ({adl.name})",
    )
