"""Figure 1: the typical CoReDA scenario, replayed end to end.

Mr. Tanaka makes tea.  After putting tea-leaf into the kettle he
incorrectly takes the tea-cup: CoReDA prompts the electronic-pot with
all four methods (text message, red LED on the tea-cup, green LED on
the pot, pot picture).  When he correctly uses the pot he is praised.
After pouring tea he does nothing for 30 seconds: CoReDA prompts the
tea-cup with three methods (no red LED -- no tool is being misused).
When he drinks, he is praised and the activity completes.

The harness scripts exactly those two errors into a simulated
resident, runs the full pipeline, and reconstructs the timeline from
the trace.  Exact second marks differ from the paper's (13 s / 23 s /
71 s) because our step pacing is synthetic; the *structure* --
ordering, trigger reasons, LED colours, praise -- is asserted by the
tests and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.adls.tea_making import KETTLE, POT, TEABOX, TEACUP, tea_making_definition
from repro.core.config import CoReDAConfig, RemindingConfig, SensingConfig
from repro.core.events import TriggerReason
from repro.core.system import CoReDA
from repro.evalx.tables import format_table
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import ErrorKind, ScriptedError

__all__ = [
    "TimelineEvent",
    "ScenarioResult",
    "build_tea_scenario",
    "run_tea_scenario",
]


@dataclass(frozen=True)
class TimelineEvent:
    """One line of the reconstructed Figure 1 timeline."""

    time: float
    kind: str
    detail: str


@dataclass
class ScenarioResult:
    """The reconstructed scenario with structural checks."""

    timeline: List[TimelineEvent]
    completed: bool
    wrong_tool_prompt_time: Optional[float]
    first_praise_time: Optional[float]
    stall_prompt_time: Optional[float]
    second_praise_time: Optional[float]
    wrong_tool_methods: int
    stall_methods: int

    def structure_ok(self) -> bool:
        """The Figure 1 ordering and prompt structure all hold."""
        anchors = [
            self.wrong_tool_prompt_time,
            self.first_praise_time,
            self.stall_prompt_time,
            self.second_praise_time,
        ]
        if any(anchor is None for anchor in anchors):
            return False
        ordered = all(a < b for a, b in zip(anchors, anchors[1:]))
        return (
            ordered
            and self.completed
            # text + picture + green LED + red LED
            and self.wrong_tool_methods == 4
            # text + picture + green LED (no tool is being misused)
            and self.stall_methods == 3
        )

    def to_table(self) -> str:
        """Render the timeline in Figure 1's time/step/reminding style."""
        rows = [
            (f"{event.time:6.1f}", event.kind, event.detail)
            for event in self.timeline
        ]
        return format_table(
            ["Time (s)", "Event", "Detail"],
            rows,
            title="Figure 1. A typical scenario of CoReDA (reproduced)",
        )


def build_tea_scenario(
    seed: int = 11, sensing: Optional[SensingConfig] = None
):
    """The trained Figure 1 world, ready to run: ``(system, resident)``.

    Split out of :func:`run_tea_scenario` so harnesses that need the
    raw observable streams (trace entries, base-station frames, node
    EEPROMs) -- e.g. the PYTHONHASHSEED determinism sanitizer -- can
    run the identical scenario and inspect the system afterwards.
    """
    definition = tea_making_definition()
    base = CoReDAConfig(seed=seed)
    # Figure 1 uses the fixed 30 s "did nothing" rule; the idle
    # transition from the sensing subsystem (30 s after the last tool
    # activity) is the trigger, so the planner's own statistical
    # timer is parked well behind it.
    config = replace(
        base,
        reminding=RemindingConfig(
            statistical_timeout=False, stall_timeout=60.0, user_title="Mr. Tanaka"
        ),
    )
    if sensing is not None:
        config = replace(config, sensing=sensing)
    system = CoReDA.build(definition, config)
    system.train_offline(episodes=120)
    resident = system.create_resident(
        compliance=ComplianceModel.perfect(),
        error_script={
            1: ScriptedError(ErrorKind.WRONG_TOOL, wrong_tool_id=TEACUP.tool_id),
            3: ScriptedError(ErrorKind.STALL),
        },
        dwell_overrides={
            TEABOX.tool_id: 10.0,
            POT.tool_id: 8.0,
            KETTLE.tool_id: 8.0,
            TEACUP.tool_id: 6.0,
        },
        # A prompted user handles the tool deliberately: long enough
        # that the scripted scenario never loses a step to the
        # detector (sensing misses are Table 3's subject, not
        # Figure 1's).
        handling_overrides={
            POT.tool_id: 6.0,
            TEACUP.tool_id: 5.0,
        },
        error_use_duration=6.0,
        name="tanaka",
    )
    return system, resident


def run_tea_scenario(
    seed: int = 11, sensing: Optional[SensingConfig] = None
) -> ScenarioResult:
    """Run the Figure 1 scenario and reconstruct its timeline.

    ``sensing`` overrides the sensing configuration; the fast-path
    equivalence smoke test replays this scenario with
    ``batch_samples=1`` vs the default block size and asserts
    identical trace streams.
    """
    system, resident = build_tea_scenario(seed=seed, sensing=sensing)
    outcome = system.run_episode(resident, horizon=600.0)
    return _reconstruct(system, outcome.completed)


def _reconstruct(system: CoReDA, completed: bool) -> ScenarioResult:
    timeline: List[TimelineEvent] = []
    wrong_prompt = first_praise = stall_prompt = second_praise = None
    wrong_methods = stall_methods = 0
    for entry in system.trace.entries():
        if entry.category == "sensing.step":
            step_id = entry.payload["step_id"]
            name = (
                system.adl.step(step_id).name if system.adl.has_step(step_id) else "idle"
            )
            timeline.append(TimelineEvent(entry.time, "step", name))
        elif entry.category == "reminder.prompt":
            reason = entry.payload["reason"]
            tool = system.adl.tool(entry.payload["tool_id"]).name
            detail = f"prompt[{entry.payload['level']}] use {tool} ({reason})"
            timeline.append(TimelineEvent(entry.time, "reminder", detail))
            # Methods: text message + tool picture (display) + green
            # LED, plus the red LED when a wrong tool is in hand.
            if reason == TriggerReason.WRONG_TOOL.name and wrong_prompt is None:
                wrong_prompt = entry.time
                wrong_methods = 3 + (
                    1 if entry.payload.get("wrong_tool_id") is not None else 0
                )
            elif reason == TriggerReason.STALL.name and stall_prompt is None:
                stall_prompt = entry.time
                stall_methods = 3
        elif entry.category == "reminder.praise":
            timeline.append(TimelineEvent(entry.time, "praise", "Excellent!"))
            if first_praise is None and wrong_prompt is not None:
                first_praise = entry.time
            elif second_praise is None and stall_prompt is not None:
                second_praise = entry.time
        elif entry.category == "node.led":
            detail = (
                f"{entry.payload['color']} LED x{entry.payload['blinks']} on "
                f"{system.adl.tool(entry.payload['uid']).name}"
            )
            timeline.append(TimelineEvent(entry.time, "led", detail))
        elif entry.category == "planning.completed":
            timeline.append(TimelineEvent(entry.time, "completed", "tea is made"))
    return ScenarioResult(
        timeline=timeline,
        completed=completed,
        wrong_tool_prompt_time=wrong_prompt,
        first_praise_time=first_praise,
        stall_prompt_time=stall_prompt,
        second_praise_time=second_praise,
        wrong_tool_methods=wrong_methods,
        stall_methods=stall_methods,
    )
