"""Tables 1 and 2: the static hardware and sensor-mapping tables.

These are descriptive rather than measured, but the reproduction
regenerates them from the same objects the simulation actually uses,
so any drift between documentation and implementation fails a test.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.adls.library import ADLDefinition
from repro.evalx.tables import format_table
from repro.sensors.hardware import PAVENET_SPEC, HardwareSpec

__all__ = ["table1_hardware", "table2_sensor_map", "table2_rows"]


def table1_hardware(spec: HardwareSpec = PAVENET_SPEC) -> str:
    """Render Table 1 (Hardware of PAVENET)."""
    return format_table(
        ["Field", "Value"],
        spec.table_rows(),
        title="Table 1. Hardware of PAVENET",
    )


def table2_rows(definitions: List[ADLDefinition]) -> List[Tuple[str, str, str]]:
    """Rows (ADL, step, sensor-on-tool) of Table 2."""
    rows: List[Tuple[str, str, str]] = []
    for definition in definitions:
        for step in definition.adl.steps:
            sensor = step.tool.sensor.value
            short = "Acce." if "acceler" in sensor else sensor.capitalize()
            rows.append(
                (definition.adl.name, step.name, f"{short} on {step.tool.name}")
            )
    return rows


def table2_sensor_map(definitions: List[ADLDefinition]) -> str:
    """Render Table 2 (Sensor and tool of ADL Step)."""
    return format_table(
        ["ADL", "ADL Step", "Sensors & Tools"],
        table2_rows(definitions),
        title="Table 2. Sensor and tool of ADL Step",
    )
