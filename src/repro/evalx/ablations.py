"""Ablation studies over CoReDA's design choices.

Each function regenerates one ablation table:

* :func:`lambda_sweep` -- eligibility-trace decay λ vs convergence
  speed (why TD(λ) rather than TD(0));
* :func:`wrong_reward_sweep` -- the correctness-contingent reward
  interpretation (DESIGN.md) vs paying prompts unconditionally;
* :func:`detector_sweep` -- the 3-of-10 rule: detection of the
  hardest step vs idle false triggers as k varies;
* :func:`dyna_sweep` -- the fast-learning future-work item: Dyna-Q
  planning steps vs iterations-to-converge;
* :func:`radio_sweep` -- frame-loss rate vs end-to-end extract
  precision;
* :func:`sarsa_comparison` -- on-policy SARSA(λ) vs Watkins Q(λ);
* :func:`multi_routine_comparison` -- the multi-routine planner vs a
  single Q-table on a two-routine dressing user.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.adls.dressing import dressing_definition, dressing_routines
from repro.adls.library import ADLDefinition
from repro.core.adl import ADL
from repro.core.config import CoReDAConfig, PlanningConfig, RadioConfig
from repro.core.metrics import mean
from repro.evalx.extract_precision import run_extract_precision
from repro.evalx.tables import format_table
from repro.planning.action import action_space
from repro.planning.multi_routine import MultiRoutinePlanner
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import episode_states
from repro.planning.trainer import RoutineTrainer
from repro.rl.dyna import DynaQLearner
from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.sarsa import SarsaLambdaLearner
from repro.rl.schedules import ExponentialDecay
from repro.sensors.detector import KofNDetector
from repro.sensors.signals import SignalProfile, SignalSource

__all__ = [
    "lambda_sweep",
    "wrong_reward_sweep",
    "detector_sweep",
    "dyna_sweep",
    "radio_sweep",
    "sarsa_comparison",
    "multi_routine_comparison",
    "adaptation_speed",
    "escalation_ablation",
]


def _mean_convergence(
    adl: ADL,
    config: PlanningConfig,
    seeds: Sequence[int],
    episodes: int = 120,
    criterion: float = 0.95,
    learner_factory=None,
) -> Tuple[Optional[float], float]:
    """(mean iterations among converged seeds, converged fraction)."""
    iterations: List[int] = []
    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    for seed in seeds:
        rng = np.random.default_rng(seed)
        learner = learner_factory(config) if learner_factory else None
        trainer = RoutineTrainer(adl, config, learner=learner, rng=rng)
        result = trainer.train(log, routine=routine, criteria=(criterion,))
        if result.convergence[criterion] is not None:
            iterations.append(result.convergence[criterion])
    rate = len(iterations) / len(seeds)
    return (mean(iterations) if iterations else None), rate


def lambda_sweep(
    adl: ADL,
    lambdas: Sequence[float] = (0.0, 0.3, 0.7, 0.9),
    seeds: Sequence[int] = tuple(range(8)),
) -> str:
    """Trace decay λ vs mean iterations to the 95% criterion."""
    rows = []
    for lam in lambdas:
        config = replace(PlanningConfig(), trace_decay=lam)
        iterations, rate = _mean_convergence(adl, config, seeds)
        rows.append(
            (
                f"{lam:.1f}",
                f"{iterations:.1f}" if iterations is not None else "-",
                f"{rate:.0%}",
            )
        )
    return format_table(
        ["lambda", "Mean iterations (95%)", "Converged"],
        rows,
        title=f"Ablation: eligibility-trace decay ({adl.name})",
    )


def wrong_reward_sweep(
    adl: ADL,
    wrong_rewards: Sequence[float] = (0.0, 50.0, 100.0),
    seeds: Sequence[int] = tuple(range(5)),
    episodes: int = 120,
) -> str:
    """Reward for unfollowed prompts vs final greedy accuracy.

    At 0 (CoReDA's scheme, correctness-contingent) the policy learns
    the routine; paying wrong prompts like correct ones (100) removes
    the learning signal entirely.
    """
    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    rows = []
    for wrong in wrong_rewards:
        accuracies = []
        for seed in seeds:
            config = replace(PlanningConfig(), wrong_prompt_reward=wrong)
            trainer = RoutineTrainer(adl, config, rng=np.random.default_rng(seed))
            result = trainer.train(log, routine=routine)
            accuracies.append(result.curve.greedy_accuracy[-1])
        rows.append((f"{wrong:.0f}", f"{mean(accuracies):.1%}"))
    return format_table(
        ["Wrong-prompt reward", "Final greedy accuracy"],
        rows,
        title=f"Ablation: correctness-contingent reward ({adl.name})",
    )


def detector_sweep(
    ks: Sequence[int] = (1, 2, 3, 5),
    window: int = 10,
    trials: int = 300,
    seed: int = 0,
    profile: Optional[SignalProfile] = None,
    handling_duration: float = 1.8,
    idle_seconds: float = 600.0,
) -> str:
    """The k of the k-of-n rule: hard-step detection vs idle noise.

    Uses the towel profile (the paper's hardest accelerometer step).
    Lower k detects short handling more often but trips on idle
    noise; the paper's k=3 buys a near-zero false-trigger rate.
    """
    profile = profile if profile is not None else SignalProfile(
        burst_probability=0.30
    )
    hz = 10.0
    rows = []
    for k in ks:
        rng = np.random.default_rng(seed)
        source = SignalSource(profile, rng)
        hits = 0
        for _ in range(trials):
            detector = KofNDetector(threshold=1.0, k=k, n=window)
            source.begin_use(0.0, handling_duration)
            trace = source.read_trace(0.0, int(handling_duration * hz) + 20, hz)
            source.end_use()
            if detector.observe_trace(trace) > 0:
                hits += 1
        idle_detector = KofNDetector(threshold=1.0, k=k, n=window)
        idle_trace = source.read_trace(0.0, int(idle_seconds * hz), hz)
        false_triggers = idle_detector.observe_trace(idle_trace)
        rows.append(
            (
                f"{k}-of-{window}",
                f"{hits / trials:.1%}",
                f"{false_triggers / (idle_seconds / 60):.2f}/min",
            )
        )
    return format_table(
        ["Rule", "Short-step detection", "Idle false triggers"],
        rows,
        title="Ablation: usage-detection rule (towel-profile handling)",
    )


def dyna_sweep(
    adl: ADL,
    planning_steps: Sequence[int] = (0, 5, 20),
    seeds: Sequence[int] = tuple(range(8)),
) -> str:
    """Dyna-Q planning steps vs convergence speed (fast learning)."""
    rows = []
    base = PlanningConfig()
    # TD(lambda) reference row.
    reference, rate = _mean_convergence(adl, base, seeds)
    rows.append(
        (
            "TD(lambda) Q",
            f"{reference:.1f}" if reference is not None else "-",
            f"{rate:.0%}",
        )
    )
    for steps in planning_steps:
        def factory(config: PlanningConfig, steps=steps) -> DynaQLearner:
            policy = EpsilonGreedyPolicy(
                ExponentialDecay(config.epsilon, config.epsilon_decay)
            )
            return DynaQLearner(
                learning_rate=config.learning_rate,
                discount=config.discount,
                planning_steps=steps,
                policy=policy,
                initial_q=config.initial_q,
            )

        iterations, rate = _mean_convergence(
            adl, base, seeds, learner_factory=factory
        )
        rows.append(
            (
                f"Dyna-Q ({steps} planning steps)",
                f"{iterations:.1f}" if iterations is not None else "-",
                f"{rate:.0%}",
            )
        )
    return format_table(
        ["Learner", "Mean iterations (95%)", "Converged"],
        rows,
        title=f"Ablation: fast learning via Dyna-Q ({adl.name})",
    )


def radio_sweep(
    definition: ADLDefinition,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.4, 0.8),
    samples_per_step: int = 25,
    seed: int = 0,
) -> str:
    """Frame-loss probability vs mean end-to-end extract precision."""
    rows = []
    for loss in loss_rates:
        config = CoReDAConfig(radio=RadioConfig(loss_probability=loss))
        result = run_extract_precision(
            [definition],
            samples_per_step=samples_per_step,
            config=config,
            seed=seed,
        )
        precision = mean([row.precision for row in result.rows])
        rows.append((f"{loss:.0%}", f"{precision:.1%}"))
    return format_table(
        ["Frame loss", "Mean extract precision"],
        rows,
        title=f"Ablation: radio loss ({definition.adl.name})",
    )


def sarsa_comparison(
    adl: ADL,
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
) -> str:
    """SARSA(λ) / Expected SARSA vs Watkins Q(λ) on the same logs.

    Naive SARSA(λ) lacks the strict trace cut and wedges below full
    accuracy; Expected SARSA (no traces, expectation bootstrap)
    matches Q-learning on this near-deterministic problem.
    """
    from repro.rl.expected_sarsa import ExpectedSarsaLearner

    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    config = PlanningConfig()
    q_iterations, q_rate = _mean_convergence(
        adl, config, seeds, episodes=episodes, criterion=criterion
    )

    # Expected SARSA keeps a *constant* ε (its bootstrap expectation
    # must match its behaviour policy), so the behaviour-accuracy
    # convergence criterion never fires; the fair readout is the
    # final greedy accuracy, like SARSA's.
    expected_final: List[float] = []
    for seed in seeds:
        learner = ExpectedSarsaLearner(
            learning_rate=config.learning_rate,
            discount=config.discount,
            epsilon=0.1,
            initial_q=config.initial_q,
        )
        trainer = RoutineTrainer(
            adl, config, learner=learner, rng=np.random.default_rng(seed)
        )
        result = trainer.train(log, routine=routine)
        expected_final.append(result.curve.greedy_accuracy[-1])
    sarsa_final: List[float] = []
    for seed in seeds:
        accuracy = _train_sarsa(adl, config, log, np.random.default_rng(seed))
        sarsa_final.append(accuracy)
    rows = [
        (
            "Watkins Q(lambda)",
            f"{q_iterations:.1f}" if q_iterations is not None else "-",
            f"{q_rate:.0%}",
        ),
        (
            "Expected SARSA",
            f"(final greedy accuracy {mean(expected_final):.1%})",
            "-",
        ),
        (
            "SARSA(lambda)",
            f"(final greedy accuracy {mean(sarsa_final):.1%})",
            "-",
        ),
    ]
    return format_table(
        ["Learner", "Mean iterations (95%)", "Converged"],
        rows,
        title=f"Ablation: on-policy vs off-policy ({adl.name})",
    )


def _train_sarsa(
    adl: ADL,
    config: PlanningConfig,
    log: Sequence[Sequence[int]],
    rng: np.random.Generator,
) -> float:
    """Train SARSA(λ) on logged episodes; return final greedy accuracy."""
    actions = tuple(action_space(adl))
    learner = SarsaLambdaLearner(
        learning_rate=config.learning_rate,
        discount=config.discount,
        trace_decay=config.trace_decay,
        policy=EpsilonGreedyPolicy(
            ExponentialDecay(config.epsilon, config.epsilon_decay)
        ),
        initial_q=config.initial_q,
    )
    routine_steps = list(log[0])
    reward_fn = CoReDAReward(config, routine_steps[-1])
    for iteration, episode in enumerate(log):
        states = episode_states(list(episode))
        learner.begin_episode()
        action, _ = learner.select_action(states[0], actions, rng, step=iteration)
        for index in range(len(states) - 1):
            state, next_state = states[index], states[index + 1]
            reward = reward_fn.reward(state, action, next_state)
            done = next_state.current == reward_fn.terminal_step_id
            if done:
                learner.observe(state, action, reward, next_state, None, True)
                break
            next_action, _ = learner.select_action(
                next_state, actions, rng, step=iteration
            )
            learner.observe(state, action, reward, next_state, next_action, False)
            action = next_action
    # Greedy probe against the routine.
    states = episode_states(routine_steps)
    total = len(states) - 1
    correct = sum(
        1
        for index in range(total)
        if learner.greedy_action(states[index], actions).tool_id
        == states[index + 1].current
    )
    return correct / total


def escalation_ablation(
    definition: ADLDefinition,
    minimal_response: float = 0.35,
    episodes: int = 8,
    seed: int = 0,
) -> str:
    """Does escalation rescue users who miss minimal prompts?

    A resident who notices only ``minimal_response`` of minimal
    prompts (but nearly all specific ones) stalls on every step.
    With escalation enabled, unanswered minimal prompts are upgraded
    to specific after ``escalate_after`` repeats; with it effectively
    disabled, the resident depends on lucky minimal prompts or
    self-recovery (a caregiver intervention in burden terms).
    """
    from repro.core.system import CoReDA
    from repro.resident.compliance import ComplianceModel
    from repro.resident.dementia import DementiaProfile

    rows = []
    for label, escalate_after in (("escalate after 1 miss", 1),
                                  ("escalate after 2", 2),
                                  ("never escalate", 10_000)):
        config = replace(
            CoReDAConfig(seed=seed),
            reminding=replace(
                CoReDAConfig().reminding,
                escalate_after=escalate_after,
                max_reminders_per_step=10_000,
            ),
        )
        system = CoReDA.build(definition, config)
        system.train_offline()
        reliable = {
            step.step_id: max(step.handling_duration, 5.0)
            for step in definition.adl.steps
        }
        compliance = ComplianceModel(
            minimal_response=minimal_response, specific_response=0.98
        )
        reminders = []
        recoveries_before = system.trace.count("resident.self_recovery")
        for index in range(episodes):
            resident = system.create_resident(
                dementia=DementiaProfile(stall_probability=0.9),
                compliance=compliance,
                handling_overrides=reliable,
                name=f"escalation.{escalate_after}.{index}",
            )
            outcome = system.run_episode(resident, horizon=7200.0)
            reminders.append(outcome.reminders_seen)
        recoveries = (
            system.trace.count("resident.self_recovery") - recoveries_before
        )
        rows.append(
            (label, f"{mean(reminders):.1f}", recoveries)
        )
    return format_table(
        ["Escalation policy", "Reminders/episode", "Self-recoveries"],
        rows,
        title=(
            f"Ablation: escalation with low minimal-prompt compliance "
            f"({definition.adl.name}, minimal response "
            f"{minimal_response:.0%})"
        ),
    )


def adaptation_speed(
    adl: ADL,
    epsilons: Sequence[float] = (0.05, 0.1, 0.3),
    seeds: Sequence[int] = tuple(range(5)),
    max_episodes: int = 60,
) -> str:
    """Online adaptation: episodes to re-learn a changed routine.

    Trains on the canonical routine, switches the user to a permuted
    routine, and counts the live episodes the always-adapting mode
    (paper §3.2) needs before the greedy policy tracks the new
    routine perfectly, as a function of the constant exploration ε.
    """
    from repro.core.adl import Routine
    from repro.planning.online import OnlineAdaptation

    ids = list(adl.step_ids)
    if len(ids) < 3:
        raise ValueError("need at least 3 steps to permute a routine")
    new_ids = [ids[0]] + ids[1:-1][::-1] + [ids[-1]]
    new_routine = Routine(adl, new_ids)
    rows = []
    for epsilon in epsilons:
        episodes_needed: List[float] = []
        for seed in seeds:
            trainer = RoutineTrainer(adl, rng=np.random.default_rng(seed))
            result = trainer.train(
                [list(adl.step_ids)] * 120, routine=adl.canonical_routine()
            )
            adaptation = OnlineAdaptation(
                adl,
                result.learner,
                rng=np.random.default_rng(1000 + seed),
                epsilon=epsilon,
            )
            needed = None
            for episode in range(1, max_episodes + 1):
                for event_index, step_id in enumerate(new_ids):
                    from repro.core.events import StepEvent

                    adaptation.on_step(
                        StepEvent(
                            time=0.0,
                            step_id=step_id,
                            previous_step_id=new_ids[event_index - 1]
                            if event_index
                            else 0,
                        )
                    )
                if _tracks_routine(result.learner, trainer.actions, new_ids):
                    needed = episode
                    break
            episodes_needed.append(
                needed if needed is not None else float(max_episodes)
            )
        rows.append((f"{epsilon:.2f}", f"{mean(episodes_needed):.1f}"))
    return format_table(
        ["Adaptation epsilon", "Episodes to track new routine"],
        rows,
        title=f"Extension: online adaptation speed ({adl.name})",
    )


def _tracks_routine(learner, actions, step_ids) -> bool:
    states = episode_states(list(step_ids))
    return all(
        learner.greedy_action(states[i], actions).tool_id
        == states[i + 1].current
        for i in range(len(states) - 1)
    )


def multi_routine_comparison(
    episodes_per_routine: int = 60,
    seed: int = 0,
) -> str:
    """Multi-routine planner vs a single Q-table on mixed dressing logs."""
    definition = dressing_definition()
    adl = definition.adl
    routines = dressing_routines(adl)
    log: List[List[int]] = []
    for routine in routines:
        log.extend([list(routine.step_ids)] * episodes_per_routine)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(log))
    mixed = [log[i] for i in order]

    planner = MultiRoutinePlanner(adl, rng=np.random.default_rng(seed + 1))
    planner.train(mixed)
    single = RoutineTrainer(adl, rng=np.random.default_rng(seed + 2))
    single_result = single.train(mixed, routine=routines[0])

    rows = []
    for label, routine in zip(("routine A", "routine B"), routines):
        steps = list(routine.step_ids)
        multi_correct = 0
        single_correct = 0
        total = len(steps) - 1
        for index in range(total):
            prefix = steps[: index + 1]
            if planner.predict(prefix).tool_id == steps[index + 1]:
                multi_correct += 1
            state = episode_states(steps)[index]
            greedy = single_result.learner.q.best_action(
                state, list(single.actions)
            )
            if greedy.tool_id == steps[index + 1]:
                single_correct += 1
        rows.append(
            (
                label,
                f"{multi_correct / total:.0%}",
                f"{single_correct / total:.0%}",
            )
        )
    return format_table(
        ["User routine", "Multi-routine planner", "Single Q-table"],
        rows,
        title="Extension: multi-routine dressing (future-work item 1)",
    )
