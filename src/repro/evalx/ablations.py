"""Ablation studies over CoReDA's design choices.

Each function regenerates one ablation table:

* :func:`lambda_sweep` -- eligibility-trace decay λ vs convergence
  speed (why TD(λ) rather than TD(0));
* :func:`wrong_reward_sweep` -- the correctness-contingent reward
  interpretation (DESIGN.md) vs paying prompts unconditionally;
* :func:`detector_sweep` -- the 3-of-10 rule: detection of the
  hardest step vs idle false triggers as k varies;
* :func:`dyna_sweep` -- the fast-learning future-work item: Dyna-Q
  planning steps vs iterations-to-converge;
* :func:`radio_sweep` -- frame-loss rate vs end-to-end extract
  precision;
* :func:`sarsa_comparison` -- on-policy SARSA(λ) vs Watkins Q(λ);
* :func:`multi_routine_comparison` -- the multi-routine planner vs a
  single Q-table on a two-routine dressing user.

Every sweep is decomposed into pure, picklable cells (one seed of one
configuration each) with a ``plan_*`` companion returning a
:class:`~repro.evalx.parallel.Section`, so the runner can fan the
cells of all ablations out over worker processes and still merge a
byte-identical report.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.adls.dressing import dressing_definition, dressing_routines
from repro.adls.library import ADLDefinition
from repro.core.adl import ADL
from repro.core.config import (
    CoReDAConfig,
    PlanningConfig,
    RadioConfig,
    SensingConfig,
)
from repro.core.metrics import mean
from repro.evalx.extract_precision import run_extract_precision
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import format_table
from repro.planning.action import action_space
from repro.planning.multi_routine import MultiRoutinePlanner
from repro.planning.rewards_coreda import CoReDAReward
from repro.planning.state import episode_states
from repro.planning.store import PolicyCache, train_routine_cached
from repro.planning.trainer import RoutineTrainer
from repro.rl.policies import EpsilonGreedyPolicy
from repro.rl.sarsa import SarsaLambdaLearner
from repro.rl.schedules import ExponentialDecay
from repro.sensors.detector import KofNDetector
from repro.sensors.signals import SignalProfile, SignalSource
from repro.sim.random import seeded_generator

__all__ = [
    "lambda_sweep",
    "wrong_reward_sweep",
    "detector_sweep",
    "dyna_sweep",
    "radio_sweep",
    "sarsa_comparison",
    "multi_routine_comparison",
    "adaptation_speed",
    "escalation_ablation",
    "plan_lambda_sweep",
    "plan_wrong_reward_sweep",
    "plan_detector_sweep",
    "plan_dyna_sweep",
    "plan_radio_sweep",
    "plan_sarsa_comparison",
    "plan_multi_routine_comparison",
    "plan_adaptation_speed",
    "plan_escalation_ablation",
]


# ---------------------------------------------------------------------------
# Cells: one pure unit of work each (picklable, seed-explicit)
# ---------------------------------------------------------------------------


def _convergence_cell(
    adl: ADL,
    config: PlanningConfig,
    seed: int,
    episodes: int = 120,
    criterion: float = 0.95,
    learner_spec: Optional[Tuple] = None,
    cache_dir: Optional[str] = None,
) -> Optional[int]:
    """One seed's iterations-to-criterion (``None`` = never converged)."""
    cache = PolicyCache(cache_dir) if cache_dir else None
    trained = train_routine_cached(
        adl,
        list(adl.canonical_routine().step_ids),
        config,
        seed,
        episodes,
        criteria=(criterion,),
        cache=cache,
        learner_spec=learner_spec,
    )
    return trained.convergence[criterion]


def _final_accuracy_cell(
    adl: ADL,
    config: PlanningConfig,
    seed: int,
    episodes: int = 120,
    cache_dir: Optional[str] = None,
) -> float:
    """One seed's final greedy accuracy after training."""
    cache = PolicyCache(cache_dir) if cache_dir else None
    trained = train_routine_cached(
        adl,
        list(adl.canonical_routine().step_ids),
        config,
        seed,
        episodes,
        criteria=(0.95, 0.98),
        cache=cache,
    )
    return trained.curve.greedy_accuracy[-1]


def _detector_cell(
    k: int,
    window: int,
    trials: int,
    seed: int,
    profile: SignalProfile,
    handling_duration: float,
    idle_seconds: float,
) -> Tuple[int, int]:
    """One k of the k-of-n rule: (handling hits, idle false triggers)."""
    hz = 10.0
    rng = seeded_generator(seed)
    source = SignalSource(profile, rng)
    hits = 0
    for _ in range(trials):
        detector = KofNDetector(threshold=1.0, k=k, n=window)
        source.begin_use(0.0, handling_duration)
        trace = source.read_trace(0.0, int(handling_duration * hz) + 20, hz)
        source.end_use()
        if detector.observe_trace(trace) > 0:
            hits += 1
    idle_detector = KofNDetector(threshold=1.0, k=k, n=window)
    idle_trace = source.read_trace(0.0, int(idle_seconds * hz), hz)
    false_triggers = idle_detector.observe_trace(idle_trace)
    return hits, false_triggers


def _radio_cell(
    definition: ADLDefinition,
    loss: float,
    samples_per_step: int,
    seed: int,
    sensing: Optional[SensingConfig] = None,
) -> float:
    """Mean extract precision at one frame-loss rate."""
    config = CoReDAConfig(radio=RadioConfig(loss_probability=loss))
    if sensing is not None:
        config = replace(config, sensing=sensing)
    result = run_extract_precision(
        [definition],
        samples_per_step=samples_per_step,
        config=config,
        seed=seed,
    )
    return mean([row.precision for row in result.rows])


def _expected_sarsa_cell(adl: ADL, seed: int, episodes: int) -> float:
    """Final greedy accuracy of Expected SARSA on the canonical logs."""
    from repro.rl.expected_sarsa import ExpectedSarsaLearner

    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    config = PlanningConfig()
    learner = ExpectedSarsaLearner(
        learning_rate=config.learning_rate,
        discount=config.discount,
        epsilon=0.1,
        initial_q=config.initial_q,
        q_backend=config.q_backend,
    )
    trainer = RoutineTrainer(
        adl, config, learner=learner, rng=seeded_generator(seed)
    )
    result = trainer.train(log, routine=routine)
    return result.curve.greedy_accuracy[-1]


def _sarsa_cell(adl: ADL, seed: int, episodes: int) -> float:
    """Final greedy accuracy of naive SARSA(λ) on the canonical logs."""
    routine = adl.canonical_routine()
    log = [list(routine.step_ids)] * episodes
    return _train_sarsa(
        adl, PlanningConfig(), log, seeded_generator(seed)
    )


def _adaptation_cell(
    adl: ADL, epsilon: float, seed: int, max_episodes: int
) -> float:
    """Episodes the always-adapting mode needs to track a new routine."""
    from repro.core.adl import Routine
    from repro.core.events import StepEvent
    from repro.planning.online import OnlineAdaptation

    ids = list(adl.step_ids)
    new_ids = [ids[0]] + ids[1:-1][::-1] + [ids[-1]]
    Routine(adl, new_ids)  # validates the permutation
    trainer = RoutineTrainer(adl, rng=seeded_generator(seed))
    result = trainer.train(
        [list(adl.step_ids)] * 120, routine=adl.canonical_routine()
    )
    adaptation = OnlineAdaptation(
        adl,
        result.learner,
        rng=seeded_generator(1000 + seed),
        epsilon=epsilon,
    )
    for episode in range(1, max_episodes + 1):
        for event_index, step_id in enumerate(new_ids):
            adaptation.on_step(
                StepEvent(
                    time=0.0,
                    step_id=step_id,
                    previous_step_id=new_ids[event_index - 1]
                    if event_index
                    else 0,
                )
            )
        if _tracks_routine(result.learner, trainer.actions, new_ids):
            return float(episode)
    return float(max_episodes)


def _escalation_cell(
    definition: ADLDefinition,
    escalate_after: int,
    minimal_response: float,
    episodes: int,
    seed: int,
) -> Tuple[float, int]:
    """One escalation policy: (mean reminders/episode, self-recoveries)."""
    from repro.core.system import CoReDA
    from repro.resident.compliance import ComplianceModel
    from repro.resident.dementia import DementiaProfile

    config = replace(
        CoReDAConfig(seed=seed),
        reminding=replace(
            CoReDAConfig().reminding,
            escalate_after=escalate_after,
            max_reminders_per_step=10_000,
        ),
    )
    system = CoReDA.build(definition, config)
    system.train_offline()
    reliable = {
        step.step_id: max(step.handling_duration, 5.0)
        for step in definition.adl.steps
    }
    compliance = ComplianceModel(
        minimal_response=minimal_response, specific_response=0.98
    )
    reminders = []
    recoveries_before = system.trace.count("resident.self_recovery")
    for index in range(episodes):
        resident = system.create_resident(
            dementia=DementiaProfile(stall_probability=0.9),
            compliance=compliance,
            handling_overrides=reliable,
            name=f"escalation.{escalate_after}.{index}",
        )
        outcome = system.run_episode(resident, horizon=7200.0)
        reminders.append(outcome.reminders_seen)
    recoveries = (
        system.trace.count("resident.self_recovery") - recoveries_before
    )
    return mean(reminders), recoveries


def _multi_routine_cell(
    episodes_per_routine: int, seed: int
) -> List[Tuple[str, str, str]]:
    """The whole multi-routine comparison (one shared training run)."""
    definition = dressing_definition()
    adl = definition.adl
    routines = dressing_routines(adl)
    log: List[List[int]] = []
    for routine in routines:
        log.extend([list(routine.step_ids)] * episodes_per_routine)
    rng = seeded_generator(seed)
    order = rng.permutation(len(log))
    mixed = [log[i] for i in order]

    planner = MultiRoutinePlanner(adl, rng=seeded_generator(seed + 1))
    planner.train(mixed)
    single = RoutineTrainer(adl, rng=seeded_generator(seed + 2))
    single_result = single.train(mixed, routine=routines[0])

    rows = []
    for label, routine in zip(("routine A", "routine B"), routines):
        steps = list(routine.step_ids)
        states = episode_states(steps)
        multi_correct = 0
        single_correct = 0
        total = len(steps) - 1
        for index in range(total):
            prefix = steps[: index + 1]
            if planner.predict(prefix).tool_id == steps[index + 1]:
                multi_correct += 1
            greedy = single_result.learner.q.best_action(
                states[index], single.actions
            )
            if greedy.tool_id == steps[index + 1]:
                single_correct += 1
        rows.append(
            (
                label,
                f"{multi_correct / total:.0%}",
                f"{single_correct / total:.0%}",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Shared aggregation helpers
# ---------------------------------------------------------------------------


def _convergence_row(
    label: str, results: Sequence[Optional[int]]
) -> Tuple[str, str, str]:
    """(label, mean-iterations, converged-rate) from per-seed cells."""
    iterations = [r for r in results if r is not None]
    mean_text = f"{mean(iterations):.1f}" if iterations else "-"
    return label, mean_text, f"{len(iterations) / len(results):.0%}"


def _mean_convergence(
    adl: ADL,
    config: PlanningConfig,
    seeds: Sequence[int],
    episodes: int = 120,
    criterion: float = 0.95,
    learner_spec: Optional[Tuple] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[Optional[float], float]:
    """(mean iterations among converged seeds, converged fraction)."""
    results = [
        _convergence_cell(
            adl, config, seed, episodes, criterion, learner_spec, cache_dir
        )
        for seed in seeds
    ]
    iterations = [r for r in results if r is not None]
    rate = len(iterations) / len(seeds)
    return (mean(iterations) if iterations else None), rate


# ---------------------------------------------------------------------------
# Sweeps: plan_* builds the Section, the plain function runs it inline
# ---------------------------------------------------------------------------


def plan_lambda_sweep(
    adl: ADL,
    lambdas: Sequence[float] = (0.0, 0.3, 0.7, 0.9),
    seeds: Sequence[int] = tuple(range(8)),
    cache_dir: Optional[str] = None,
) -> Section:
    """Trace decay λ vs mean iterations to the 95% criterion."""
    cells = [
        Cell(
            _convergence_cell,
            (adl, replace(PlanningConfig(), trace_decay=lam), seed, 120,
             0.95, None, cache_dir),
            label=f"lambda.{lam}[{seed}]",
        )
        for lam in lambdas
        for seed in seeds
    ]

    def merge(results: List[Optional[int]]) -> str:
        rows = []
        for index, lam in enumerate(lambdas):
            chunk = results[index * len(seeds):(index + 1) * len(seeds)]
            label, mean_text, rate = _convergence_row(f"{lam:.1f}", chunk)
            rows.append((label, mean_text, rate))
        return format_table(
            ["lambda", "Mean iterations (95%)", "Converged"],
            rows,
            title=f"Ablation: eligibility-trace decay ({adl.name})",
        )

    return Section(f"ablation.lambda.{adl.name}", cells, merge)


def lambda_sweep(
    adl: ADL,
    lambdas: Sequence[float] = (0.0, 0.3, 0.7, 0.9),
    seeds: Sequence[int] = tuple(range(8)),
) -> str:
    """Trace decay λ vs mean iterations to the 95% criterion."""
    return run_section(plan_lambda_sweep(adl, lambdas, seeds))


def plan_wrong_reward_sweep(
    adl: ADL,
    wrong_rewards: Sequence[float] = (0.0, 50.0, 100.0),
    seeds: Sequence[int] = tuple(range(5)),
    episodes: int = 120,
    cache_dir: Optional[str] = None,
) -> Section:
    """Reward for unfollowed prompts vs final greedy accuracy.

    At 0 (CoReDA's scheme, correctness-contingent) the policy learns
    the routine; paying wrong prompts like correct ones (100) removes
    the learning signal entirely.
    """
    cells = [
        Cell(
            _final_accuracy_cell,
            (adl, replace(PlanningConfig(), wrong_prompt_reward=wrong), seed,
             episodes, cache_dir),
            label=f"wrong-reward.{wrong}[{seed}]",
        )
        for wrong in wrong_rewards
        for seed in seeds
    ]

    def merge(results: List[float]) -> str:
        rows = []
        for index, wrong in enumerate(wrong_rewards):
            chunk = results[index * len(seeds):(index + 1) * len(seeds)]
            rows.append((f"{wrong:.0f}", f"{mean(chunk):.1%}"))
        return format_table(
            ["Wrong-prompt reward", "Final greedy accuracy"],
            rows,
            title=f"Ablation: correctness-contingent reward ({adl.name})",
        )

    return Section(f"ablation.wrong-reward.{adl.name}", cells, merge)


def wrong_reward_sweep(
    adl: ADL,
    wrong_rewards: Sequence[float] = (0.0, 50.0, 100.0),
    seeds: Sequence[int] = tuple(range(5)),
    episodes: int = 120,
) -> str:
    """Reward for unfollowed prompts vs final greedy accuracy."""
    return run_section(
        plan_wrong_reward_sweep(adl, wrong_rewards, seeds, episodes)
    )


def plan_detector_sweep(
    ks: Sequence[int] = (1, 2, 3, 5),
    window: int = 10,
    trials: int = 300,
    seed: int = 0,
    profile: Optional[SignalProfile] = None,
    handling_duration: float = 1.8,
    idle_seconds: float = 600.0,
) -> Section:
    """The k of the k-of-n rule: hard-step detection vs idle noise.

    Uses the towel profile (the paper's hardest accelerometer step).
    Lower k detects short handling more often but trips on idle
    noise; the paper's k=3 buys a near-zero false-trigger rate.
    """
    profile = profile if profile is not None else SignalProfile(
        burst_probability=0.30
    )
    cells = [
        Cell(
            _detector_cell,
            (k, window, trials, seed, profile, handling_duration,
             idle_seconds),
            label=f"detector.{k}-of-{window}",
        )
        for k in ks
    ]

    def merge(results: List[Tuple[int, int]]) -> str:
        rows = [
            (
                f"{k}-of-{window}",
                f"{hits / trials:.1%}",
                f"{false_triggers / (idle_seconds / 60):.2f}/min",
            )
            for k, (hits, false_triggers) in zip(ks, results)
        ]
        return format_table(
            ["Rule", "Short-step detection", "Idle false triggers"],
            rows,
            title="Ablation: usage-detection rule (towel-profile handling)",
        )

    return Section("ablation.detector", cells, merge)


def detector_sweep(
    ks: Sequence[int] = (1, 2, 3, 5),
    window: int = 10,
    trials: int = 300,
    seed: int = 0,
    profile: Optional[SignalProfile] = None,
    handling_duration: float = 1.8,
    idle_seconds: float = 600.0,
) -> str:
    """The k of the k-of-n rule: hard-step detection vs idle noise."""
    return run_section(
        plan_detector_sweep(
            ks, window, trials, seed, profile, handling_duration, idle_seconds
        )
    )


def plan_dyna_sweep(
    adl: ADL,
    planning_steps: Sequence[int] = (0, 5, 20),
    seeds: Sequence[int] = tuple(range(8)),
    cache_dir: Optional[str] = None,
) -> Section:
    """Dyna-Q planning steps vs convergence speed (fast learning)."""
    base = PlanningConfig()
    specs: List[Tuple[str, Optional[Tuple]]] = [("TD(lambda) Q", None)]
    specs.extend(
        (f"Dyna-Q ({steps} planning steps)", ("dyna", steps))
        for steps in planning_steps
    )
    cells = [
        Cell(
            _convergence_cell,
            (adl, base, seed, 120, 0.95, spec, cache_dir),
            label=f"dyna.{label}[{seed}]",
        )
        for label, spec in specs
        for seed in seeds
    ]

    def merge(results: List[Optional[int]]) -> str:
        rows = []
        for index, (label, _) in enumerate(specs):
            chunk = results[index * len(seeds):(index + 1) * len(seeds)]
            rows.append(_convergence_row(label, chunk))
        return format_table(
            ["Learner", "Mean iterations (95%)", "Converged"],
            rows,
            title=f"Ablation: fast learning via Dyna-Q ({adl.name})",
        )

    return Section(f"ablation.dyna.{adl.name}", cells, merge)


def dyna_sweep(
    adl: ADL,
    planning_steps: Sequence[int] = (0, 5, 20),
    seeds: Sequence[int] = tuple(range(8)),
) -> str:
    """Dyna-Q planning steps vs convergence speed (fast learning)."""
    return run_section(plan_dyna_sweep(adl, planning_steps, seeds))


def plan_radio_sweep(
    definition: ADLDefinition,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.4, 0.8),
    samples_per_step: int = 25,
    seed: int = 0,
    sensing: Optional[SensingConfig] = None,
) -> Section:
    """Frame-loss probability vs mean end-to-end extract precision.

    ``sensing`` overrides the sensing configuration (the sensing
    benches use it to time the reference loop against the block fast
    path); cell argument tuples are unchanged when it is ``None``.
    """
    cells = [
        Cell(
            _radio_cell,
            (definition, loss, samples_per_step, seed)
            + ((sensing,) if sensing is not None else ()),
            label=f"radio.{loss}",
        )
        for loss in loss_rates
    ]

    def merge(results: List[float]) -> str:
        rows = [
            (f"{loss:.0%}", f"{precision:.1%}")
            for loss, precision in zip(loss_rates, results)
        ]
        return format_table(
            ["Frame loss", "Mean extract precision"],
            rows,
            title=f"Ablation: radio loss ({definition.adl.name})",
        )

    return Section(f"ablation.radio.{definition.adl.name}", cells, merge)


def radio_sweep(
    definition: ADLDefinition,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.4, 0.8),
    samples_per_step: int = 25,
    seed: int = 0,
    sensing: Optional[SensingConfig] = None,
) -> str:
    """Frame-loss probability vs mean end-to-end extract precision."""
    return run_section(
        plan_radio_sweep(definition, loss_rates, samples_per_step, seed,
                         sensing)
    )


def plan_sarsa_comparison(
    adl: ADL,
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
    cache_dir: Optional[str] = None,
) -> Section:
    """SARSA(λ) / Expected SARSA vs Watkins Q(λ) on the same logs.

    Naive SARSA(λ) lacks the strict trace cut and wedges below full
    accuracy; Expected SARSA (no traces, expectation bootstrap)
    matches Q-learning on this near-deterministic problem.
    """
    config = PlanningConfig()
    cells = [
        Cell(
            _convergence_cell,
            (adl, config, seed, episodes, criterion, None, cache_dir),
            label=f"sarsa.q[{seed}]",
        )
        for seed in seeds
    ]
    cells.extend(
        Cell(
            _expected_sarsa_cell, (adl, seed, episodes),
            label=f"sarsa.expected[{seed}]",
        )
        for seed in seeds
    )
    cells.extend(
        Cell(_sarsa_cell, (adl, seed, episodes), label=f"sarsa.naive[{seed}]")
        for seed in seeds
    )

    def merge(results: List) -> str:
        n = len(seeds)
        q_results = results[:n]
        expected_final = results[n:2 * n]
        sarsa_final = results[2 * n:]
        q_label, q_mean, q_rate = _convergence_row(
            "Watkins Q(lambda)", q_results
        )
        rows = [
            (q_label, q_mean, q_rate),
            (
                "Expected SARSA",
                f"(final greedy accuracy {mean(expected_final):.1%})",
                "-",
            ),
            (
                "SARSA(lambda)",
                f"(final greedy accuracy {mean(sarsa_final):.1%})",
                "-",
            ),
        ]
        return format_table(
            ["Learner", "Mean iterations (95%)", "Converged"],
            rows,
            title=f"Ablation: on-policy vs off-policy ({adl.name})",
        )

    return Section(f"ablation.sarsa.{adl.name}", cells, merge)


def sarsa_comparison(
    adl: ADL,
    seeds: Sequence[int] = tuple(range(8)),
    episodes: int = 120,
    criterion: float = 0.95,
) -> str:
    """SARSA(λ) / Expected SARSA vs Watkins Q(λ) on the same logs."""
    return run_section(plan_sarsa_comparison(adl, seeds, episodes, criterion))


def _train_sarsa(
    adl: ADL,
    config: PlanningConfig,
    log: Sequence[Sequence[int]],
    rng: np.random.Generator,
) -> float:
    """Train SARSA(λ) on logged episodes; return final greedy accuracy."""
    actions = tuple(action_space(adl))
    learner = SarsaLambdaLearner(
        learning_rate=config.learning_rate,
        discount=config.discount,
        trace_decay=config.trace_decay,
        policy=EpsilonGreedyPolicy(
            ExponentialDecay(config.epsilon, config.epsilon_decay)
        ),
        initial_q=config.initial_q,
        q_backend=config.q_backend,
    )
    routine_steps = list(log[0])
    reward_fn = CoReDAReward(config, routine_steps[-1])
    for iteration, episode in enumerate(log):
        states = episode_states(list(episode))
        learner.begin_episode()
        action, _ = learner.select_action(states[0], actions, rng, step=iteration)
        for index in range(len(states) - 1):
            state, next_state = states[index], states[index + 1]
            reward = reward_fn.reward(state, action, next_state)
            done = next_state.current == reward_fn.terminal_step_id
            if done:
                learner.observe(state, action, reward, next_state, None, True)
                break
            next_action, _ = learner.select_action(
                next_state, actions, rng, step=iteration
            )
            learner.observe(state, action, reward, next_state, next_action, False)
            action = next_action
    # Greedy probe against the routine.
    states = episode_states(routine_steps)
    total = len(states) - 1
    correct = sum(
        1
        for index in range(total)
        if learner.greedy_action(states[index], actions).tool_id
        == states[index + 1].current
    )
    return correct / total


def plan_escalation_ablation(
    definition: ADLDefinition,
    minimal_response: float = 0.35,
    episodes: int = 8,
    seed: int = 0,
) -> Section:
    """Does escalation rescue users who miss minimal prompts?

    A resident who notices only ``minimal_response`` of minimal
    prompts (but nearly all specific ones) stalls on every step.
    With escalation enabled, unanswered minimal prompts are upgraded
    to specific after ``escalate_after`` repeats; with it effectively
    disabled, the resident depends on lucky minimal prompts or
    self-recovery (a caregiver intervention in burden terms).
    """
    policies = (
        ("escalate after 1 miss", 1),
        ("escalate after 2", 2),
        ("never escalate", 10_000),
    )
    cells = [
        Cell(
            _escalation_cell,
            (definition, escalate_after, minimal_response, episodes, seed),
            label=f"escalation.{escalate_after}",
        )
        for _, escalate_after in policies
    ]

    def merge(results: List[Tuple[float, int]]) -> str:
        rows = [
            (label, f"{mean_reminders:.1f}", recoveries)
            for (label, _), (mean_reminders, recoveries) in zip(
                policies, results
            )
        ]
        return format_table(
            ["Escalation policy", "Reminders/episode", "Self-recoveries"],
            rows,
            title=(
                f"Ablation: escalation with low minimal-prompt compliance "
                f"({definition.adl.name}, minimal response "
                f"{minimal_response:.0%})"
            ),
        )

    return Section(f"ablation.escalation.{definition.adl.name}", cells, merge)


def escalation_ablation(
    definition: ADLDefinition,
    minimal_response: float = 0.35,
    episodes: int = 8,
    seed: int = 0,
) -> str:
    """Does escalation rescue users who miss minimal prompts?"""
    return run_section(
        plan_escalation_ablation(definition, minimal_response, episodes, seed)
    )


def plan_adaptation_speed(
    adl: ADL,
    epsilons: Sequence[float] = (0.05, 0.1, 0.3),
    seeds: Sequence[int] = tuple(range(5)),
    max_episodes: int = 60,
) -> Section:
    """Online adaptation: episodes to re-learn a changed routine.

    Trains on the canonical routine, switches the user to a permuted
    routine, and counts the live episodes the always-adapting mode
    (paper §3.2) needs before the greedy policy tracks the new
    routine perfectly, as a function of the constant exploration ε.
    """
    if len(adl.step_ids) < 3:
        raise ValueError("need at least 3 steps to permute a routine")
    cells = [
        Cell(
            _adaptation_cell,
            (adl, epsilon, seed, max_episodes),
            label=f"adaptation.{epsilon}[{seed}]",
        )
        for epsilon in epsilons
        for seed in seeds
    ]

    def merge(results: List[float]) -> str:
        rows = []
        for index, epsilon in enumerate(epsilons):
            chunk = results[index * len(seeds):(index + 1) * len(seeds)]
            rows.append((f"{epsilon:.2f}", f"{mean(chunk):.1f}"))
        return format_table(
            ["Adaptation epsilon", "Episodes to track new routine"],
            rows,
            title=f"Extension: online adaptation speed ({adl.name})",
        )

    return Section(f"extension.adaptation.{adl.name}", cells, merge)


def adaptation_speed(
    adl: ADL,
    epsilons: Sequence[float] = (0.05, 0.1, 0.3),
    seeds: Sequence[int] = tuple(range(5)),
    max_episodes: int = 60,
) -> str:
    """Online adaptation: episodes to re-learn a changed routine."""
    return run_section(
        plan_adaptation_speed(adl, epsilons, seeds, max_episodes)
    )


def _tracks_routine(learner, actions, step_ids) -> bool:
    states = episode_states(list(step_ids))
    return all(
        learner.greedy_action(states[i], actions).tool_id
        == states[i + 1].current
        for i in range(len(states) - 1)
    )


def plan_multi_routine_comparison(
    episodes_per_routine: int = 60,
    seed: int = 0,
) -> Section:
    """Multi-routine planner vs a single Q-table on mixed dressing logs."""
    cells = [
        Cell(
            _multi_routine_cell,
            (episodes_per_routine, seed),
            label="multi-routine",
        )
    ]

    def merge(results: List[List[Tuple[str, str, str]]]) -> str:
        return format_table(
            ["User routine", "Multi-routine planner", "Single Q-table"],
            results[0],
            title="Extension: multi-routine dressing (future-work item 1)",
        )

    return Section("extension.multi-routine", cells, merge)


def multi_routine_comparison(
    episodes_per_routine: int = 60,
    seed: int = 0,
) -> str:
    """Multi-routine planner vs a single Q-table on mixed dressing logs."""
    return run_section(
        plan_multi_routine_comparison(episodes_per_routine, seed)
    )
