"""Baseline comparison: personalization is the point.

The paper's critique of prior guidance systems is that they "are
based solely on pre-planned routines of ADLs, without considering
different users' preferences".  This experiment makes that critique
quantitative: a cohort of users with *personalized* routines is
evaluated under

* **CoReDA** -- TD(λ) Q-learning trained on each user's own episodes;
* **bigram / trigram counters** -- frequency baselines trained on the
  same episodes (no reward signal, no level learning);
* **fixed sequence** -- the canonical pre-planned routine;
* **Boger-style MDP planner** -- value iteration over the canonical
  (pre-planned) task model.

Expected shape: the learning systems score ~100% on every user; the
pre-planned systems score 100% only on users whose personal routine
happens to equal the canonical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.fixed_sequence import FixedSequenceReminder
from repro.baselines.mdp_planner import MdpPlannerBaseline
from repro.baselines.ngram import NGramPredictor
from repro.core.adl import ADL, Routine
from repro.core.config import PlanningConfig
from repro.core.metrics import mean
from repro.evalx.tables import format_table
from repro.planning.predictor import NextStepPredictor
from repro.planning.state import episode_states
from repro.planning.trainer import RoutineTrainer
from repro.resident.routines import personalized_routine, training_episodes

__all__ = ["BaselineRow", "BaselineComparisonResult", "run_baseline_comparison"]


@dataclass(frozen=True)
class BaselineRow:
    """One system's cohort-level result."""

    system: str
    mean_accuracy: float
    perfect_users: int
    total_users: int
    needs_model_upfront: bool


@dataclass
class BaselineComparisonResult:
    """All systems' results plus rendering."""

    adl_name: str
    rows: List[BaselineRow]

    def row_for(self, system: str) -> BaselineRow:
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)

    def to_table(self) -> str:
        cells = [
            (
                row.system,
                f"{row.mean_accuracy:.1%}",
                f"{row.perfect_users}/{row.total_users}",
                "yes" if row.needs_model_upfront else "no",
            )
            for row in self.rows
        ]
        return format_table(
            ["System", "Mean accuracy", "Perfect users", "Pre-planned model"],
            cells,
            title=f"Baseline comparison on personalized routines ({self.adl_name})",
        )


def _routine_accuracy(predict, routine: Routine) -> float:
    """Fraction of routine states where ``predict`` names the next tool."""
    states = episode_states(list(routine.step_ids))
    total = len(states) - 1
    correct = 0
    for index in range(total):
        state = states[index]
        predicted = predict(state.previous, state.current)
        if predicted == states[index + 1].current:
            correct += 1
    return correct / total


def run_baseline_comparison(
    adl: ADL,
    n_users: int = 20,
    episodes: int = 120,
    seed: int = 0,
    config: Optional[PlanningConfig] = None,
    shuffle_probability: float = 0.8,
) -> BaselineComparisonResult:
    """Evaluate all systems over a cohort of personalized routines."""
    config = config if config is not None else PlanningConfig()
    rng = np.random.default_rng(seed)
    routines = [
        personalized_routine(adl, rng, shuffle_probability=shuffle_probability)
        for _ in range(n_users)
    ]
    scores = {name: [] for name in ("CoReDA (TD-lambda Q)", "bigram", "trigram",
                                    "fixed sequence", "MDP planner (canonical)")}
    canonical_fixed = FixedSequenceReminder(adl)
    canonical_mdp = MdpPlannerBaseline(adl.canonical_routine())
    for user_index, routine in enumerate(routines):
        log = training_episodes(routine, episodes)
        trainer = RoutineTrainer(
            adl, config, rng=np.random.default_rng(seed * 1000 + user_index)
        )
        training = trainer.train(log, routine=routine)
        predictor = NextStepPredictor.from_training(
            training, require_converged=False
        )
        bigram = NGramPredictor(order=1).fit(log)
        trigram = NGramPredictor(order=2).fit(log)
        scores["CoReDA (TD-lambda Q)"].append(
            _routine_accuracy(predictor.predict_next_tool, routine)
        )
        scores["bigram"].append(
            _routine_accuracy(bigram.predict_next_tool, routine)
        )
        scores["trigram"].append(
            _routine_accuracy(trigram.predict_next_tool, routine)
        )
        scores["fixed sequence"].append(
            _routine_accuracy(canonical_fixed.predict_next_tool, routine)
        )
        scores["MDP planner (canonical)"].append(
            _routine_accuracy(canonical_mdp.predict_next_tool, routine)
        )
    rows = []
    pre_planned = {"fixed sequence", "MDP planner (canonical)"}
    for system, values in scores.items():
        rows.append(
            BaselineRow(
                system=system,
                mean_accuracy=mean(values),
                perfect_users=sum(1 for v in values if v >= 0.999),
                total_users=n_users,
                needs_model_upfront=system in pre_planned,
            )
        )
    return BaselineComparisonResult(adl_name=adl.name, rows=rows)
