"""Baseline comparison: personalization is the point.

The paper's critique of prior guidance systems is that they "are
based solely on pre-planned routines of ADLs, without considering
different users' preferences".  This experiment makes that critique
quantitative: a cohort of users with *personalized* routines is
evaluated under

* **CoReDA** -- TD(λ) Q-learning trained on each user's own episodes;
* **bigram / trigram counters** -- frequency baselines trained on the
  same episodes (no reward signal, no level learning);
* **fixed sequence** -- the canonical pre-planned routine;
* **Boger-style MDP planner** -- value iteration over the canonical
  (pre-planned) task model.

Expected shape: the learning systems score ~100% on every user; the
pre-planned systems score 100% only on users whose personal routine
happens to equal the canonical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.fixed_sequence import FixedSequenceReminder
from repro.baselines.mdp_planner import MdpPlannerBaseline
from repro.baselines.ngram import NGramPredictor
from repro.core.adl import ADL, Routine
from repro.core.config import PlanningConfig
from repro.core.metrics import mean
from repro.evalx.parallel import Cell, Section, run_section
from repro.evalx.tables import format_table
from repro.planning.state import episode_states
from repro.planning.store import PolicyCache, train_routine_cached
from repro.resident.routines import personalized_routine, training_episodes
from repro.sim.random import seeded_generator

__all__ = [
    "BaselineRow",
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "plan_baseline_comparison",
]

#: Report row order (and the dict keys each user cell returns).
_SYSTEMS = (
    "CoReDA (TD-lambda Q)",
    "bigram",
    "trigram",
    "fixed sequence",
    "MDP planner (canonical)",
)


@dataclass(frozen=True)
class BaselineRow:
    """One system's cohort-level result."""

    system: str
    mean_accuracy: float
    perfect_users: int
    total_users: int
    needs_model_upfront: bool


@dataclass
class BaselineComparisonResult:
    """All systems' results plus rendering."""

    adl_name: str
    rows: List[BaselineRow]

    def row_for(self, system: str) -> BaselineRow:
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)

    def to_table(self) -> str:
        cells = [
            (
                row.system,
                f"{row.mean_accuracy:.1%}",
                f"{row.perfect_users}/{row.total_users}",
                "yes" if row.needs_model_upfront else "no",
            )
            for row in self.rows
        ]
        return format_table(
            ["System", "Mean accuracy", "Perfect users", "Pre-planned model"],
            cells,
            title=f"Baseline comparison on personalized routines ({self.adl_name})",
        )


def _routine_accuracy(predict, routine: Routine) -> float:
    """Fraction of routine states where ``predict`` names the next tool."""
    states = episode_states(list(routine.step_ids))
    total = len(states) - 1
    correct = 0
    for index in range(total):
        state = states[index]
        predicted = predict(state.previous, state.current)
        if predicted == states[index + 1].current:
            correct += 1
    return correct / total


def _user_cell(
    adl: ADL,
    routine_ids: Sequence[int],
    config: PlanningConfig,
    trainer_seed: int,
    episodes: int,
    cache_dir: Optional[str] = None,
) -> Dict[str, float]:
    """One user's accuracies under every system (pure, picklable)."""
    routine = Routine(adl, list(routine_ids))
    log = training_episodes(routine, episodes)
    cache = PolicyCache(cache_dir) if cache_dir else None
    trained = train_routine_cached(
        adl,
        list(routine.step_ids),
        config,
        trainer_seed,
        episodes,
        cache=cache,
    )
    predictor = trained.predictor(adl)
    bigram = NGramPredictor(order=1).fit(log)
    trigram = NGramPredictor(order=2).fit(log)
    canonical_fixed = FixedSequenceReminder(adl)
    canonical_mdp = MdpPlannerBaseline(adl.canonical_routine())
    return {
        "CoReDA (TD-lambda Q)": _routine_accuracy(
            predictor.predict_next_tool, routine
        ),
        "bigram": _routine_accuracy(bigram.predict_next_tool, routine),
        "trigram": _routine_accuracy(trigram.predict_next_tool, routine),
        "fixed sequence": _routine_accuracy(
            canonical_fixed.predict_next_tool, routine
        ),
        "MDP planner (canonical)": _routine_accuracy(
            canonical_mdp.predict_next_tool, routine
        ),
    }


def plan_baseline_comparison(
    adl: ADL,
    n_users: int = 20,
    episodes: int = 120,
    seed: int = 0,
    config: Optional[PlanningConfig] = None,
    shuffle_probability: float = 0.8,
    cache_dir: Optional[str] = None,
) -> Section:
    """The cohort comparison as a section of one cell per user.

    The cohort's personalized routines are drawn here, at plan time,
    from one sequential generator (so the cohort is identical to the
    serial harness); each cell then trains and scores one user
    independently.
    """
    config = config if config is not None else PlanningConfig()
    rng = seeded_generator(seed)
    routines = [
        personalized_routine(adl, rng, shuffle_probability=shuffle_probability)
        for _ in range(n_users)
    ]
    cells = [
        Cell(
            _user_cell,
            (adl, list(routine.step_ids), config, seed * 1000 + user_index,
             episodes, cache_dir),
            label=f"baseline.user[{user_index}]",
        )
        for user_index, routine in enumerate(routines)
    ]

    def merge(per_user: List[Dict[str, float]]) -> BaselineComparisonResult:
        pre_planned = {"fixed sequence", "MDP planner (canonical)"}
        rows = []
        for system in _SYSTEMS:
            values = [user[system] for user in per_user]
            rows.append(
                BaselineRow(
                    system=system,
                    mean_accuracy=mean(values),
                    perfect_users=sum(1 for v in values if v >= 0.999),
                    total_users=n_users,
                    needs_model_upfront=system in pre_planned,
                )
            )
        return BaselineComparisonResult(adl_name=adl.name, rows=rows)

    return Section(f"baseline.{adl.name}", cells, merge)


def run_baseline_comparison(
    adl: ADL,
    n_users: int = 20,
    episodes: int = 120,
    seed: int = 0,
    config: Optional[PlanningConfig] = None,
    shuffle_probability: float = 0.8,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
) -> BaselineComparisonResult:
    """Evaluate all systems over a cohort of personalized routines."""
    return run_section(
        plan_baseline_comparison(
            adl,
            n_users=n_users,
            episodes=episodes,
            seed=seed,
            config=config,
            shuffle_probability=shuffle_probability,
            cache_dir=cache_dir,
        ),
        jobs=jobs,
    )
