"""Reproducible, named random-number streams.

Every stochastic component (signal noise, radio loss, resident error
model, RL exploration, ...) draws from its own stream, derived
deterministically from one master seed and the stream's name.  Adding
a new component therefore never perturbs the draws -- and hence the
results -- of existing ones, which keeps experiment outputs stable as
the codebase grows.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "derive_seed", "seeded_generator"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and ``name``.

    Uses SHA-256 so the mapping is stable across Python processes and
    versions (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def seeded_generator(seed: int) -> np.random.Generator:
    """A fresh generator for an *explicit* seed.

    The one sanctioned construction point outside
    :class:`RandomStreams` (the DET001 lint rule pins every other
    module to this module): experiment cells that are parameterised
    by a literal seed -- ablation sweeps, offline trainers -- call
    this instead of ``np.random.default_rng`` so that auditing "who
    can create randomness?" stays a one-file job.  Draw-for-draw
    identical to ``default_rng(seed)``.
    """
    return np.random.default_rng(seed)


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` s.

    Streams are cached: asking twice for the same name returns the
    same generator object, so a component can re-fetch its stream
    instead of threading it through every call.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            seed = derive_seed(self.master_seed, name)
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child ``RandomStreams`` rooted at a derived seed.

        Useful for running many residents or trials, each with a fully
        independent family of streams.
        """
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))

    def spawned(self) -> int:
        """Number of distinct streams created so far."""
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomStreams(master_seed={self.master_seed}, "
            f"streams={len(self._streams)})"
        )
