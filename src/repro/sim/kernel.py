"""The discrete-event scheduler at the heart of the simulation.

Time is a ``float`` in seconds.  Events scheduled for the same instant
fire in insertion order (a monotonically increasing sequence number
breaks ties), which keeps every run bit-for-bit deterministic for a
given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Signal", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently.

    Examples: running a simulator backwards, scheduling with a
    negative delay, or firing a cancelled event.
    """


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is assigned by the
    simulator so that simultaneous events keep FIFO order.  An event
    can be cancelled before it fires, in which case the kernel skips
    it (the heap entry is left in place and ignored lazily).

    ``__slots__`` (via ``slots=True``) and the hand-written ``__lt__``
    (no tuple allocation per heap comparison) matter here: the
    simulation allocates one ``Event`` per kernel event, and the
    sensing fast path still schedules tens of thousands of them per
    experiment.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def __lt__(self, other: "Event") -> bool:
        # Exact != is correct here: the tie-break must engage only
        # for bit-identical times (same-instant FIFO ordering).
        if self.time != other.time:  # repro: allow[DET004] exact tie-break
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op, which lets timeout logic stay simple.
        """
        self.cancelled = True


class Signal:
    """A broadcast channel: callbacks subscribe, ``fire`` notifies all.

    Signals decouple producers from consumers inside the simulated
    world -- e.g. the radio medium fires a signal per delivered frame
    and the base station subscribes.  Subscribers registered during a
    ``fire`` are not invoked for that same firing.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._subscribers: List[Callable[[Any], None]] = []

    def subscribe(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``callback`` and return an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, payload: Any = None) -> None:
        """Invoke every currently-registered subscriber with ``payload``."""
        for callback in list(self._subscribers):
            callback(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, subscribers={len(self._subscribers)})"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)

    The simulator never advances past the horizon given to
    :meth:`run_until`, and :attr:`now` is exact (no floating-point
    drift is introduced by the kernel itself).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (for diagnostics)."""
        return self._event_count

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=float(time), seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._event_count += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events processed by this call.  The
        ``max_events`` guard protects against runaway self-scheduling
        loops in tests.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, horizon: float) -> int:
        """Run all events with ``time <= horizon`` then set now=horizon.

        Returns the number of events processed.  The clock always ends
        exactly at ``horizon`` even if the queue drained earlier, so
        callers can interleave ``run_until`` segments predictably.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon t={horizon} is before current time t={self._now}"
            )
        # Fused loop: one heap walk decides, pops and fires each event.
        # (The obvious peek()+step() pairing walks past cancelled heap
        # entries twice -- measurable at sensing event rates.)
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        while heap:
            head = heap[0]
            if head.cancelled:
                pop(heap)
                continue
            if head.time > horizon:
                break
            pop(heap)
            self._now = head.time
            self._event_count += 1
            head.callback()
            fired += 1
        self._now = float(horizon)
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f}, pending={len(self._heap)})"
