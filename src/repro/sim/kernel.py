"""The discrete-event scheduler at the heart of the simulation.

Time is a ``float`` in seconds.  Events scheduled for the same instant
fire in insertion order (a monotonically increasing sequence number
breaks ties), which keeps every run bit-for-bit deterministic for a
given seed.

Two interchangeable queue backends implement the ``(time, seq)``
order:

* ``"heap"`` -- the reference ``heapq`` binary heap.  Simple, and the
  bit-identity baseline every optimization is proven against.
* ``"calendar"`` -- a calendar queue (bucketed timing wheel): events
  hash into fixed-width time buckets held in an unsorted list each,
  with a small integer heap tracking which buckets are populated.  A
  bucket is sorted once, when it becomes current.  Pushes are O(1)
  appends with **no per-event comparisons** (the heap backend pays
  O(log n) Python ``__lt__`` calls per push), which is what makes it
  several times faster on the periodic 10 Hz traffic that dominates
  node workloads.  Selected by default; override per simulator with
  ``Simulator(backend=...)``, per process with the
  ``REPRO_KERNEL_BACKEND`` environment variable, or per system via
  ``SimConfig.kernel_backend``.

Both backends produce byte-identical simulations -- same event order,
same timestamps, same everything -- because the order is fully
determined by ``(time, seq)`` and both implement it exactly (see
``tests/test_sim_kernel_backends.py`` and ``docs/architecture.md``).

The kernel also recycles :class:`Event` objects: callers that own a
recurring timeout (firmware sampling loops, process resumes) schedule
with ``reusable=True`` and the kernel returns the fired event to a
free list instead of leaving tens of thousands of dead objects per
experiment to the allocator.  See :meth:`Simulator.schedule` for the
ownership contract.
"""

from __future__ import annotations

import heapq
import itertools
import os
from bisect import insort
from math import floor
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Event",
    "Signal",
    "Simulator",
    "SimulationError",
    "KERNEL_BACKENDS",
    "default_kernel_backend",
]

#: The recognised queue backends, reference implementation first.
KERNEL_BACKENDS = ("heap", "calendar")


def default_kernel_backend() -> str:
    """Process-wide default backend, overridable via environment.

    The backends are byte-identical (the ``REPRO_Q_BACKEND`` pattern:
    the knob selects a speed profile, never a result), so benches can
    A/B the full pipeline without threading a parameter through every
    construction site.
    """
    return os.environ.get("REPRO_KERNEL_BACKEND", "calendar")


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently.

    Examples: running a simulator backwards, scheduling with a
    negative delay or at a time already in the past, or constructing
    a simulator with an unknown queue backend.
    """


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is assigned by the
    simulator so that simultaneous events keep FIFO order.  An event
    can be cancelled before it fires, in which case the kernel skips
    it (the queue entry is left in place and discarded lazily; the
    calendar backend additionally compacts a bucket eagerly when most
    of it is cancelled).

    ``__slots__`` (via ``slots=True``) and the hand-written ``__lt__``
    (no tuple allocation per heap comparison) matter here: the
    simulation allocates one ``Event`` per kernel event, and the
    sensing fast path still schedules tens of thousands of them per
    experiment -- which is also why ``reusable`` events are recycled
    through the simulator's free list instead of reallocated.
    """

    time: float
    seq: int
    callback: Optional[Callable[[], None]] = field(compare=False, default=None)
    cancelled: bool = field(default=False, compare=False)
    #: True while the event sits in a queue backend (set by the
    #: kernel; lets ``cancel`` notify the backend exactly once).
    queued: bool = field(default=False, compare=False)
    #: True when the scheduling site owns the handle and promises not
    #: to touch it after it fires or after cancelling it -- the kernel
    #: then recycles the object through the free list.
    reusable: bool = field(default=False, compare=False)
    #: The queue backend currently holding the event (kernel-managed).
    owner: Optional[Any] = field(default=None, compare=False, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Exact != is correct here: the tie-break must engage only
        # for bit-identical times (same-instant FIFO ordering).
        if self.time != other.time:  # repro: allow[DET004] exact tie-break
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a
        harmless no-op, which lets timeout logic stay simple.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.queued and self.owner is not None:
            self.owner.note_cancel(self)


#: C-level sort key for bucket ordering -- sorting with it costs zero
#: Python ``__lt__`` calls, unlike ``heapq`` on ``Event`` objects.
_TIME_SEQ = attrgetter("time", "seq")

#: Free-list high-water mark.  Recurring timeouts cycle through a
#: handful of events; the cap only bounds pathological cancel storms.
_FREE_LIST_CAP = 1024


def _release(free: List[Event], event: Event) -> None:
    """Return a dead ``reusable`` event to the free list."""
    if len(free) < _FREE_LIST_CAP:
        event.callback = None
        event.cancelled = False
        event.owner = None
        free.append(event)


class _HeapQueue:
    """The reference backend: a ``heapq`` binary heap of events."""

    __slots__ = ("_heap", "_live", "free")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._live = 0
        #: Shared with the owning simulator (set at construction).
        self.free: List[Event] = []

    def push(self, event: Event) -> None:
        event.queued = True
        event.owner = self
        self._live += 1
        heapq.heappush(self._heap, event)

    def note_cancel(self, event: Event) -> None:
        """Called by :meth:`Event.cancel` while the event is queued."""
        self._live -= 1

    def pop_due(self, horizon: float) -> Optional[Event]:
        """Pop the next live event with ``time <= horizon``, else None."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            head = heap[0]
            if head.cancelled:
                pop(heap)
                head.queued = False
                if head.reusable:
                    _release(self.free, head)
                continue
            if head.time > horizon:
                return None
            pop(heap)
            head.queued = False
            self._live -= 1
            return head
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            head = heap[0]
            if not head.cancelled:
                return head.time
            pop(heap)
            head.queued = False
            if head.reusable:
                _release(self.free, head)
        return None

    @property
    def live(self) -> int:
        return self._live


class _CalendarQueue:
    """Calendar-queue backend: fixed-width time buckets.

    ``_buckets`` maps bucket key (``floor(time / width)``) to an
    *unsorted* list of events; ``_keys`` is an integer min-heap of the
    populated keys (small: many events share a bucket, and integer
    comparisons run in C).  When a bucket becomes *current* it is
    popped from the table, sorted once by ``(time, seq)`` with a
    C-level key, and drained in order through a cursor.  Events
    scheduled into the current bucket mid-drain are insorted into the
    undrained tail; events scheduled before the current bucket (only
    possible after ``run_until`` parked the clock beyond a drained
    range) park the tail back into the table and re-select.

    Cancelled events are skipped lazily at the cursor; a parked bucket
    whose cancelled fraction grows past half (with at least
    ``_COMPACT_MIN`` casualties) is compacted eagerly so cancel-heavy
    workloads don't drag dead weight into the sort.
    """

    __slots__ = ("_width", "_inv", "_buckets", "_keys", "_stale",
                 "_cur", "_cur_key", "_pos", "_live", "free")

    _COMPACT_MIN = 16

    def __init__(self, width: float = 0.5) -> None:
        if width <= 0:
            raise SimulationError(f"bucket width must be positive, got {width}")
        self._width = float(width)
        self._inv = 1.0 / float(width)
        self._buckets: Dict[int, List[Event]] = {}
        self._keys: List[int] = []
        self._stale: Dict[int, int] = {}
        self._cur: Optional[List[Event]] = None
        self._cur_key = 0
        self._pos = 0
        self._live = 0
        self.free: List[Event] = []

    def push(self, event: Event) -> None:
        event.queued = True
        event.owner = self
        self._live += 1
        # floor, not int(): truncation would fold negative times into
        # bucket 0 and break the bucket-start horizon guard.
        key = floor(event.time * self._inv)
        cur = self._cur
        if cur is not None:
            cur_key = self._cur_key
            if key == cur_key:
                # Into the bucket being drained: keep the undrained
                # tail ordered.  Same-time events get the larger seq,
                # so right-insort preserves FIFO.
                insort(cur, event, lo=self._pos, key=_TIME_SEQ)
                return
            if key < cur_key:
                # Earlier than the current bucket (the clock was
                # parked past a drained range): park the tail and
                # re-select from the table at the next pop.
                tail = cur[self._pos:]
                if tail:
                    self._buckets[cur_key] = tail
                    heapq.heappush(self._keys, cur_key)
                self._cur = None
                self._pos = 0
        buckets = self._buckets
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [event]
            heapq.heappush(self._keys, key)
        else:
            bucket.append(event)

    def note_cancel(self, event: Event) -> None:
        """Track cancellations; compact a mostly-dead parked bucket."""
        self._live -= 1
        key = floor(event.time * self._inv)
        if self._cur is not None and key == self._cur_key:
            return  # the cursor skips it in O(1) moments from now
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        stale = self._stale.get(key, 0) + 1
        if stale >= self._COMPACT_MIN and stale * 2 >= len(bucket):
            survivors = [e for e in bucket if not e.cancelled]
            self._buckets[key] = survivors
            free = self.free
            for dead in bucket:
                if dead.cancelled:
                    dead.queued = False
                    if dead.reusable:
                        _release(free, dead)
            self._stale.pop(key, None)
        else:
            self._stale[key] = stale

    def _activate_next(self) -> bool:
        """Sort the earliest populated bucket into the cursor."""
        keys = self._keys
        if not keys:
            return False
        key = heapq.heappop(keys)
        bucket = self._buckets.pop(key)
        self._stale.pop(key, None)
        bucket.sort(key=_TIME_SEQ)
        self._cur = bucket
        self._cur_key = key
        self._pos = 0
        return True

    def pop_due(self, horizon: float) -> Optional[Event]:
        free = self.free
        while True:
            cur = self._cur
            if cur is not None:
                pos = self._pos
                n = len(cur)
                while pos < n:
                    event = cur[pos]
                    if event.cancelled:
                        pos += 1
                        event.queued = False
                        if event.reusable:
                            _release(free, event)
                        continue
                    if event.time > horizon:
                        self._pos = pos
                        return None
                    self._pos = pos + 1
                    event.queued = False
                    self._live -= 1
                    return event
                self._cur = None
                self._pos = 0
            keys = self._keys
            if not keys:
                return None
            if keys[0] * self._width > horizon:
                # Every event in every remaining bucket starts past
                # the horizon; don't even sort them yet.
                return None
            self._activate_next()

    def peek_time(self) -> Optional[float]:
        free = self.free
        while True:
            cur = self._cur
            if cur is not None:
                pos = self._pos
                n = len(cur)
                while pos < n:
                    event = cur[pos]
                    if event.cancelled:
                        pos += 1
                        event.queued = False
                        if event.reusable:
                            _release(free, event)
                        continue
                    self._pos = pos
                    return event.time
                self._cur = None
                self._pos = 0
            if not self._activate_next():
                return None

    @property
    def live(self) -> int:
        return self._live


class Signal:
    """A broadcast channel: callbacks subscribe, ``fire`` notifies all.

    Signals decouple producers from consumers inside the simulated
    world -- e.g. the radio medium fires a signal per delivered frame
    and the base station subscribes.  One ``fire`` notifies exactly
    the subscribers registered when it began: subscribers added during
    a fire are not invoked for that same firing, and subscribers
    removed during a fire are not invoked after their removal.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._subscribers: List[Callable[[Any], None]] = []

    def subscribe(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``callback`` and return an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, payload: Any = None) -> None:
        """Invoke every subscriber registered when the fire began."""
        subscribers = self._subscribers
        if len(subscribers) == 1:
            # Fast path for the overwhelmingly common single-listener
            # signal: no snapshot, no membership scan.
            subscribers[0](payload)
            return
        for callback in list(subscribers):
            # The snapshot freezes the roster at fire time; the
            # membership check honours unsubscribes made *during*
            # this firing (by earlier subscribers in the snapshot).
            if callback in subscribers:
                callback(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, subscribers={len(self._subscribers)})"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)

    The simulator never advances past the horizon given to
    :meth:`run_until`, and :attr:`now` is exact (no floating-point
    drift is introduced by the kernel itself).

    ``backend`` selects the queue implementation (see the module
    docstring); ``None`` resolves :func:`default_kernel_backend`.
    ``bucket_width`` tunes the calendar backend's bucket size in
    simulated seconds (ignored by the heap backend).
    """

    def __init__(
        self,
        start_time: float = 0.0,
        backend: Optional[str] = None,
        bucket_width: float = 0.5,
    ) -> None:
        if backend is None:
            backend = default_kernel_backend()
        if backend == "heap":
            self._queue = _HeapQueue()
        elif backend == "calendar":
            self._queue = _CalendarQueue(bucket_width)
        else:
            raise SimulationError(
                f"unknown kernel backend {backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )
        self.backend = backend
        self._now = float(start_time)
        self._seq = itertools.count()
        self._event_count = 0
        self._free: List[Event] = self._queue.free

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (for diagnostics)."""
        return self._event_count

    @property
    def pending_count(self) -> int:
        """Live (not lazily-cancelled) events awaiting their turn.

        Cancelled events may linger inside the queue until the cursor
        reaches them; they are *not* counted here, so introspection
        reflects what will actually fire.
        """
        return self._queue.live

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        reusable: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``reusable=True`` is a contract, not a hint: the caller owns
        the returned handle and promises never to touch it after the
        event has fired (or after the caller cancelled it).  The
        kernel then recycles the ``Event`` object through a free list,
        so a firmware loop scheduling ten timeouts a second allocates
        one event total instead of tens of thousands per experiment.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, reusable=reusable)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        reusable: bool = False,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time.

        Scheduling before :attr:`now` raises :class:`SimulationError`
        -- a backdated event could never fire in order, so catching it
        at the call site beats a silently corrupted timeline.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        free = self._free
        if free:
            event = free.pop()
            event.time = float(time)
            event.seq = next(self._seq)
            event.callback = callback
            event.cancelled = False
            event.reusable = reusable
        else:
            event = Event(
                time=float(time),
                seq=next(self._seq),
                callback=callback,
                reusable=reusable,
            )
        self._queue.push(event)
        return event

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None``."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if none remain."""
        event = self._queue.pop_due(float("inf"))
        if event is None:
            return False
        callback = event.callback
        self._now = event.time
        self._event_count += 1
        if event.reusable:
            _release(self._free, event)
        callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events processed by this call.  The
        ``max_events`` guard protects against runaway self-scheduling
        loops in tests.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, horizon: float) -> int:
        """Run all events with ``time <= horizon`` then set now=horizon.

        Returns the number of events processed.  The clock always ends
        exactly at ``horizon`` even if the queue drained earlier, so
        callers can interleave ``run_until`` segments predictably.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon t={horizon} is before current time t={self._now}"
            )
        # Fused loop: one queue walk decides, pops and fires each
        # event (peek()+step() would walk cancelled runs twice --
        # measurable at sensing event rates).
        queue = self._queue
        pop_due = queue.pop_due
        free = self._free
        fired = 0
        while True:
            event = pop_due(horizon)
            if event is None:
                break
            callback = event.callback
            self._now = event.time
            self._event_count += 1
            if event.reusable:
                _release(free, event)
            callback()
            fired += 1
        self._now = float(horizon)
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, backend={self.backend!r}, "
            f"pending={self.pending_count})"
        )
