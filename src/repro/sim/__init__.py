"""Discrete-event simulation kernel.

The CoReDA reproduction runs entirely in simulated time.  This package
provides the minimal but complete substrate everything else is built
on:

* :class:`~repro.sim.kernel.Simulator` -- a priority-queue scheduler
  with deterministic tie-breaking.
* :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes (``yield Timeout(dt)`` / ``yield Wait(signal)``).
* :class:`~repro.sim.random.RandomStreams` -- named, reproducible
  per-subsystem random-number streams derived from one master seed.
* :class:`~repro.sim.tracing.TraceRecorder` -- a structured event
  trace used by the evaluation harness to reconstruct timelines such
  as the paper's Figure 1 scenario.
"""

from repro.sim.kernel import Event, Signal, Simulator
from repro.sim.process import Process, Timeout, Wait
from repro.sim.random import RandomStreams
from repro.sim.tracing import TraceEntry, TraceRecorder

__all__ = [
    "Event",
    "Process",
    "RandomStreams",
    "Signal",
    "Simulator",
    "Timeout",
    "TraceEntry",
    "TraceRecorder",
    "Wait",
]
