"""Generator-based cooperative processes on top of the kernel.

A process is a Python generator that yields *directives*:

* ``yield Timeout(dt)`` -- sleep ``dt`` simulated seconds.
* ``yield Wait(signal)`` -- suspend until ``signal`` fires; the fired
  payload is sent back into the generator as the value of the yield.

Processes model the periodic firmware loops on PAVENET nodes and the
scripted behaviour of simulated residents without inverting control
flow into callback spaghetti.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Union

from repro.sim.kernel import Event, Signal, Simulator

__all__ = ["Timeout", "Wait", "Process"]


@dataclass(frozen=True)
class Timeout:
    """Directive: resume the process after ``delay`` seconds."""

    delay: float


@dataclass(frozen=True)
class Wait:
    """Directive: resume the process when ``signal`` next fires.

    If ``timeout`` is given and the signal does not fire within it,
    the process resumes with the value ``Wait.TIMED_OUT`` instead of
    the signal payload.
    """

    signal: Signal
    timeout: Optional[float] = None

    TIMED_OUT = object()


Directive = Union[Timeout, Wait]
ProcessBody = Generator[Directive, Any, Any]


class Process:
    """Drives a generator through the simulator.

    The process starts immediately (its first segment runs at the
    current simulated time) unless ``delay`` is given.  When the
    generator returns, :attr:`done` becomes ``True`` and
    :attr:`result` holds its return value.  :attr:`finished` is a
    :class:`~repro.sim.kernel.Signal` fired once on completion with
    the result as payload.
    """

    def __init__(
        self,
        sim: Simulator,
        body: ProcessBody,
        name: str = "process",
        delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.done = False
        self.result: Any = None
        self.finished = Signal(f"{name}.finished")
        self._body = body
        self._interrupted = False
        self._pending_event: Optional[Event] = None
        self._pending_unsubscribe: Optional[Callable[[], None]] = None
        # One callback object reused for every Timeout resume: the
        # periodic firmware loops schedule one of these per sample, so
        # a fresh lambda per dispatch is pure allocator churn.  The
        # events themselves are scheduled ``reusable`` -- the process
        # owns the handle, clears it before the resume runs, and never
        # cancels a fired one -- so the kernel recycles one Event
        # object per process instead of allocating one per sleep.
        self._timeout_resume = self._resume_from_timeout
        sim.schedule(delay, self._timeout_resume, reusable=True)

    def interrupt(self) -> None:
        """Stop the process: its generator is closed, ``done`` set.

        Interrupting a finished process is a no-op.
        """
        if self.done:
            return
        self._interrupted = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._pending_unsubscribe is not None:
            self._pending_unsubscribe()
            self._pending_unsubscribe = None
        self._body.close()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.finished.fire(result)

    def _resume_from_timeout(self) -> None:
        # Drop the handle before advancing: the event just fired and
        # may already be recycled, so a later interrupt() must not
        # reach it through a stale reference.
        self._pending_event = None
        self._advance(None)

    def _advance(self, value: Any) -> None:
        if self.done:
            return
        try:
            directive = self._body.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(directive)

    def _dispatch(self, directive: Directive) -> None:
        if isinstance(directive, Timeout):
            self._pending_event = self.sim.schedule(
                directive.delay, self._timeout_resume, reusable=True
            )
            return
        if isinstance(directive, Wait):
            self._wait_on(directive)
            return
        raise TypeError(
            f"process {self.name!r} yielded {directive!r}; "
            "expected Timeout or Wait"
        )

    def _wait_on(self, wait: Wait) -> None:
        resumed = {"flag": False}

        def resume(payload: Any) -> None:
            if resumed["flag"]:
                return
            resumed["flag"] = True
            if self._pending_unsubscribe is not None:
                self._pending_unsubscribe()
                self._pending_unsubscribe = None
            if self._pending_event is not None:
                self._pending_event.cancel()
                self._pending_event = None
            self._advance(payload)

        self._pending_unsubscribe = wait.signal.subscribe(resume)
        if wait.timeout is not None:
            self._pending_event = self.sim.schedule(
                wait.timeout, lambda: resume(Wait.TIMED_OUT)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"
