"""Structured trace recording for simulated runs.

The evaluation harness reconstructs timelines (e.g. the paper's
Figure 1 scenario: wrong tool at 13 s, praise at 23 s, stall prompt at
71 s) from traces recorded here.  Entries are cheap tuples of
``(time, category, payload)`` with helper queries, kept deliberately
simple so any subsystem can emit them without coupling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

__all__ = ["TraceEntry", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEntry:
    """One trace record.

    ``category`` is a dotted string such as ``"reminder.prompt"`` or
    ``"sensing.tool_usage"``; ``payload`` is a dict of event fields.
    """

    time: float
    category: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def matches(self, prefix: str) -> bool:
        """True if the category equals ``prefix`` or is nested under it."""
        return self.category == prefix or self.category.startswith(prefix + ".")


class TraceRecorder:
    """Accumulates :class:`TraceEntry` records in time order.

    The recorder trusts callers to emit with non-decreasing timestamps
    (the kernel guarantees this inside one simulation); an out-of-order
    emit raises so bugs surface immediately instead of corrupting
    timeline reconstruction.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: List[TraceEntry] = []
        self._listeners: List[Callable[[TraceEntry], None]] = []

    def emit(self, time: float, category: str, **payload: Any) -> None:
        """Record one entry (no-op while disabled)."""
        if not self.enabled:
            return
        if self._entries and time < self._entries[-1].time:
            raise ValueError(
                f"trace emitted out of order: t={time} after "
                f"t={self._entries[-1].time} ({category})"
            )
        entry = TraceEntry(time=float(time), category=category, payload=payload)
        self._entries.append(entry)
        for listener in self._listeners:
            listener(entry)

    def on_emit(self, listener: Callable[[TraceEntry], None]) -> None:
        """Register a live listener called for every new entry."""
        self._listeners.append(listener)

    def entries(self, prefix: Optional[str] = None) -> List[TraceEntry]:
        """All entries, optionally filtered by category prefix."""
        if prefix is None:
            return list(self._entries)
        return [e for e in self._entries if e.matches(prefix)]

    def between(
        self, start: float, end: float, prefix: Optional[str] = None
    ) -> List[TraceEntry]:
        """Entries with ``start <= time <= end`` (optionally filtered)."""
        return [
            e
            for e in self.entries(prefix)
            if start <= e.time <= end
        ]

    def first(self, prefix: str) -> Optional[TraceEntry]:
        """Earliest entry under ``prefix``, or ``None``."""
        for entry in self._entries:
            if entry.matches(prefix):
                return entry
        return None

    def last(self, prefix: str) -> Optional[TraceEntry]:
        """Latest entry under ``prefix``, or ``None``."""
        for entry in reversed(self._entries):
            if entry.matches(prefix):
                return entry
        return None

    def count(self, prefix: str) -> int:
        """Number of entries under ``prefix``."""
        return sum(1 for e in self._entries if e.matches(prefix))

    def clear(self) -> None:
        """Drop all recorded entries (listeners stay registered)."""
        self._entries.clear()

    def save_jsonl(self, path: Union[str, Path]) -> int:
        """Write the trace as JSON lines; returns entries written.

        One ``{"time": ..., "category": ..., **payload-as-"payload"}``
        object per line -- the format offline analysis tooling (and
        plain ``jq``) expects.
        """
        with Path(path).open("w") as handle:
            for entry in self._entries:
                handle.write(
                    json.dumps(
                        {
                            "time": entry.time,
                            "category": entry.category,
                            "payload": entry.payload,
                        }
                    )
                )
                handle.write("\n")
        return len(self._entries)

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "TraceRecorder":
        """Restore a recorder from a :meth:`save_jsonl` file."""
        recorder = cls()
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                item = json.loads(line)
                recorder.emit(
                    item["time"], item["category"], **item.get("payload", {})
                )
        return recorder

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder(entries={len(self._entries)}, enabled={self.enabled})"
