"""Comparison systems: the related-work approaches, implemented."""

from repro.baselines.fixed_sequence import FixedSequenceReminder
from repro.baselines.mdp_planner import MdpPlannerBaseline, build_guidance_mdp
from repro.baselines.ngram import NGramPredictor

__all__ = [
    "FixedSequenceReminder",
    "MdpPlannerBaseline",
    "NGramPredictor",
    "build_guidance_mdp",
]
