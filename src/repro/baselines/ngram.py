"""N-gram (frequency) next-step predictors.

A natural "why not just count?" baseline: estimate P(next step |
context) by maximum likelihood over the same training episodes the
Q-learner sees.  Order 1 conditions on the current step only; order 2
on ⟨previous, current⟩ (the Q-learner's state).  On single-routine
users both match Q-learning's predictions; the interesting contrasts
are (a) order-1 fails on routines where one step has different
successors depending on history, and (b) n-grams carry no notion of
reminder level or completion reward -- minimality must be bolted on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Sequence, Tuple

from repro.core.adl import IDLE_STEP_ID

__all__ = ["NGramPredictor"]


class NGramPredictor:
    """Maximum-likelihood successor prediction from episode logs."""

    def __init__(self, order: int = 2) -> None:
        if order not in (1, 2):
            raise ValueError("order must be 1 or 2")
        self.order = order
        self._counts: Dict[Tuple[int, ...], Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.episodes_seen = 0

    def fit(self, episodes: Sequence[Sequence[int]]) -> "NGramPredictor":
        """Count successor frequencies over ``episodes``; returns self."""
        for episode in episodes:
            steps = list(episode)
            previous = IDLE_STEP_ID
            for index in range(len(steps) - 1):
                context = self._context(previous, steps[index])
                self._counts[context][steps[index + 1]] += 1
                previous = steps[index]
            self.episodes_seen += 1
        return self

    def predict_next_tool(
        self, previous_step_id: int, current_step_id: int
    ) -> Optional[int]:
        """The most frequent successor of the context, or ``None``.

        Ties break toward the smaller StepID for determinism.
        """
        context = self._context(previous_step_id, current_step_id)
        successors = self._counts.get(context)
        if not successors:
            return None
        return min(successors, key=lambda step: (-successors[step], step))

    def distribution(
        self, previous_step_id: int, current_step_id: int
    ) -> Dict[int, float]:
        """P(successor | context), empty dict for unseen contexts."""
        context = self._context(previous_step_id, current_step_id)
        successors = self._counts.get(context)
        if not successors:
            return {}
        total = sum(successors.values())
        return {step: count / total for step, count in successors.items()}

    def _context(self, previous: int, current: int) -> Tuple[int, ...]:
        if self.order == 1:
            return (current,)
        return (previous, current)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NGramPredictor(order={self.order}, contexts={len(self._counts)})"
