"""The pre-planned fixed-sequence baseline.

This is the approach the paper criticizes in its related work: guide
every user along the ADL's *canonical* routine, "without considering
different users' preferences".  It needs no training at all -- and the
baseline bench shows exactly where that breaks: any user whose
personal routine deviates from the canonical order gets wrong
guidance at every deviation point.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adl import ADL, ReminderLevel, Routine
from repro.planning.action import PromptAction

__all__ = ["FixedSequenceReminder"]


class FixedSequenceReminder:
    """Prompts the next step of a fixed, pre-planned routine."""

    def __init__(self, adl: ADL, plan: Optional[Routine] = None) -> None:
        self.adl = adl
        self.plan = plan if plan is not None else adl.canonical_routine()

    def predict_next_tool(
        self, previous_step_id: int, current_step_id: int
    ) -> Optional[int]:
        """The plan's step after ``current_step_id``.

        Returns ``None`` when the current step is not on the plan or
        is the plan's terminal step (nothing to prompt).
        """
        if not self.plan.contains(current_step_id):
            return None
        return self.plan.next_step_id(current_step_id)

    def predict(
        self, previous_step_id: int, current_step_id: int
    ) -> Optional[PromptAction]:
        """Prompt-action form of :meth:`predict_next_tool`.

        A fixed-sequence system has no notion of learned minimality;
        it always prompts SPECIFIC (the fully scripted instruction).
        """
        tool_id = self.predict_next_tool(previous_step_id, current_step_id)
        if tool_id is None:
            return None
        return PromptAction(tool_id, ReminderLevel.SPECIFIC)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedSequenceReminder(plan={list(self.plan.step_ids)})"
