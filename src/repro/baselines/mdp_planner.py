"""A Boger-style pre-planned MDP guidance baseline.

Boger & Hoey's hand-washing assistant (the paper's reference [1])
plans prompts with a Markov Decision Process built from a *known*
task model.  We reproduce that style of system: given a routine that
someone (a caregiver / knowledge engineer) has already written down,
build an explicit MDP of the guidance problem -- states are the same
⟨previous, current⟩ pairs CoReDA uses, actions are prompt tools, the
user follows a correct prompt with a compliance probability -- and
solve it exactly with value iteration.

The contrast the benches draw: the MDP planner needs the full model
up front (no personalization without re-engineering), whereas CoReDA
*learns* the routine from observations.  Given matching models, both
produce the same guidance -- which is itself a useful validation of
the Q-learner.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.adl import Routine
from repro.planning.state import PlanningState, episode_states
from repro.rl.mdp import TabularMDP
from repro.rl.value_iteration import extract_policy, value_iteration

__all__ = ["build_guidance_mdp", "MdpPlannerBaseline"]


def build_guidance_mdp(
    routine: Routine,
    compliance: float = 0.9,
    completion_reward: float = 1000.0,
    step_reward: float = 100.0,
) -> TabularMDP:
    """The guidance MDP of one known routine.

    In every on-routine state the planner may prompt any tool of the
    ADL.  Prompting the correct next tool advances the user with
    probability ``compliance`` (they stay put otherwise); prompting
    anything else leaves them where they are.  Advancing pays
    ``step_reward`` (``completion_reward`` into the terminal state).
    """
    if not 0.0 < compliance <= 1.0:
        raise ValueError("compliance must be in (0, 1]")
    mdp = TabularMDP()
    states = episode_states(list(routine.step_ids))
    tools = [step.step_id for step in routine.adl.steps]
    for index in range(len(states) - 1):
        state, next_state = states[index], states[index + 1]
        entering_terminal = next_state.current == routine.terminal_step_id
        reward = completion_reward if entering_terminal else step_reward
        for tool_id in tools:
            if tool_id == next_state.current:
                mdp.add_transition(
                    state, tool_id, next_state, probability=compliance, reward=reward
                )
                if compliance < 1.0:
                    mdp.add_transition(
                        state, tool_id, state, probability=1.0 - compliance, reward=0.0
                    )
            else:
                mdp.add_transition(state, tool_id, state, probability=1.0, reward=0.0)
    mdp.mark_terminal(states[-1])
    mdp.validate()
    return mdp


class MdpPlannerBaseline:
    """Value-iteration guidance over a hand-authored routine model."""

    def __init__(
        self,
        routine: Routine,
        compliance: float = 0.9,
        discount: float = 0.9,
    ) -> None:
        self.routine = routine
        self.mdp = build_guidance_mdp(routine, compliance=compliance)
        result = value_iteration(self.mdp, discount=discount)
        self.values = result.values
        self.solver_iterations = result.iterations
        self._policy: Dict[PlanningState, int] = extract_policy(
            self.mdp, self.values, discount=discount
        )

    def predict_next_tool(
        self, previous_step_id: int, current_step_id: int
    ) -> Optional[int]:
        """The planned prompt for ⟨previous, current⟩, if modelled."""
        state = PlanningState(previous_step_id, current_step_id)
        return self._policy.get(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MdpPlannerBaseline(routine={list(self.routine.step_ids)}, "
            f"states={len(self._policy)})"
        )
