"""Node energy model: batteries drain, nodes die.

The real PAVENET runs on batteries; every ADC sample, radio attempt
and LED blink costs charge.  The model keeps the accounting in
millijoules with defaults in the right ballpark for a PIC18 + CC1000
class node on two AA cells, and the node firmware integrates it: a
depleted node simply stops -- which the failure-injection tests show
presents downstream exactly like any dead node.

The interesting knob is the sampling rate: the paper's 10 Hz is what
makes 3-of-10 detection of a 1.5-2 s handling possible, and it is
also the dominant energy draw.  ``estimate_lifetime`` and the
sampling-rate ablation bench chart that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerProfile", "Battery", "estimate_lifetime_days"]


@dataclass(frozen=True)
class PowerProfile:
    """Energy cost of node operations, in millijoules."""

    #: One ADC sample + detector update.
    sample_cost_mj: float = 0.05
    #: One radio transmission attempt (data + ack listen).
    tx_attempt_cost_mj: float = 1.0
    #: One LED flash.
    led_blink_cost_mj: float = 5.0
    #: Sleep-mode draw per second.
    idle_cost_mj_per_s: float = 0.01

    def __post_init__(self) -> None:
        for value in (
            self.sample_cost_mj,
            self.tx_attempt_cost_mj,
            self.led_blink_cost_mj,
            self.idle_cost_mj_per_s,
        ):
            if value < 0:
                raise ValueError("energy costs must be >= 0")


#: Two AA alkaline cells, usable energy (~20 kJ), in millijoules.
TWO_AA_CAPACITY_MJ = 20_000_000.0


class Battery:
    """A finite energy store with drain accounting."""

    def __init__(self, capacity_mj: float = TWO_AA_CAPACITY_MJ) -> None:
        if capacity_mj <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_mj = float(capacity_mj)
        self.drained_mj = 0.0

    def drain(self, amount_mj: float) -> bool:
        """Consume ``amount_mj``; returns False once depleted.

        Draining a depleted battery stays depleted (no negative
        charge); the caller (node firmware) is expected to stop.
        """
        if amount_mj < 0:
            raise ValueError("cannot drain a negative amount")
        if self.depleted:
            return False
        self.drained_mj = min(self.drained_mj + amount_mj, self.capacity_mj)
        return not self.depleted

    @property
    def depleted(self) -> bool:
        return self.drained_mj >= self.capacity_mj

    @property
    def remaining_fraction(self) -> float:
        return 1.0 - self.drained_mj / self.capacity_mj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Battery({self.remaining_fraction:.1%} remaining)"


def estimate_lifetime_days(
    profile: PowerProfile,
    sampling_hz: float,
    reports_per_hour: float = 10.0,
    blinks_per_hour: float = 5.0,
    capacity_mj: float = TWO_AA_CAPACITY_MJ,
) -> float:
    """Analytic node lifetime under a steady workload, in days."""
    if sampling_hz <= 0:
        raise ValueError("sampling_hz must be positive")
    per_second = (
        profile.idle_cost_mj_per_s
        + sampling_hz * profile.sample_cost_mj
        + reports_per_hour / 3600.0 * profile.tx_attempt_cost_mj
        + blinks_per_hour / 3600.0 * profile.led_blink_cost_mj
    )
    return capacity_mj / per_second / 86_400.0
