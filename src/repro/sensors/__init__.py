"""The PAVENET wireless-sensor-node substrate.

A faithful software model of the hardware the paper deploys: synthetic
sensor waveforms, the 10 Hz / 3-of-10 usage detector, EEPROM logging,
a drifting RTC, a lossy CC1000-like radio with stop-and-wait ARQ, and
the node firmware tying them together.  ``SensorNetwork`` deploys one
node per tool of an ADL plus the base station.
"""

from repro.sensors.agc import QuantileTracker, ThresholdController
from repro.sensors.battery import Battery, PowerProfile, estimate_lifetime_days
from repro.sensors.clock import RealTimeClock
from repro.sensors.detector import KofNDetector
from repro.sensors.eeprom import EepromLog, EepromRecord
from repro.sensors.hardware import LED_COLORS, PAVENET_SPEC, HardwareSpec
from repro.sensors.network import BaseStation, SensorNetwork
from repro.sensors.pavenet import Led, PavenetNode
from repro.sensors.radio import (
    BASE_STATION_UID,
    DuplicateFilter,
    Frame,
    RadioMedium,
    RadioStats,
)
from repro.sensors.signals import SignalProfile, SignalSource

__all__ = [
    "BASE_STATION_UID",
    "BaseStation",
    "Battery",
    "DuplicateFilter",
    "PowerProfile",
    "QuantileTracker",
    "ThresholdController",
    "estimate_lifetime_days",
    "EepromLog",
    "EepromRecord",
    "Frame",
    "HardwareSpec",
    "KofNDetector",
    "LED_COLORS",
    "Led",
    "PAVENET_SPEC",
    "PavenetNode",
    "RadioMedium",
    "RadioStats",
    "RealTimeClock",
    "SensorNetwork",
    "SignalProfile",
    "SignalSource",
]
