"""The deployed sensor network: one node per tool plus a base station.

Deploying CoReDA on a new ADL is exactly what the paper describes:
"attach one PAVENET to a tool, and configure its uid as the tool ID".
:class:`SensorNetwork` does that wholesale for an
:class:`~repro.core.adl.ADL`, wiring every node and the base station
onto one shared radio medium.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.core.adl import ADL
from repro.core.config import RadioConfig, SensingConfig
from repro.core.events import SensorFrameEvent
from repro.sensors.agc import ThresholdController
from repro.sensors.pavenet import PavenetNode
from repro.sensors.radio import (
    BASE_STATION_UID,
    DuplicateFilter,
    Frame,
    RadioMedium,
)
from repro.sensors.signals import SignalProfile, SignalSource
from repro.sim.kernel import Signal, Simulator
from repro.sim.random import RandomStreams
from repro.sim.tracing import TraceRecorder

__all__ = ["BaseStation", "SensorNetwork"]


class BaseStation:
    """The server-side radio endpoint (uid 0).

    Uplink ``usage`` frames are re-published on :attr:`frames` as
    :class:`~repro.core.events.SensorFrameEvent`; the sensing
    subsystem subscribes there.  Downlink LED commands go out through
    :meth:`send_led_command`.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: RadioMedium,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self._trace = trace
        self.frames = Signal("base_station.frames")
        self.frames_received = 0
        self.dedupe = DuplicateFilter()
        self._sequence = itertools.count(1)
        radio.attach(BASE_STATION_UID, self._on_frame)

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind != "usage":
            return
        if not self.dedupe.is_fresh(frame):
            # ARQ duplicate (the node's ack was lost): already handled.
            return
        self.frames_received += 1
        event = SensorFrameEvent(
            time=self.sim.now, node_uid=frame.src_uid, sequence=frame.sequence
        )
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, "base.frame", uid=frame.src_uid, sequence=frame.sequence
            )
        self.frames.fire(event)

    def send_led_command(self, node_uid: int, color: str, blinks: int) -> None:
        """Transmit a blink command down to ``node_uid``."""
        self.radio.transmit(
            Frame(
                src_uid=BASE_STATION_UID,
                dst_uid=node_uid,
                kind="led",
                sequence=next(self._sequence),
                payload={"color": color, "blinks": blinks},
            )
        )


class SensorNetwork:
    """Everything radio-side for one ADL deployment.

    ``profiles`` optionally overrides the signal profile per ToolID;
    the ADL library modules supply calibrated profiles matching each
    tool's handling style (vigorous brushing vs a brief pour).
    """

    def __init__(
        self,
        sim: Simulator,
        adl: ADL,
        sensing_config: SensingConfig,
        radio_config: RadioConfig,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
        profiles: Optional[Dict[int, SignalProfile]] = None,
        adaptive_thresholds: bool = False,
    ) -> None:
        self.sim = sim
        self.adl = adl
        self.sensing_config = sensing_config
        self.medium = RadioMedium(
            sim, radio_config, streams.get("radio"), trace=trace
        )
        self.base_station = BaseStation(sim, self.medium, trace=trace)
        self.sources: Dict[int, SignalSource] = {}
        self.nodes: Dict[int, PavenetNode] = {}
        profiles = profiles or {}
        for tool in adl.tools:
            profile = profiles.get(tool.tool_id, SignalProfile())
            source = SignalSource(
                profile, streams.get(f"signal.{tool.tool_id}")
            )
            node = PavenetNode(
                sim=sim,
                tool=tool,
                source=source,
                radio=self.medium,
                config=sensing_config,
                trace=trace,
                # Self-calibrating thresholds replace the paper's
                # hand-set per-sensor constants when requested.
                agc=ThresholdController() if adaptive_thresholds else None,
            )
            self.sources[tool.tool_id] = source
            self.nodes[tool.tool_id] = node

    def start(self) -> None:
        """Boot every node's firmware loop.

        Boot order is the ADL's tool order (an explicit sequence, per
        DET003): it decides the kernel sequence numbers of the t=0
        sampling events, hence the event stream's bytes.
        """
        for tool in self.adl.tools:
            self.nodes[tool.tool_id].start()

    def stop(self) -> None:
        """Power all nodes down (in the same explicit tool order)."""
        for tool in self.adl.tools:
            self.nodes[tool.tool_id].stop()

    def node(self, tool_id: int) -> PavenetNode:
        """The node attached to ``tool_id``."""
        return self.nodes[tool_id]

    def source(self, tool_id: int) -> SignalSource:
        """The signal source driving ``tool_id``'s sensor."""
        return self.sources[tool_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SensorNetwork({self.adl.name!r}, nodes={len(self.nodes)})"
