"""The node's external EEPROM, modelled as a bounded ring log.

The real PAVENET carries a 16 KB external EEPROM (Table 1).  Firmware
uses it as a circular log of detection records so that usage history
survives radio outages.  We enforce the byte budget: each record costs
a fixed size and the oldest records are overwritten when full, exactly
like a ring buffer in flash.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

__all__ = ["EepromRecord", "EepromLog"]

#: Bytes per log record: 4 (timestamp) + 2 (uid) + 2 (sequence).
RECORD_SIZE = 8


@dataclass(frozen=True)
class EepromRecord:
    """One detection record persisted on the node."""

    timestamp: float
    node_uid: int
    sequence: int


class EepromLog:
    """A capacity-bounded circular log of :class:`EepromRecord`.

    ``capacity_bytes`` defaults to the PAVENET's 16 KB.  Writes beyond
    capacity silently evict the oldest record (ring semantics);
    :attr:`overwrites` counts how many were lost, which the radio
    benches use to show when a lossy link backs the log up.
    """

    def __init__(self, capacity_bytes: int = 16 * 1024) -> None:
        if capacity_bytes < RECORD_SIZE:
            raise ValueError(
                f"capacity_bytes must hold at least one {RECORD_SIZE}-byte record"
            )
        self.capacity_records = capacity_bytes // RECORD_SIZE
        self._records: Deque[EepromRecord] = deque(maxlen=self.capacity_records)
        self.writes = 0
        self.overwrites = 0

    def append(self, record: EepromRecord) -> None:
        """Persist one record, evicting the oldest when full."""
        if len(self._records) == self.capacity_records:
            self.overwrites += 1
        self._records.append(record)
        self.writes += 1

    def records(self) -> List[EepromRecord]:
        """All currently retained records, oldest first."""
        return list(self._records)

    def used_bytes(self) -> int:
        """Bytes currently occupied."""
        return len(self._records) * RECORD_SIZE

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EepromLog({len(self._records)}/{self.capacity_records} records, "
            f"overwrites={self.overwrites})"
        )
