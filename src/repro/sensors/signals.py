"""Synthetic sensor waveforms standing in for real tool handling.

The paper's nodes observe real accelerometer / pressure readings as a
patient manipulates tools.  We replace the physical world with a
:class:`SignalSource` per node: the resident model calls
``begin_use`` / ``end_use`` around each step, and the node's sampling
loop reads instantaneous magnitudes.

The waveform model is deliberately simple but captures the one
property the paper's Table 3 hinges on: **short uses are easy to
miss**.  While a tool is active, each 10 Hz sample is an activity
burst exceeding the detection threshold with probability
``burst_probability``; otherwise (and always when inactive) it is
baseline noise.  A short use yields few samples, so the 3-of-10 rule
sometimes never sees three bursts in one window -- exactly why the
paper measured "Dry with a towel" at 85% and "Pour hot water" at 80%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SignalProfile", "SignalSource"]


@dataclass(frozen=True)
class SignalProfile:
    """Statistical shape of one tool's sensor signal while handled.

    ``burst_probability``: chance each active-period sample is an
    activity burst.  ``burst_mean`` / ``burst_sd``: burst magnitude
    distribution (must sit well above the detection threshold).
    ``noise_sd``: half-normal baseline noise magnitude.
    """

    burst_probability: float = 0.6
    burst_mean: float = 2.0
    burst_sd: float = 0.35
    noise_sd: float = 0.18

    def __post_init__(self) -> None:
        if not 0.0 < self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in (0, 1]")
        if self.burst_mean <= 0:
            raise ValueError("burst_mean must be positive")
        if self.noise_sd < 0:
            raise ValueError("noise_sd must be >= 0")


class SignalSource:
    """The instantaneous sensor reading of one node.

    The source is *stateful*: :meth:`begin_use` switches it into the
    active regime until :meth:`end_use` (or until ``duration`` elapses
    if one was given).  Reads are pure draws -- the sampling loop owns
    the 10 Hz cadence.
    """

    def __init__(self, profile: SignalProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self._rng = rng
        self._active = False
        self._active_until: float = float("inf")

    @property
    def active(self) -> bool:
        """True while the tool is being handled."""
        return self._active

    def begin_use(self, now: float = 0.0, duration: float = float("inf")) -> None:
        """Enter the active regime (optionally for ``duration`` seconds)."""
        self._active = True
        self._active_until = now + duration

    def end_use(self) -> None:
        """Return to the baseline regime."""
        self._active = False
        self._active_until = float("inf")

    def read(self, now: float) -> float:
        """Sample the signal magnitude at simulated time ``now``."""
        if self._active and now >= self._active_until:
            self.end_use()
        if self._active and self._rng.random() < self.profile.burst_probability:
            burst = self._rng.normal(self.profile.burst_mean, self.profile.burst_sd)
            return float(max(burst, 0.0))
        return float(abs(self._rng.normal(0.0, self.profile.noise_sd)))

    def read_trace(self, start: float, n_samples: int, hz: float) -> np.ndarray:
        """Sample ``n_samples`` readings at ``hz`` starting at ``start``.

        Convenience for offline experiments (the Table 3 harness feeds
        pre-sampled traces straight into a detector without running
        the full event kernel).
        """
        times = start + np.arange(n_samples) / hz
        return np.array([self.read(t) for t in times])
