"""Synthetic sensor waveforms standing in for real tool handling.

The paper's nodes observe real accelerometer / pressure readings as a
patient manipulates tools.  We replace the physical world with a
:class:`SignalSource` per node: the resident model calls
``begin_use`` / ``end_use`` around each step, and the node's sampling
loop reads instantaneous magnitudes.

The waveform model is deliberately simple but captures the one
property the paper's Table 3 hinges on: **short uses are easy to
miss**.  While a tool is active, each 10 Hz sample is an activity
burst exceeding the detection threshold with probability
``burst_probability``; otherwise (and always when inactive) it is
baseline noise.  A short use yields few samples, so the 3-of-10 rule
sometimes never sees three bursts in one window -- exactly why the
paper measured "Dry with a towel" at 85% and "Pour hot water" at 80%.

Two read paths exist and are draw-for-draw identical:

* :meth:`SignalSource.read` -- one scalar sample (the reference
  per-sample firmware loop);
* :meth:`SignalSource.read_block` / :meth:`SignalSource.read_block_at`
  -- a whole block at once, with idle stretches drawn as one
  vectorised ``normal`` call.  The draw *sequence* is preserved
  exactly (one uniform then one normal per active sample, one normal
  per inactive sample), so a block read leaves the generator in the
  same state as the equivalent scalar reads and produces the same
  bytes.

A monotonically increasing :attr:`SignalSource.epoch` is bumped on
every regime transition, and regime listeners (the node firmware's
block fast path) are notified on every *external* ``begin_use`` /
``end_use`` so they can invalidate and resynchronise samples they
pre-drew past the change (see ``docs/architecture.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

import numpy as np

__all__ = ["SignalProfile", "SignalSource"]

#: Opaque source state: (bit-generator state, active, active-until).
SourceState = Tuple[Any, bool, float]


@dataclass(frozen=True)
class SignalProfile:
    """Statistical shape of one tool's sensor signal while handled.

    ``burst_probability``: chance each active-period sample is an
    activity burst.  ``burst_mean`` / ``burst_sd``: burst magnitude
    distribution (must sit well above the detection threshold).
    ``noise_sd``: half-normal baseline noise magnitude.
    """

    burst_probability: float = 0.6
    burst_mean: float = 2.0
    burst_sd: float = 0.35
    noise_sd: float = 0.18

    def __post_init__(self) -> None:
        if not 0.0 < self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in (0, 1]")
        if self.burst_mean <= 0:
            raise ValueError("burst_mean must be positive")
        if self.noise_sd < 0:
            raise ValueError("noise_sd must be >= 0")


class SignalSource:
    """The instantaneous sensor reading of one node.

    The source is *stateful*: :meth:`begin_use` switches it into the
    active regime until :meth:`end_use` (or until ``duration`` elapses
    if one was given).  Reads are pure draws -- the sampling loop owns
    the 10 Hz cadence.
    """

    __slots__ = (
        "profile",
        "_rng",
        "_active",
        "_active_until",
        "epoch",
        "_regime_listeners",
    )

    def __init__(self, profile: SignalProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self._rng = rng
        self._active = False
        self._active_until: float = float("inf")
        #: Monotonic regime-transition counter; compare before/after
        #: to detect that pre-drawn samples may be stale.
        self.epoch = 0
        self._regime_listeners: List[Callable[[], None]] = []

    @property
    def active(self) -> bool:
        """True while the tool is being handled."""
        return self._active

    @property
    def active_until(self) -> float:
        """Simulated time the active regime auto-expires (inf = never)."""
        return self._active_until

    def subscribe_regime(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Call ``callback`` after every external regime change.

        Fires on public :meth:`begin_use` / :meth:`end_use` only --
        *not* on the automatic duration expiry a read performs itself,
        which the reader by construction already observes.  Returns an
        unsubscribe function.
        """
        self._regime_listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._regime_listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def begin_use(self, now: float = 0.0, duration: float = float("inf")) -> None:
        """Enter the active regime (optionally for ``duration`` seconds)."""
        self._active = True
        self._active_until = now + duration
        self.epoch += 1
        self._notify_regime()

    def end_use(self) -> None:
        """Return to the baseline regime."""
        self._expire()
        self._notify_regime()

    def _expire(self) -> None:
        """Regime flip to baseline without notifying listeners."""
        self._active = False
        self._active_until = float("inf")
        self.epoch += 1

    def _notify_regime(self) -> None:
        for callback in list(self._regime_listeners):
            callback()

    def read(self, now: float) -> float:
        """Sample the signal magnitude at simulated time ``now``."""
        if self._active and now >= self._active_until:
            self._expire()
        if self._active and self._rng.random() < self.profile.burst_probability:
            burst = self._rng.normal(self.profile.burst_mean, self.profile.burst_sd)
            return float(max(burst, 0.0))
        return float(abs(self._rng.normal(0.0, self.profile.noise_sd)))

    def read_block_at(self, times) -> np.ndarray:
        """Sample at each of ``times`` (non-decreasing), vectorised.

        Exactly equivalent to ``[self.read(t) for t in times]`` --
        same values, same generator state afterwards, same automatic
        expiry of a finite ``begin_use`` duration -- but idle
        stretches are drawn with one vectorised ``normal`` call.
        """
        rng = self._rng
        profile = self.profile
        if not self._active:
            # Dominant case: an entirely idle block never consults the
            # timestamps at all, so skip the bookkeeping below.
            out = rng.normal(0.0, profile.noise_sd, len(times))
            return np.abs(out, out=out)
        times = np.asarray(times, dtype=float)
        n = times.shape[0]
        out = np.empty(n)
        pos = 0
        while pos < n:
            if self._active:
                until = self._active_until
                if until == float("inf"):
                    m = n - pos
                else:
                    # Samples at t >= until belong to the expired regime.
                    m = int(np.searchsorted(times[pos:], until, side="left"))
                    if m == 0:
                        self._expire()
                        continue
                # The scalar draw sequence per active sample is one
                # uniform then one normal; numpy's ziggurat normals
                # consume a data-dependent number of generator words,
                # so this interleaving cannot be split into two array
                # draws without changing the stream.
                p = profile.burst_probability
                burst_mean = profile.burst_mean
                burst_sd = profile.burst_sd
                noise_sd = profile.noise_sd
                random = rng.random
                normal = rng.normal
                for i in range(pos, pos + m):
                    if random() < p:
                        burst = normal(burst_mean, burst_sd)
                        out[i] = burst if burst > 0.0 else 0.0
                    else:
                        out[i] = abs(normal(0.0, noise_sd))
                pos += m
                if pos < n:
                    self._expire()
            else:
                # One normal per inactive sample: an array draw is
                # bit-identical to the same number of scalar draws.
                out[pos:] = np.abs(rng.normal(0.0, profile.noise_sd, n - pos))
                pos = n
        return out

    def read_block(self, now: float, n: int, hz: float) -> np.ndarray:
        """Sample ``n`` readings at ``hz`` starting at ``now``.

        Sample times accumulate by repeated float addition of the
        period -- matching the kernel clock of a firmware loop that
        sleeps one period per sample -- so regime-expiry comparisons
        land on exactly the timestamps the scalar loop would see.
        """
        if not self._active:
            # Idle blocks never consult the timestamps; skip building
            # them (this is the hot path of an idle node).
            out = self._rng.normal(0.0, self.profile.noise_sd, n)
            return np.abs(out, out=out)
        period = 1.0 / hz
        times = np.empty(n)
        t = now
        for i in range(n):
            times[i] = t
            t += period
        return self.read_block_at(times)

    def capture(self) -> SourceState:
        """Snapshot (generator state, regime) for :meth:`restore`."""
        return (self._rng.bit_generator.state, self._active, self._active_until)

    def restore(self, state: SourceState) -> None:
        """Roll generator and regime back to a :meth:`capture` point.

        Used by the block fast path to replay the committed prefix of
        an invalidated block; does not touch :attr:`epoch` (which is
        monotonic) and does not notify regime listeners.
        """
        rng_state, active, active_until = state
        self._rng.bit_generator.state = rng_state
        self._active = active
        self._active_until = active_until

    def set_regime(self, active: bool, active_until: float) -> None:
        """Force the regime without draws or notifications.

        Fast-path internal: after a resynchronising replay the node
        re-applies the externally-changed regime on top of the
        restored generator position.
        """
        self._active = active
        self._active_until = active_until

    def read_trace(self, start: float, n_samples: int, hz: float) -> np.ndarray:
        """Sample ``n_samples`` readings at ``hz`` starting at ``start``.

        Convenience for offline experiments (the Table 3 harness feeds
        pre-sampled traces straight into a detector without running
        the full event kernel).  Times sit on the exact
        ``start + k/hz`` grid (as the original scalar implementation's
        ``np.arange`` did) and the draws match it draw-for-draw.
        """
        times = start + np.arange(n_samples) / hz
        return self.read_block_at(times)
