"""Adaptive threshold control for the usage detector.

The paper assumes "a pre-defined threshold" per sensor, which in
practice means someone calibrated every node by hand -- and a node
deployed with the wrong threshold either misses every handling (too
high) or trips on noise (too low).  This controller removes the hand
calibration: it tracks a high quantile of the sample stream with a
Robbins-Monro estimator and keeps the detector's threshold a fixed
margin above it.

Tool handling is sparse (a few percent duty cycle at most), so the
q-quantile of *all* samples tracks the noise floor; the margin then
places the threshold between noise and burst magnitudes.  From a
mis-set starting point the threshold converges within a few thousand
samples (minutes at 10 Hz), which the tests pin down.
"""

from __future__ import annotations

__all__ = ["QuantileTracker", "ThresholdController"]


class QuantileTracker:
    """Streaming quantile estimation (Robbins-Monro).

    On each observation x: estimate += step · (q − 1{x ≤ estimate}).
    With a constant step this tracks slow drift; ``step`` is in the
    signal's units.
    """

    def __init__(self, quantile: float = 0.99, step: float = 0.02,
                 initial: float = 0.5) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if step <= 0:
            raise ValueError("step must be positive")
        self.quantile = quantile
        self.step = step
        self.estimate = float(initial)
        self.observations = 0

    def observe(self, sample: float) -> float:
        """Update with one sample; returns the current estimate."""
        if sample > self.estimate:
            self.estimate += self.step * self.quantile
        else:
            self.estimate -= self.step * (1.0 - self.quantile)
        self.estimate = max(self.estimate, 0.0)
        self.observations += 1
        return self.estimate


class ThresholdController:
    """Keeps a detection threshold a margin above the noise floor.

    ``margin`` multiplies the tracked noise quantile; the result is
    clamped to [``minimum``, ``maximum``] so a pathological stream can
    never push the threshold somewhere useless.  Apply the output to
    the detector every ``update_every`` samples (cheap enough to do
    per sample, but real firmware batches).
    """

    def __init__(
        self,
        quantile: float = 0.99,
        margin: float = 2.0,
        minimum: float = 0.3,
        maximum: float = 5.0,
        step: float = 0.02,
        initial_noise: float = 0.5,
    ) -> None:
        if margin <= 1.0:
            raise ValueError("margin must exceed 1.0")
        if not 0.0 < minimum < maximum:
            raise ValueError("need 0 < minimum < maximum")
        self.tracker = QuantileTracker(
            quantile=quantile, step=step, initial=initial_noise
        )
        self.margin = margin
        self.minimum = minimum
        self.maximum = maximum

    def observe(self, sample: float) -> float:
        """Feed one sample; returns the recommended threshold."""
        noise = self.tracker.observe(sample)
        return self.threshold_for(noise)

    def threshold_for(self, noise_estimate: float) -> float:
        """The clamped threshold for a given noise-floor estimate."""
        return min(max(noise_estimate * self.margin, self.minimum),
                   self.maximum)

    @property
    def threshold(self) -> float:
        """The current recommendation."""
        return self.threshold_for(self.tracker.estimate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThresholdController(noise~{self.tracker.estimate:.3f}, "
            f"threshold={self.threshold:.3f})"
        )
