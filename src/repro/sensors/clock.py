"""The node's real-time clock with crystal drift.

Cheap RTC crystals drift on the order of tens of parts per million.
Node-local timestamps (EEPROM records, frame headers) therefore
deviate from simulated wall time; the base station timestamps frames
on arrival with *its* clock, which is what the sensing subsystem and
the evaluation use.  Modelling the drift keeps the substrate honest
and gives the tests an invariant to pin down (monotonicity, bounded
skew).
"""

from __future__ import annotations

__all__ = ["RealTimeClock"]


class RealTimeClock:
    """A drifting clock: local = offset + (1 + ppm*1e-6) * wall."""

    def __init__(self, drift_ppm: float = 20.0, offset: float = 0.0) -> None:
        self.drift_ppm = float(drift_ppm)
        self.offset = float(offset)

    def local_time(self, wall_time: float) -> float:
        """The node's idea of the time at true simulated ``wall_time``."""
        return self.offset + wall_time * (1.0 + self.drift_ppm * 1e-6)

    def skew_at(self, wall_time: float) -> float:
        """Accumulated deviation from wall time, seconds."""
        return self.local_time(wall_time) - wall_time

    def resync(self, wall_time: float) -> None:
        """Zero the skew at ``wall_time`` (e.g. a time-sync beacon)."""
        self.offset -= self.skew_at(wall_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RealTimeClock(drift_ppm={self.drift_ppm}, offset={self.offset})"
