"""A CC1000-like lossy radio medium with stop-and-wait ARQ.

The real PAVENET talks over a ChipCon CC1000 transceiver.  For the
reproduction what matters is that frames can be *lost*, which erodes
end-to-end extraction precision (one of the ablation benches sweeps
the loss rate).  The model:

* every transmission attempt is lost with ``loss_probability`` on the
  data frame and again on the acknowledgement;
* the sender retries up to ``max_retries`` times at
  ``retry_interval`` spacing (stop-and-wait ARQ);
* a delivered frame reaches the receiver ``latency`` seconds after
  the successful attempt;
* a delivered frame whose *ack* was lost is retried by the sender and
  therefore **delivered again** -- the classic stop-and-wait duplicate.
  Receivers must deduplicate by (source uid, sequence); the base
  station does.

Statistics are kept for the benches: attempts, losses, deliveries,
duplicates, permanent drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.config import RadioConfig
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceRecorder

__all__ = [
    "Frame",
    "RadioStats",
    "RadioMedium",
    "DuplicateFilter",
    "BASE_STATION_UID",
]

#: Destination uid of the base station / server.
BASE_STATION_UID = 0


@dataclass(frozen=True)
class Frame:
    """One link-layer frame."""

    src_uid: int
    dst_uid: int
    kind: str
    sequence: int
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RadioStats:
    """Counters the radio benches report on."""

    attempts: int = 0
    losses: int = 0
    delivered: int = 0
    duplicates: int = 0
    dropped: int = 0
    retransmissions: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Uniquely delivered / offered frames (1.0 when none offered).

        Duplicate deliveries of the same frame count once.
        """
        unique = self.delivered - self.duplicates
        offered = unique + self.dropped
        if offered == 0:
            return 1.0
        return unique / offered


class DuplicateFilter:
    """Receiver-side deduplication for stop-and-wait traffic.

    Under stop-and-wait, frames from one sender arrive in sequence
    order and duplicates re-use the original sequence number, so a
    frame is fresh exactly when its sequence exceeds the highest seen
    from that (sender, kind) pair.
    """

    def __init__(self) -> None:
        self._highest: Dict[tuple, int] = {}
        self.duplicates_filtered = 0

    def is_fresh(self, frame: Frame) -> bool:
        """True for first deliveries; False (and counted) for dups."""
        key = (frame.src_uid, frame.kind)
        if frame.sequence <= self._highest.get(key, 0):
            self.duplicates_filtered += 1
            return False
        self._highest[key] = frame.sequence
        return True

    def reset(self) -> None:
        """Forget all sequence state (e.g. after a node reboot)."""
        self._highest.clear()


class RadioMedium:
    """The shared wireless medium connecting nodes and base station.

    Receivers register per uid with :meth:`attach`.  Transmissions are
    fire-and-forget for the caller; ARQ runs inside the medium.
    """

    def __init__(
        self,
        sim: Simulator,
        config: RadioConfig,
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self._rng = rng
        self._trace = trace
        self._receivers: Dict[int, Callable[[Frame], None]] = {}
        self.stats = RadioStats()

    def attach(self, uid: int, receiver: Callable[[Frame], None]) -> None:
        """Register the frame handler for destination ``uid``."""
        if uid in self._receivers:
            raise ValueError(f"uid {uid} already attached to the medium")
        self._receivers[uid] = receiver

    def detach(self, uid: int) -> None:
        """Remove the handler for ``uid`` (unknown uid is a no-op)."""
        self._receivers.pop(uid, None)

    def transmit(self, frame: Frame) -> None:
        """Send ``frame`` with stop-and-wait ARQ."""
        state = {"delivered_once": False}
        self._attempt(
            frame, tries_left=self.config.max_retries + 1, first=True, state=state
        )

    def _attempt(self, frame: Frame, tries_left: int, first: bool, state) -> None:
        self.stats.attempts += 1
        if not first:
            self.stats.retransmissions += 1
        data_ok = self._rng.random() >= self.config.loss_probability
        ack_ok = self._rng.random() >= self.config.loss_probability
        if data_ok:
            # The receiver gets the frame whatever happens to the ack;
            # a lost ack makes the sender retry and the receiver see a
            # duplicate (classic stop-and-wait).
            duplicate = state["delivered_once"]
            state["delivered_once"] = True
            self.sim.schedule(
                self.config.latency, lambda: self._deliver(frame, duplicate)
            )
            if ack_ok:
                return
        self.stats.losses += 1
        if tries_left - 1 <= 0:
            if not state["delivered_once"]:
                self.stats.dropped += 1
                if self._trace is not None:
                    self._trace.emit(
                        self.sim.now,
                        "radio.dropped",
                        src=frame.src_uid,
                        kind=frame.kind,
                        sequence=frame.sequence,
                    )
            return
        self.sim.schedule(
            self.config.retry_interval,
            lambda: self._attempt(frame, tries_left - 1, first=False, state=state),
        )

    def _deliver(self, frame: Frame, duplicate: bool = False) -> None:
        self.stats.delivered += 1
        if duplicate:
            self.stats.duplicates += 1
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "radio.delivered",
                src=frame.src_uid,
                dst=frame.dst_uid,
                kind=frame.kind,
                sequence=frame.sequence,
            )
        receiver = self._receivers.get(frame.dst_uid)
        if receiver is not None:
            receiver(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadioMedium(loss={self.config.loss_probability}, "
            f"delivered={self.stats.delivered}, dropped={self.stats.dropped})"
        )
