"""The PAVENET node model: firmware loop, LEDs, EEPROM, radio uplink.

Each tool carries one node.  The firmware is the same on every node
(the paper stresses this is what makes CoReDA "easily generalize to
other ADLs" -- only the uid differs): a 10 Hz sampling loop feeds the
3-of-10 detector, and each detection is logged to EEPROM and uplinked
as a ``usage`` frame carrying the node uid.  Downlink ``led`` frames
blink the requested LED.

Two firmware implementations coexist, selected by
``SensingConfig.batch_samples``:

* ``batch_samples=1`` (or a battery-powered node): the reference
  per-sample loop -- one kernel event, one RNG read and one detector
  step per sample.
* ``batch_samples>1`` (the default): the **block fast path** -- one
  kernel event per block of samples, drawn vectorised from the
  :class:`~repro.sensors.signals.SignalSource` and fed to the detector
  in one call, with usage reports scheduled at their exact per-sample
  timestamps.  When the resident flips the signal regime mid-block,
  the node rolls the source/detector back to the block start, replays
  the committed prefix, and resumes sampling from the first
  uncommitted timestamp -- so the event stream is byte-identical to
  the reference loop (see ``docs/architecture.md``).

Battery-powered nodes always use the reference loop: the battery
drains per sample *interleaved* with transmit drains, an ordering a
pre-drawn block cannot reproduce.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adl import Tool
from repro.core.config import SensingConfig
from repro.sensors.agc import ThresholdController
from repro.sensors.battery import Battery, PowerProfile
from repro.sensors.clock import RealTimeClock
from repro.sensors.detector import DetectorState, KofNDetector
from repro.sensors.eeprom import EepromLog, EepromRecord
from repro.sensors.hardware import LED_COLORS, PAVENET_SPEC, HardwareSpec
from repro.sensors.radio import (
    BASE_STATION_UID,
    DuplicateFilter,
    Frame,
    RadioMedium,
)
from repro.sensors.signals import SignalSource, SourceState
from repro.sim.kernel import Event, Simulator
from repro.sim.process import Process, Timeout
from repro.sim.tracing import TraceRecorder

__all__ = ["Led", "PavenetNode"]


@dataclass
class BlinkRecord:
    """One executed blink command."""

    time: float
    blinks: int


class Led:
    """One of the node's four LEDs.

    Blink commands are recorded with their timestamps; the Figure 1
    scenario harness reads these back to verify e.g. "Red LED on
    teacup" fired at the wrong-tool moment.
    """

    def __init__(self, color: str) -> None:
        self.color = color
        self.history: List[BlinkRecord] = []
        self._total_blinks = 0

    def blink(self, time: float, count: int) -> None:
        """Execute a blink command of ``count`` flashes."""
        if count <= 0:
            raise ValueError("blink count must be positive")
        self.history.append(BlinkRecord(time=time, blinks=count))
        self._total_blinks += count

    @property
    def total_blinks(self) -> int:
        """Total flashes executed since boot (O(1) running counter)."""
        return self._total_blinks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Led({self.color!r}, commands={len(self.history)})"


class PavenetNode:
    """A simulated PAVENET module attached to one tool.

    Parameters mirror the physical build: the node's ``uid`` *is* the
    ToolID (paper section 2.1), the signal source stands in for the
    physical sensor, and the radio medium carries usage frames to the
    base station (uid 0).
    """

    def __init__(
        self,
        sim: Simulator,
        tool: Tool,
        source: SignalSource,
        radio: RadioMedium,
        config: SensingConfig,
        trace: Optional[TraceRecorder] = None,
        spec: HardwareSpec = PAVENET_SPEC,
        battery: Optional[Battery] = None,
        power_profile: Optional[PowerProfile] = None,
        agc: Optional[ThresholdController] = None,
    ) -> None:
        self.sim = sim
        self.tool = tool
        self.uid = tool.tool_id
        self.source = source
        self.radio = radio
        self.config = config
        self.spec = spec
        self._trace = trace
        self.detector = KofNDetector(
            threshold=config.usage_threshold,
            k=config.threshold_count,
            n=config.window_size,
            refractory_samples=int(config.refractory_period * config.sampling_hz),
        )
        self.eeprom = EepromLog(spec.eeprom_bytes)
        self.rtc = RealTimeClock(drift_ppm=20.0 + (self.uid % 7) * 5.0)
        self.leds: Dict[str, Led] = {color: Led(color) for color in LED_COLORS}
        self._sequence = itertools.count(1)
        self._loop: Optional[Process] = None
        self.usage_reports = 0
        self._dedupe = DuplicateFilter()
        #: None = mains powered (tests and most experiments); a real
        #: Battery makes the node mortal.
        self.battery = battery
        self.power_profile = (
            power_profile if power_profile is not None else PowerProfile()
        )
        #: None = fixed (pre-calibrated) threshold, as in the paper;
        #: a ThresholdController self-calibrates against the noise
        #: floor while the node runs.
        self.agc = agc
        # Block fast path state (see module docstring).
        self._hz = config.sampling_hz
        self._period = 1.0 / config.sampling_hz
        self._batch = config.batch_samples
        self._block_running = False
        self._block_event: Optional[Event] = None
        self._block_t0: Optional[float] = None
        self._block_n = 0
        self._block_last = 0.0
        self._block_source_state: Optional[SourceState] = None
        self._block_detector_state: Optional[DetectorState] = None
        self._block_agc_state: Optional[Tuple[float, int]] = None
        # (scheduled time, event) pairs: the time rides along because
        # the events are scheduled ``reusable`` -- once one has fired
        # the kernel may recycle the object, so pruning decisions must
        # never read fields off a handle that might be dead.
        self._block_pending: List[Tuple[float, Event]] = []
        source.subscribe_regime(self._on_regime_change)
        radio.attach(self.uid, self._on_frame)

    def start(self) -> None:
        """Boot the firmware: begin the 10 Hz sampling loop."""
        if self.running:
            return
        if self.battery is not None or self._batch <= 1:
            self._loop = Process(
                self.sim, self._firmware_loop(), name=f"node{self.uid}.firmware"
            )
            return
        self._block_running = True
        self._block_event = self.sim.schedule(
            0.0, self._process_block, reusable=True
        )

    def stop(self) -> None:
        """Power the node down (sampling stops, radio stays attached)."""
        if self._loop is not None:
            self._loop.interrupt()
            self._loop = None
        if self._block_running:
            self._block_running = False
            if self._block_event is not None:
                self._block_event.cancel()
                self._block_event = None
            now = self.sim.now
            for time, event in self._block_pending:
                if time > now:
                    event.cancel()
            self._block_pending = []
            self._block_t0 = None

    @property
    def running(self) -> bool:
        """True while the firmware (loop or block sampler) is alive."""
        if self._block_running:
            return True
        return self._loop is not None and not self._loop.done

    # ----- reference per-sample firmware -------------------------------

    def _firmware_loop(self):
        period = self._period
        while True:
            if not self._drain(
                self.power_profile.sample_cost_mj
                + self.power_profile.idle_cost_mj_per_s * period
            ):
                if self._trace is not None:
                    self._trace.emit(self.sim.now, "node.battery_dead",
                                     uid=self.uid)
                return  # the node dies in place
            sample = self.source.read(self.sim.now)
            if self.agc is not None:
                self.detector.threshold = self.agc.observe(sample)
            if self.detector.observe(sample):
                self._report_usage()
            yield Timeout(period)

    # ----- block fast path ---------------------------------------------

    def _block_sample_times(self, start: float, n: int) -> List[float]:
        """Sample timestamps of a block, accumulated by repeated float
        addition exactly like the reference loop's ``Timeout(period)``
        clock.  Deterministic, so the list is rebuilt on demand (hits
        and invalidations are rare) instead of per block.
        """
        times: List[float] = []
        append = times.append
        t = start
        period = self._period
        for _ in range(n):
            append(t)
            t += period
        return times

    def _truncated_length(self, start: float) -> int:
        """The next block's sample count, truncated at a known regime
        expiry so a block never spans one.

        A count of 0 never occurs: when ``start`` is already past the
        expiry the full block runs (the source expires itself at the
        first read, so the regime is constant anyway).
        """
        n = self._batch
        source = self.source
        if source.active:
            until = source.active_until
            if until != float("inf"):
                count = 0
                t = start
                period = self._period
                while count < n and t < until:
                    count += 1
                    t += period
                if 0 < count < n:
                    return count
        return n

    def _process_block(self) -> None:
        sim = self.sim
        source = self.source
        t0 = sim.now
        n = self._truncated_length(t0)
        # Snapshot everything a mid-block regime change would need to
        # roll back: RNG + regime, detector window, AGC noise tracker.
        self._block_source_state = source.capture()
        self._block_detector_state = self.detector.snapshot()
        if self.agc is not None:
            tracker = self.agc.tracker
            self._block_agc_state = (tracker.estimate, tracker.observations)
        values = source.read_block(t0, n, self._hz)
        if self.agc is None:
            hits = self.detector.observe_block(values)
        else:
            hits = self._detect(values)
        period = self._period
        self._block_pending = pending = []
        if hits:
            times = self._block_sample_times(t0, n)
            for index in hits:
                if index == 0:
                    self._report_usage()
                else:
                    time = times[index]
                    pending.append(
                        (
                            time,
                            sim.schedule_at(
                                time, self._report_usage, reusable=True
                            ),
                        )
                    )
            last = times[-1]
        else:
            last = t0
            for _ in range(n - 1):
                last += period
        self._block_t0 = t0
        self._block_n = n
        self._block_last = last
        self._block_event = sim.schedule_at(
            last + period, self._process_block, reusable=True
        )

    def _detect(self, values) -> Sequence[int]:
        """Run the detector over a value block; return detecting indices."""
        if self.agc is None:
            return self.detector.observe_block(values)
        hits: List[int] = []
        detector = self.detector
        agc = self.agc
        for index, value in enumerate(values):
            sample = float(value)
            detector.threshold = agc.observe(sample)
            if detector.observe(sample):
                hits.append(index)
        return hits

    def _on_regime_change(self) -> None:
        """Invalidate the pre-drawn block tail after ``begin_use``/``end_use``.

        Samples at ``t <= now`` are *committed* -- the reference loop
        would have read them before the regime change, and their draws
        and any usage reports already happened with identical bytes.
        Samples at ``t > now`` were drawn from the wrong regime: roll
        the source and detector back to the block start, replay the
        committed prefix (restoring the exact RNG position and window
        state), re-apply the new regime, and resume block sampling at
        the first uncommitted timestamp.
        """
        t0 = self._block_t0
        if not self._block_running or t0 is None:
            return
        sim = self.sim
        now = sim.now
        if now >= self._block_last:
            return  # every sample in this block is already committed
        times = self._block_sample_times(t0, self._block_n)
        j = bisect_right(times, now)
        # Usage reports drawn from the stale tail must not fire.
        kept: List[Tuple[float, Event]] = []
        for time, event in self._block_pending:
            if time > now:
                event.cancel()
            else:
                kept.append((time, event))
        self._block_pending = kept
        if self._block_event is not None:
            self._block_event.cancel()
            self._block_event = None
        source = self.source
        post_active = source.active
        post_until = source.active_until
        source.restore(self._block_source_state)
        self.detector.restore(self._block_detector_state)
        if self.agc is not None and self._block_agc_state is not None:
            tracker = self.agc.tracker
            tracker.estimate, tracker.observations = self._block_agc_state
        if j:
            # Replay for state only: the committed hits already fired
            # (or sit in ``kept``), so the indices are discarded.
            self._detect(source.read_block_at(times[:j]))
        source.set_regime(post_active, post_until)
        self._block_t0 = None
        self._block_event = sim.schedule_at(
            times[j], self._process_block, reusable=True
        )

    # ----- shared machinery --------------------------------------------

    def _drain(self, amount_mj: float) -> bool:
        if self.battery is None:
            return True
        return self.battery.drain(amount_mj)

    def _report_usage(self) -> None:
        sequence = next(self._sequence)
        self.usage_reports += 1
        self.eeprom.append(
            EepromRecord(
                timestamp=self.rtc.local_time(self.sim.now),
                node_uid=self.uid,
                sequence=sequence,
            )
        )
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, "node.usage_detected", uid=self.uid, sequence=sequence
            )
        self._drain(self.power_profile.tx_attempt_cost_mj)
        self.radio.transmit(
            Frame(
                src_uid=self.uid,
                dst_uid=BASE_STATION_UID,
                kind="usage",
                sequence=sequence,
            )
        )

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind != "led":
            return
        if not self._dedupe.is_fresh(frame):
            # ARQ duplicate of a blink command already executed.
            return
        color = frame.payload.get("color", "green")
        blinks = int(frame.payload.get("blinks", 1))
        led = self.leds.get(color)
        if led is None:
            return
        if not self._drain(blinks * self.power_profile.led_blink_cost_mj):
            return
        led.blink(self.sim.now, blinks)
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "node.led",
                uid=self.uid,
                color=color,
                blinks=blinks,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PavenetNode(uid={self.uid}, tool={self.tool.name!r})"
