"""The PAVENET node model: firmware loop, LEDs, EEPROM, radio uplink.

Each tool carries one node.  The firmware is the same on every node
(the paper stresses this is what makes CoReDA "easily generalize to
other ADLs" -- only the uid differs): a 10 Hz sampling loop feeds the
3-of-10 detector, and each detection is logged to EEPROM and uplinked
as a ``usage`` frame carrying the node uid.  Downlink ``led`` frames
blink the requested LED.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.adl import Tool
from repro.core.config import SensingConfig
from repro.sensors.agc import ThresholdController
from repro.sensors.battery import Battery, PowerProfile
from repro.sensors.clock import RealTimeClock
from repro.sensors.detector import KofNDetector
from repro.sensors.eeprom import EepromLog, EepromRecord
from repro.sensors.hardware import LED_COLORS, PAVENET_SPEC, HardwareSpec
from repro.sensors.radio import (
    BASE_STATION_UID,
    DuplicateFilter,
    Frame,
    RadioMedium,
)
from repro.sensors.signals import SignalSource
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.tracing import TraceRecorder

__all__ = ["Led", "PavenetNode"]


@dataclass
class BlinkRecord:
    """One executed blink command."""

    time: float
    blinks: int


class Led:
    """One of the node's four LEDs.

    Blink commands are recorded with their timestamps; the Figure 1
    scenario harness reads these back to verify e.g. "Red LED on
    teacup" fired at the wrong-tool moment.
    """

    def __init__(self, color: str) -> None:
        self.color = color
        self.history: List[BlinkRecord] = []

    def blink(self, time: float, count: int) -> None:
        """Execute a blink command of ``count`` flashes."""
        if count <= 0:
            raise ValueError("blink count must be positive")
        self.history.append(BlinkRecord(time=time, blinks=count))

    @property
    def total_blinks(self) -> int:
        """Total flashes executed since boot."""
        return sum(record.blinks for record in self.history)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Led({self.color!r}, commands={len(self.history)})"


class PavenetNode:
    """A simulated PAVENET module attached to one tool.

    Parameters mirror the physical build: the node's ``uid`` *is* the
    ToolID (paper section 2.1), the signal source stands in for the
    physical sensor, and the radio medium carries usage frames to the
    base station (uid 0).
    """

    def __init__(
        self,
        sim: Simulator,
        tool: Tool,
        source: SignalSource,
        radio: RadioMedium,
        config: SensingConfig,
        trace: Optional[TraceRecorder] = None,
        spec: HardwareSpec = PAVENET_SPEC,
        battery: Optional[Battery] = None,
        power_profile: Optional[PowerProfile] = None,
        agc: Optional[ThresholdController] = None,
    ) -> None:
        self.sim = sim
        self.tool = tool
        self.uid = tool.tool_id
        self.source = source
        self.radio = radio
        self.config = config
        self.spec = spec
        self._trace = trace
        self.detector = KofNDetector(
            threshold=config.usage_threshold,
            k=config.threshold_count,
            n=config.window_size,
            refractory_samples=int(config.refractory_period * config.sampling_hz),
        )
        self.eeprom = EepromLog(spec.eeprom_bytes)
        self.rtc = RealTimeClock(drift_ppm=20.0 + (self.uid % 7) * 5.0)
        self.leds: Dict[str, Led] = {color: Led(color) for color in LED_COLORS}
        self._sequence = itertools.count(1)
        self._loop: Optional[Process] = None
        self.usage_reports = 0
        self._dedupe = DuplicateFilter()
        #: None = mains powered (tests and most experiments); a real
        #: Battery makes the node mortal.
        self.battery = battery
        self.power_profile = (
            power_profile if power_profile is not None else PowerProfile()
        )
        #: None = fixed (pre-calibrated) threshold, as in the paper;
        #: a ThresholdController self-calibrates against the noise
        #: floor while the node runs.
        self.agc = agc
        radio.attach(self.uid, self._on_frame)

    def start(self) -> None:
        """Boot the firmware: begin the 10 Hz sampling loop."""
        if self._loop is not None and not self._loop.done:
            return
        self._loop = Process(
            self.sim, self._firmware_loop(), name=f"node{self.uid}.firmware"
        )

    def stop(self) -> None:
        """Power the node down (sampling stops, radio stays attached)."""
        if self._loop is not None:
            self._loop.interrupt()
            self._loop = None

    @property
    def running(self) -> bool:
        """True while the firmware loop is alive."""
        return self._loop is not None and not self._loop.done

    def _firmware_loop(self):
        period = 1.0 / self.config.sampling_hz
        while True:
            if not self._drain(
                self.power_profile.sample_cost_mj
                + self.power_profile.idle_cost_mj_per_s * period
            ):
                if self._trace is not None:
                    self._trace.emit(self.sim.now, "node.battery_dead",
                                     uid=self.uid)
                return  # the node dies in place
            sample = self.source.read(self.sim.now)
            if self.agc is not None:
                self.detector.threshold = self.agc.observe(sample)
            if self.detector.observe(sample):
                self._report_usage()
            yield Timeout(period)

    def _drain(self, amount_mj: float) -> bool:
        if self.battery is None:
            return True
        return self.battery.drain(amount_mj)

    def _report_usage(self) -> None:
        sequence = next(self._sequence)
        self.usage_reports += 1
        self.eeprom.append(
            EepromRecord(
                timestamp=self.rtc.local_time(self.sim.now),
                node_uid=self.uid,
                sequence=sequence,
            )
        )
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, "node.usage_detected", uid=self.uid, sequence=sequence
            )
        self._drain(self.power_profile.tx_attempt_cost_mj)
        self.radio.transmit(
            Frame(
                src_uid=self.uid,
                dst_uid=BASE_STATION_UID,
                kind="usage",
                sequence=sequence,
            )
        )

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind != "led":
            return
        if not self._dedupe.is_fresh(frame):
            # ARQ duplicate of a blink command already executed.
            return
        color = frame.payload.get("color", "green")
        blinks = int(frame.payload.get("blinks", 1))
        led = self.leds.get(color)
        if led is None:
            return
        if not self._drain(blinks * self.power_profile.led_blink_cost_mj):
            return
        led.blink(self.sim.now, blinks)
        if self._trace is not None:
            self._trace.emit(
                self.sim.now,
                "node.led",
                uid=self.uid,
                color=color,
                blinks=blinks,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PavenetNode(uid={self.uid}, tool={self.tool.name!r})"
