"""The k-of-n threshold usage detector (paper section 2.1).

    "The sampling rate of each sensor is 10 times in one second.  If
    three of these 10 samples surpass a pre-defined threshold, the
    tool will be considered is using [...].  We use this mechanism to
    protect detection against accidental operation."

The detector keeps a sliding window of the last ``n`` boolean
exceedances; when at least ``k`` are set it declares usage.  A
refractory period then suppresses re-detections so one physical
handling produces one usage report.

The window population is tracked as a running counter (updated on
append/evict) rather than summed on every sample, and
:meth:`observe_block` processes a whole pre-drawn sample block in one
call -- both feed the node firmware's block-sampling fast path (see
``docs/architecture.md``), which also relies on
:meth:`snapshot`/:meth:`restore` to roll the detector back when a
mid-block regime change invalidates part of a block.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

import numpy as np

__all__ = ["KofNDetector"]

#: Opaque detector state: (window, window sum, refractory, detections,
#: samples seen, threshold).
DetectorState = Tuple[Tuple[bool, ...], int, int, int, int, float]


class KofNDetector:
    """Sliding-window k-of-n threshold detector.

    Feed samples with :meth:`observe`; it returns ``True`` exactly
    when a new usage event should be reported.  The window is cleared
    on detection, then a refractory period (in samples) keeps the
    detector quiet while the same handling continues.
    """

    __slots__ = (
        "threshold",
        "k",
        "n",
        "refractory_samples",
        "_window",
        "_window_sum",
        "_refractory_left",
        "detections",
        "samples_seen",
    )

    def __init__(
        self,
        threshold: float,
        k: int = 3,
        n: int = 10,
        refractory_samples: int = 20,
    ) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        if refractory_samples < 0:
            raise ValueError("refractory_samples must be >= 0")
        self.threshold = float(threshold)
        self.k = k
        self.n = n
        self.refractory_samples = refractory_samples
        self._window: Deque[bool] = deque(maxlen=n)
        self._window_sum = 0
        self._refractory_left = 0
        self.detections = 0
        self.samples_seen = 0

    def observe(self, sample: float) -> bool:
        """Process one sample; return ``True`` on a new detection."""
        self.samples_seen += 1
        if self._refractory_left > 0:
            self._refractory_left -= 1
            return False
        window = self._window
        if len(window) == self.n:
            self._window_sum -= window[0]
        flag = sample > self.threshold
        window.append(flag)
        if flag:
            self._window_sum += 1
        if self._window_sum >= self.k:
            window.clear()
            self._window_sum = 0
            self._refractory_left = self.refractory_samples
            self.detections += 1
            return True
        return False

    def observe_block(self, samples) -> List[int]:
        """Process a whole sample block; return the detecting indices.

        Exactly equivalent to calling :meth:`observe` on each sample
        in order (the fast-path equivalence tests pin this down); the
        thresholding is vectorised and the window logic runs over
        plain bools.
        """
        exceed = np.asarray(samples, dtype=float) > self.threshold
        window = self._window
        n = self.n
        if not np.count_nonzero(exceed):
            # Dominant case while the tool is idle: nothing exceeds,
            # so nothing can detect (the standing window sum is < k by
            # invariant and only decreases under all-False appends).
            m = int(exceed.shape[0])
            self.samples_seen += m
            refractory_left = self._refractory_left
            if refractory_left:
                if refractory_left >= m:
                    self._refractory_left = refractory_left - m
                    return []
                self._refractory_left = 0
                m -= refractory_left
            if self._window_sum == 0:
                window.extend([False] * m)
            elif m >= n:
                window.clear()
                window.extend([False] * n)
                self._window_sum = 0
            else:
                window_sum = self._window_sum
                for _ in range(m):
                    if len(window) == n and window[0]:
                        window_sum -= 1
                    window.append(False)
                self._window_sum = window_sum
            return []
        flags = exceed.tolist()
        hits: List[int] = []
        k = self.k
        window_sum = self._window_sum
        refractory_left = self._refractory_left
        for index, flag in enumerate(flags):
            if refractory_left > 0:
                refractory_left -= 1
                continue
            if len(window) == n:
                window_sum -= window[0]
            window.append(flag)
            if flag:
                window_sum += 1
            if window_sum >= k:
                window.clear()
                window_sum = 0
                refractory_left = self.refractory_samples
                self.detections += 1
                hits.append(index)
        self.samples_seen += len(flags)
        self._window_sum = window_sum
        self._refractory_left = refractory_left
        return hits

    def observe_trace(self, samples) -> int:
        """Feed a whole trace; return the number of detections."""
        return len(self.observe_block(samples))

    def snapshot(self) -> DetectorState:
        """Capture full detector state for later :meth:`restore`."""
        return (
            tuple(self._window),
            self._window_sum,
            self._refractory_left,
            self.detections,
            self.samples_seen,
            self.threshold,
        )

    def restore(self, state: DetectorState) -> None:
        """Roll back to a state captured by :meth:`snapshot`."""
        window, window_sum, refractory_left, detections, seen, threshold = state
        self._window.clear()
        self._window.extend(window)
        self._window_sum = window_sum
        self._refractory_left = refractory_left
        self.detections = detections
        self.samples_seen = seen
        self.threshold = threshold

    def reset(self) -> None:
        """Clear window, refractory state and counters."""
        self._window.clear()
        self._window_sum = 0
        self._refractory_left = 0
        self.detections = 0
        self.samples_seen = 0

    @property
    def exceedances_in_window(self) -> int:
        """Current number of above-threshold samples in the window.

        O(1): maintained as a running counter by the observe paths.
        """
        return self._window_sum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KofNDetector(k={self.k}, n={self.n}, "
            f"threshold={self.threshold}, detections={self.detections})"
        )
