"""The k-of-n threshold usage detector (paper section 2.1).

    "The sampling rate of each sensor is 10 times in one second.  If
    three of these 10 samples surpass a pre-defined threshold, the
    tool will be considered is using [...].  We use this mechanism to
    protect detection against accidental operation."

The detector keeps a sliding window of the last ``n`` boolean
exceedances; when at least ``k`` are set it declares usage.  A
refractory period then suppresses re-detections so one physical
handling produces one usage report.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

__all__ = ["KofNDetector"]


class KofNDetector:
    """Sliding-window k-of-n threshold detector.

    Feed samples with :meth:`observe`; it returns ``True`` exactly
    when a new usage event should be reported.  The window is cleared
    on detection, then a refractory period (in samples) keeps the
    detector quiet while the same handling continues.
    """

    def __init__(
        self,
        threshold: float,
        k: int = 3,
        n: int = 10,
        refractory_samples: int = 20,
    ) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        if refractory_samples < 0:
            raise ValueError("refractory_samples must be >= 0")
        self.threshold = float(threshold)
        self.k = k
        self.n = n
        self.refractory_samples = refractory_samples
        self._window: Deque[bool] = deque(maxlen=n)
        self._refractory_left = 0
        self.detections = 0
        self.samples_seen = 0

    def observe(self, sample: float) -> bool:
        """Process one sample; return ``True`` on a new detection."""
        self.samples_seen += 1
        if self._refractory_left > 0:
            self._refractory_left -= 1
            return False
        self._window.append(sample > self.threshold)
        if sum(self._window) >= self.k:
            self._window.clear()
            self._refractory_left = self.refractory_samples
            self.detections += 1
            return True
        return False

    def observe_trace(self, samples) -> int:
        """Feed a whole trace; return the number of detections."""
        hits = 0
        for sample in samples:
            if self.observe(float(sample)):
                hits += 1
        return hits

    def reset(self) -> None:
        """Clear window, refractory state and counters."""
        self._window.clear()
        self._refractory_left = 0
        self.detections = 0
        self.samples_seen = 0

    @property
    def exceedances_in_window(self) -> int:
        """Current number of above-threshold samples in the window."""
        return sum(self._window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KofNDetector(k={self.k}, n={self.n}, "
            f"threshold={self.threshold}, detections={self.detections})"
        )
