"""The PAVENET hardware specification (paper Table 1).

PAVENET [Saruwatari & Kashima 2005] is the wireless sensor node the
paper attaches to every tool.  This module records its specification
verbatim so the reproduction can (a) regenerate Table 1 and (b) keep
the simulated firmware honest about resource limits: the EEPROM log
and the RAM budget below are enforced by the node model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.adl import SensorType

__all__ = ["HardwareSpec", "PAVENET_SPEC", "LED_COLORS"]

#: The four LEDs of the node, by conventional colour.  The paper uses
#: green ("this tool should be used") and red ("this tool is
#: incorrectly used"); the remaining two are available to firmware.
LED_COLORS: Tuple[str, ...] = ("green", "red", "yellow", "orange")


@dataclass(frozen=True)
class HardwareSpec:
    """A sensor-node hardware description."""

    cpu: str
    ram_bytes: int
    rom_bytes: int
    wireless: str
    io: Tuple[str, ...]
    peripherals: Tuple[str, ...]
    eeprom_bytes: int
    led_count: int
    sensors: Tuple[SensorType, ...]

    def table_rows(self) -> List[Tuple[str, str]]:
        """Rows of the paper's Table 1, as (field, value) pairs."""
        return [
            ("CPU", self.cpu),
            ("RAM", f"{self.ram_bytes // 1024} KB"),
            ("ROM", f"{self.rom_bytes // 1024} KB"),
            ("Wireless", self.wireless),
            ("I/O", ", ".join(self.io)),
            (
                "Peripherals",
                ", ".join(self.peripherals)
                + f", External EEPROM({self.eeprom_bytes // 1024} KB)",
            ),
            ("Sensors", ", ".join(s.value for s in self.sensors)),
        ]


#: The PAVENET module exactly as listed in the paper's Table 1.
PAVENET_SPEC = HardwareSpec(
    cpu="Microchip PIC18LF4620",
    ram_bytes=4 * 1024,
    rom_bytes=64 * 1024,
    wireless="ChipCon CC1000",
    io=("UART", "GPIO", "I2C"),
    peripherals=(f"Four LEDs", "Real Time Clock"),
    eeprom_bytes=16 * 1024,
    led_count=4,
    sensors=(
        SensorType.ACCELEROMETER,
        SensorType.PRESSURE,
        SensorType.BRIGHTNESS,
        SensorType.TEMPERATURE,
        SensorType.MOTION,
    ),
)
