"""Batched shard simulation: one kernel, every home of the shard.

:func:`repro.fleet.home.simulate_home` runs each home on a private
:class:`~repro.sim.kernel.Simulator`, so a 50-home shard pays for 50
kernels, 50 network boots and 50 cold caches of everything the
interpreter touches per event loop.  The batched mode here loads all
homes of a shard into **one** shared kernel and lets their event
streams interleave on the common clock.

Byte-identity with the per-home path falls out of three facts:

* every home starts at t=0 and its event *times* depend only on its
  own state and its own SHA-256-derived random streams, so absolute
  timestamps match the standalone run exactly;
* relative order of any two events of the *same* home is preserved
  (sequence numbers are assigned monotonically, and interleaving
  other homes' events only creates gaps, never reordering), while
  cross-home order is irrelevant -- homes share no mutable state
  (each keeps its own bus, network, trace and streams: per-home
  event namespacing);
* each home's episodes chain and harvest *inside* the finishing
  event's callback, i.e. at the exact simulated instant the
  standalone driver loop would observe, before any same-instant
  later-sequence event has fired.

The tests cross-check report-for-report equality between the two
modes, across kernel backends and across ``--jobs``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.adls.library import ADLDefinition
from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError
from repro.fleet.home import (
    HomeRuntime,
    build_home_deployment,
    create_home_resident,
    harvest_home_report,
)
from repro.fleet.metrics import HomeReport
from repro.fleet.spec import HomeSpec
from repro.planning.store import PolicyCache
from repro.rl.batch import ShardPredictor
from repro.sim.kernel import Simulator

__all__ = ["ShardSimulator", "simulate_shard"]


class _HomeRun:
    """One home's episode chain on the shared kernel."""

    __slots__ = (
        "shard",
        "home",
        "system",
        "routine",
        "reliable",
        "compliance",
        "episodes",
        "horizon",
        "episode",
        "completed",
        "reminders_seen",
        "reminders_followed",
        "self_recoveries",
        "report",
        "profile",
        "_watchdog",
    )

    def __init__(
        self,
        shard: "ShardSimulator",
        home: HomeSpec,
        system,
        episodes: int,
        horizon: float,
        runtime: HomeRuntime,
    ) -> None:
        self.shard = shard
        self.home = home
        self.system = system
        # Interned through the shard runtime: shard-mates share one
        # routine/compliance/profile instance per distinct scalar key.
        self.routine = runtime.routine(home)
        self.reliable = runtime.reliable()
        self.compliance = runtime.compliance(home)
        self.profile = runtime.profile(home)
        self.episodes = episodes
        self.horizon = horizon
        self.episode = 0
        self.completed = 0
        self.reminders_seen = 0
        self.reminders_followed = 0
        self.self_recoveries = 0
        self.report: Optional[HomeReport] = None
        self._watchdog = None

    def begin_episode(self) -> None:
        """Start the next guided episode at the current instant."""
        system = self.system
        resident = create_home_resident(
            system,
            self.home,
            self.routine,
            self.compliance,
            self.reliable,
            self.episode,
            profile=self.profile,
        )
        process = resident.start_episode()
        deadline = system.sim.now + self.horizon

        def on_timeout() -> None:
            raise CoReDAError(
                f"home {self.home.home_id}: episode {self.episode} did "
                f"not complete within {self.horizon}s of simulated time"
            )

        self._watchdog = system.sim.schedule_at(deadline, on_timeout)

        def on_finished(_result) -> None:
            self._watchdog.cancel()
            self._watchdog = None
            # Same order as the standalone episode driver: planning
            # first, then sensing, at the completion instant (before
            # any same-instant later-sequence event fires).
            system.planning.reset_episode()
            system.sensing.reset_episode()
            outcome = resident.outcome
            assert outcome is not None
            self.completed += int(outcome.completed)
            self.reminders_seen += outcome.reminders_seen
            self.reminders_followed += outcome.reminders_followed
            self.self_recoveries += outcome.self_recoveries
            self.episode += 1
            if self.episode < self.episodes:
                self.begin_episode()
            else:
                self._harvest()

        process.finished.subscribe(on_finished)

    def _harvest(self) -> None:
        self.report = harvest_home_report(
            self.system,
            self.home,
            self.episodes,
            self.completed,
            self.reminders_seen,
            self.reminders_followed,
            self.self_recoveries,
        )
        # The home is done; stop its sensor network so its recurring
        # block events stop burning shared-kernel cycles while the
        # shard's slower homes finish.  The report is already
        # captured by value, so late state changes cannot leak in.
        self.system.network.stop()
        self.shard._finished(self)


class ShardSimulator:
    """All homes of one fleet shard on a single event kernel.

    Build it, :meth:`load` every home, then :meth:`run`.  Reports
    come back in load order regardless of which home finishes first,
    so the shard's Welford merge order -- and therefore the fleet
    metrics -- match the per-home path byte for byte.
    """

    #: Simulated seconds per fused ``run_until`` segment of :meth:`run`.
    #: Coarse enough that the kernel's single-walk fast path does the
    #: driving (no per-event ``peek``/``step`` round trips), fine
    #: enough that the driver notices all homes finishing promptly.
    _CHUNK = 600.0

    def __init__(
        self,
        config: CoReDAConfig,
        runtime: Optional[HomeRuntime] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator(
            backend=config.sim.kernel_backend,
            bucket_width=config.sim.bucket_width,
        )
        self._runs: List[_HomeRun] = []
        self._active = 0
        self._runtime = runtime
        self._predictors: dict = {}

    def load(
        self,
        definition: ADLDefinition,
        home: HomeSpec,
        episodes: int,
        training_episodes: int,
        cache: Optional[PolicyCache],
        horizon: float = 3600.0,
    ) -> None:
        """Deploy one home onto the shared kernel and queue episode 0."""
        runtime = self._runtime
        if runtime is None:
            runtime = self._runtime = HomeRuntime(
                definition, self.config, training_episodes, cache
            )
        predictor = self._resolve_predictor(runtime, home)
        system = build_home_deployment(
            definition, home, self.config, training_episodes, cache,
            sim=self.sim, predictor=predictor,
        )
        system.start()
        run = _HomeRun(self, home, system, episodes, horizon, runtime)
        self._runs.append(run)
        self._active += 1
        run.begin_episode()

    def _resolve_predictor(self, runtime: HomeRuntime, home: HomeSpec):
        """One policy restore per distinct training per shard.

        The runtime memoizes the decoded policy per training key (one
        disk/shared-memory restore per shard, whatever the plane) and
        keeps the hit/miss counters shard-layout-independent: memoized
        reuse still counts as a cache hit, because the policy *was*
        served from that cache entry.

        Under the batched inference backend the shared predictor is
        additionally wrapped in a :class:`~repro.rl.batch.
        ShardPredictor`: its full greedy-policy table is precomputed
        here, once per distinct training per shard, so every per-step
        prediction inside the shared kernel is a single array index
        (byte-identical answers; see docs/architecture.md).
        """
        predictor = runtime.predictor(home)
        if self.config.planning.infer_backend != "batched":
            return predictor
        key = home.training_key
        wrapped = self._predictors.get(key)
        if wrapped is None:
            wrapped = ShardPredictor(predictor).precompute()
            self._predictors[key] = wrapped
        return wrapped

    def _finished(self, run: _HomeRun) -> None:
        self._active -= 1

    def run(self) -> List[HomeReport]:
        """Drive the shared kernel until every loaded home reports.

        Advances in coarse :attr:`_CHUNK` segments through the
        kernel's fused ``run_until`` loop.  Events of already-
        finished homes that straggle inside a segment are harmless:
        their reports were captured by value at harvest time.
        """
        sim = self.sim
        while self._active > 0:
            if sim.peek() is None:
                unfinished = [
                    run.home.home_id
                    for run in self._runs
                    if run.report is None
                ]
                raise CoReDAError(
                    f"shard kernel drained with unfinished homes: "
                    f"{unfinished}"
                )
            sim.run_until(sim.now + self._CHUNK)
        reports = []
        for run in self._runs:
            assert run.report is not None
            reports.append(run.report)
        return reports


def simulate_shard(
    definition: ADLDefinition,
    homes: Sequence[HomeSpec],
    config: CoReDAConfig,
    episodes: int,
    training_episodes: int,
    cache: Optional[PolicyCache],
    horizon: float = 3600.0,
    runtime: Optional[HomeRuntime] = None,
) -> List[HomeReport]:
    """Batched counterpart of mapping ``simulate_home`` over ``homes``.

    Returns the homes' reports in input order; byte-identical to the
    per-home path (see the module docstring for why).  ``runtime``
    lends a caller-owned :class:`~repro.fleet.home.HomeRuntime` (the
    fleet executor builds one per shard cell, wired to the selected
    policy plane); without one a private runtime is created.
    """
    shard = ShardSimulator(config, runtime=runtime)
    for home in homes:
        shard.load(
            definition, home, episodes, training_episodes, cache, horizon
        )
    return shard.run()
