"""Simulate one resident-home from its :class:`~repro.fleet.spec.HomeSpec`.

The fleet's innermost loop: rebuild the home's deployment (one
:class:`~repro.core.system.CoReDA` per home, seeded from the home's
SHA-256-derived seed), resolve the trained policy through the shared
:class:`~repro.planning.store.PolicyCache`, run the home's guided
episodes, and distill the outcome into a single
:class:`~repro.fleet.metrics.HomeReport`.  Everything here is a pure
function of the spec -- a home simulates identically whichever shard
or worker process it lands in, **and** whether it runs on its own
kernel (this module) or batched with its shard-mates into one shared
kernel (:mod:`repro.fleet.shard`); the two paths share the
deployment/harvest helpers below so they cannot drift apart.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.adls.library import ADLDefinition
from repro.core.adl import ReminderLevel, Routine
from repro.core.config import CoReDAConfig
from repro.core.system import CoReDA
from repro.fleet.metrics import HomeReport
from repro.fleet.spec import HomeSpec
from repro.planning.shm import arena_artifact
from repro.planning.store import (
    PolicyCache,
    train_routine_cached,
    training_cache_key,
    training_from_artifact,
)
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile
from repro.sim.kernel import Simulator

__all__ = [
    "HomeRuntime",
    "simulate_home",
    "train_home_policy",
    "resolve_home_predictor",
    "build_home_deployment",
    "home_compliance",
    "reliable_handling",
    "create_home_resident",
    "harvest_home_report",
]


class HomeRuntime:
    """Per-shard interning context: N homes share one decoded instance.

    Everything a home needs that is a pure function of its scalar spec
    -- the routine, the compliance model, the dementia profile, the
    reliable handling overrides and above all the restored policy
    predictor -- used to be rebuilt per home (and the profile per
    *episode*).  All of these objects are immutable or stateless, so
    homes can share them the way :mod:`repro.rl.dense` interns Q rows;
    the runtime memoizes each by its scalar key.

    ``policy_plane`` selects how the trained policy is restored:

    * ``"json"`` (the byte-identity reference): the canonical path
      through :func:`train_routine_cached` and the JSON document;
    * ``"shm"`` (the zero-copy plane): the shared-memory arena first
      (:func:`repro.planning.shm.arena_artifact`), then the mmap'd
      binary sidecar, then the JSON fallback.  Every tier serves the
      same training, so results are byte-identical across planes, and
      each successful restore counts exactly one cache hit -- the
      hit/miss accounting cannot depend on the plane or the shard
      layout.
    """

    __slots__ = (
        "definition",
        "config",
        "training_episodes",
        "cache",
        "policy_plane",
        "_routines",
        "_reliable",
        "_compliance",
        "_profiles",
        "_predictors",
        "_cache_keys",
    )

    def __init__(
        self,
        definition: ADLDefinition,
        config: CoReDAConfig,
        training_episodes: int,
        cache: Optional[PolicyCache] = None,
        policy_plane: str = "json",
    ) -> None:
        if policy_plane not in ("shm", "json"):
            raise ValueError(f"unknown policy plane {policy_plane!r}")
        self.definition = definition
        self.config = config
        self.training_episodes = training_episodes
        self.cache = cache
        self.policy_plane = policy_plane
        self._routines: Dict[Tuple[int, ...], Routine] = {}
        self._reliable: Optional[dict] = None
        self._compliance: Dict[Tuple[float, float, float], ComplianceModel] = {}
        self._profiles: Dict[float, DementiaProfile] = {}
        self._predictors: dict = {}
        self._cache_keys: Dict[tuple, str] = {}

    def routine(self, home: HomeSpec) -> Routine:
        """The home's routine (immutable, shared across homes)."""
        key = tuple(home.routine_ids)
        routine = self._routines.get(key)
        if routine is None:
            routine = Routine(self.definition.adl, list(key))
            self._routines[key] = routine
        return routine

    def reliable(self) -> dict:
        """The shared handling-override dict (consumed read-only)."""
        if self._reliable is None:
            self._reliable = reliable_handling(self.definition)
        return self._reliable

    def compliance(self, home: HomeSpec) -> ComplianceModel:
        """The home's compliance model (frozen, stateless)."""
        key = (home.minimal_response, home.specific_response, home.delay_mean)
        model = self._compliance.get(key)
        if model is None:
            model = home_compliance(home)
            self._compliance[key] = model
        return model

    def profile(self, home: HomeSpec) -> DementiaProfile:
        """The home's dementia profile (frozen; was rebuilt per episode)."""
        profile = self._profiles.get(home.severity)
        if profile is None:
            profile = DementiaProfile.from_severity(home.severity)
            self._profiles[home.severity] = profile
        return profile

    def cache_key(self, home: HomeSpec) -> str:
        """The home's content-addressed training key (memoized)."""
        key = self._cache_keys.get(home.training_key)
        if key is None:
            key = training_cache_key(
                self.definition.adl.name,
                list(home.routine_ids),
                self.config.planning,
                home.train_seed,
                self.training_episodes,
            )
            self._cache_keys[home.training_key] = key
        return key

    def predictor(self, home: HomeSpec):
        """The home's restored policy, decoded once per training key.

        Memoized reuse still counts as a cache hit -- the policy *was*
        served from that cache entry, and the counters must not depend
        on how homes were grouped (see
        :meth:`~repro.planning.store.PolicyCache.stats`).
        """
        key = home.training_key
        predictor = self._predictors.get(key)
        if predictor is not None:
            if self.cache is not None:
                self.cache.hits += 1
            return predictor
        predictor = self._resolve(home)
        self._predictors[key] = predictor
        return predictor

    def _resolve(self, home: HomeSpec):
        cache = self.cache
        adl = self.definition.adl
        if self.policy_plane == "shm":
            key = self.cache_key(home)
            artifact = arena_artifact(key)
            if artifact is not None and artifact.matches(adl):
                if cache is not None:
                    cache.hits += 1
                return training_from_artifact(
                    artifact, self.config.planning
                ).predictor(adl)
            if cache is not None:
                artifact = cache.get_artifact(key, adl)
                if artifact is not None:
                    return training_from_artifact(
                        artifact, self.config.planning
                    ).predictor(adl)
        return resolve_home_predictor(
            self.definition, home, self.config, self.training_episodes, cache
        )


def train_home_policy(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
):
    """Resolve the home's trained policy via the content cache.

    Homes sharing (ADL, routine, planning config, seed class) resolve
    the same key, so only the first resolver trains; the executor
    pre-warms the cache with one wave over the distinct trainings to
    make that first resolver a dedicated cell rather than a race.
    """
    return train_routine_cached(
        definition.adl,
        list(home.routine_ids),
        config.planning,
        home.train_seed,
        training_episodes,
        cache=cache,
    )


def resolve_home_predictor(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
):
    """The home's deployed policy, restored through the cache.

    The predictor is a read-only greedy lookup over the trained
    Q-table, so callers may share one instance across every home
    with the same :attr:`~repro.fleet.spec.HomeSpec.training_key`
    (the batched shard mode does) without perturbing a single byte.
    """
    cached = train_home_policy(
        definition, home, config, training_episodes, cache
    )
    return cached.predictor(definition.adl)


def build_home_deployment(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
    sim: Optional[Simulator] = None,
    predictor=None,
) -> CoReDA:
    """One home's live deployment, policy resolved and deployed.

    ``sim`` shares a kernel across homes (the batched shard mode);
    left ``None``, the home gets a private kernel.  Either way the
    home's random streams derive from its own SHA-256 seed, so the
    event *content* is identical -- only the queue it shares differs.
    ``predictor`` skips the per-home cache restore when the caller
    already holds the home's policy (see
    :func:`resolve_home_predictor`).
    """
    if predictor is None:
        predictor = resolve_home_predictor(
            definition, home, config, training_episodes, cache
        )
    system = CoReDA(definition, config.with_seed(home.seed), sim=sim)
    system.deploy_predictor(predictor)
    return system


def home_compliance(home: HomeSpec) -> ComplianceModel:
    """The home's compliance model, rebuilt from its scalar spec."""
    return ComplianceModel(
        minimal_response=home.minimal_response,
        specific_response=home.specific_response,
        delay_mean=home.delay_mean,
        delay_sd=1.0,
    )


def reliable_handling(definition: ADLDefinition) -> dict:
    """Per-step handling durations long enough to register reliably."""
    return {
        step.step_id: max(step.handling_duration, 5.0)
        for step in definition.adl.steps
    }


def create_home_resident(
    system: CoReDA,
    home: HomeSpec,
    routine: Routine,
    compliance: ComplianceModel,
    reliable: dict,
    episode: int,
    profile: Optional[DementiaProfile] = None,
):
    """The resident for one of the home's guided episodes.

    ``profile`` shares one frozen :class:`DementiaProfile` across
    episodes (and homes of the same severity, via
    :class:`HomeRuntime`); left ``None``, the profile is rebuilt from
    the home's severity -- the two are value-equal by construction.
    """
    if profile is None:
        profile = DementiaProfile.from_severity(home.severity)
    return system.create_resident(
        routine=routine,
        dementia=profile,
        compliance=compliance,
        handling_overrides=reliable,
        error_use_duration=5.0,
        name=f"home-{home.home_id}.{episode}",
    )


def harvest_home_report(
    system: CoReDA,
    home: HomeSpec,
    episodes: int,
    completed: int,
    reminders_seen: int,
    reminders_followed: int,
    self_recoveries: int,
) -> HomeReport:
    """Distill a finished home's session into its report.

    Called at the simulated instant the home's last episode completes
    -- both execution modes harvest the same state, so the reports
    are byte-identical between them.
    """
    session = system.session
    minimal = sum(
        1
        for reminder in session.reminders
        if reminder.level is ReminderLevel.MINIMAL
    )
    return HomeReport(
        home_id=home.home_id,
        severity=home.severity,
        episodes=episodes,
        completed=completed,
        reminders=len(session.reminders),
        minimal_reminders=minimal,
        specific_reminders=len(session.reminders) - minimal,
        praises=session.praises,
        caregiver_alerts=system.reminding.caregiver_alerts,
        errors=system.trace.count("resident.error"),
        self_recoveries=self_recoveries,
        reminders_seen=reminders_seen,
        reminders_followed=reminders_followed,
    )


def simulate_home(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    episodes: int,
    training_episodes: int,
    cache: Optional[PolicyCache],
    horizon: float = 3600.0,
    runtime: Optional[HomeRuntime] = None,
) -> HomeReport:
    """Run one home's guided episodes on a private kernel.

    ``runtime`` lends a shard-wide :class:`HomeRuntime` so shard-mates
    share decoded policies and interned spec objects; without one, a
    private runtime is built (same values, nothing shared).
    """
    if runtime is None:
        runtime = HomeRuntime(definition, config, training_episodes, cache)
    system = build_home_deployment(
        definition, home, config, training_episodes, cache,
        predictor=runtime.predictor(home),
    )
    routine = runtime.routine(home)
    reliable = runtime.reliable()
    compliance = runtime.compliance(home)
    profile = runtime.profile(home)
    completed = 0
    reminders_seen = 0
    reminders_followed = 0
    self_recoveries = 0
    for episode in range(episodes):
        resident = create_home_resident(
            system, home, routine, compliance, reliable, episode,
            profile=profile,
        )
        outcome = system.run_episode(resident, horizon=horizon)
        completed += int(outcome.completed)
        reminders_seen += outcome.reminders_seen
        reminders_followed += outcome.reminders_followed
        self_recoveries += outcome.self_recoveries
    return harvest_home_report(
        system,
        home,
        episodes,
        completed,
        reminders_seen,
        reminders_followed,
        self_recoveries,
    )
