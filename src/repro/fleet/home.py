"""Simulate one resident-home from its :class:`~repro.fleet.spec.HomeSpec`.

The fleet's innermost loop: rebuild the home's deployment (one
:class:`~repro.core.system.CoReDA` per home, seeded from the home's
SHA-256-derived seed), resolve the trained policy through the shared
:class:`~repro.planning.store.PolicyCache`, run the home's guided
episodes, and distill the outcome into a single
:class:`~repro.fleet.metrics.HomeReport`.  Everything here is a pure
function of the spec -- a home simulates identically whichever shard
or worker process it lands in, **and** whether it runs on its own
kernel (this module) or batched with its shard-mates into one shared
kernel (:mod:`repro.fleet.shard`); the two paths share the
deployment/harvest helpers below so they cannot drift apart.
"""

from __future__ import annotations

from typing import Optional

from repro.adls.library import ADLDefinition
from repro.core.adl import ReminderLevel, Routine
from repro.core.config import CoReDAConfig
from repro.core.system import CoReDA
from repro.fleet.metrics import HomeReport
from repro.fleet.spec import HomeSpec
from repro.planning.store import PolicyCache, train_routine_cached
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile
from repro.sim.kernel import Simulator

__all__ = [
    "simulate_home",
    "train_home_policy",
    "resolve_home_predictor",
    "build_home_deployment",
    "home_compliance",
    "reliable_handling",
    "create_home_resident",
    "harvest_home_report",
]


def train_home_policy(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
):
    """Resolve the home's trained policy via the content cache.

    Homes sharing (ADL, routine, planning config, seed class) resolve
    the same key, so only the first resolver trains; the executor
    pre-warms the cache with one wave over the distinct trainings to
    make that first resolver a dedicated cell rather than a race.
    """
    return train_routine_cached(
        definition.adl,
        list(home.routine_ids),
        config.planning,
        home.train_seed,
        training_episodes,
        cache=cache,
    )


def resolve_home_predictor(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
):
    """The home's deployed policy, restored through the cache.

    The predictor is a read-only greedy lookup over the trained
    Q-table, so callers may share one instance across every home
    with the same :attr:`~repro.fleet.spec.HomeSpec.training_key`
    (the batched shard mode does) without perturbing a single byte.
    """
    cached = train_home_policy(
        definition, home, config, training_episodes, cache
    )
    return cached.predictor(definition.adl)


def build_home_deployment(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
    sim: Optional[Simulator] = None,
    predictor=None,
) -> CoReDA:
    """One home's live deployment, policy resolved and deployed.

    ``sim`` shares a kernel across homes (the batched shard mode);
    left ``None``, the home gets a private kernel.  Either way the
    home's random streams derive from its own SHA-256 seed, so the
    event *content* is identical -- only the queue it shares differs.
    ``predictor`` skips the per-home cache restore when the caller
    already holds the home's policy (see
    :func:`resolve_home_predictor`).
    """
    if predictor is None:
        predictor = resolve_home_predictor(
            definition, home, config, training_episodes, cache
        )
    system = CoReDA(definition, config.with_seed(home.seed), sim=sim)
    system.deploy_predictor(predictor)
    return system


def home_compliance(home: HomeSpec) -> ComplianceModel:
    """The home's compliance model, rebuilt from its scalar spec."""
    return ComplianceModel(
        minimal_response=home.minimal_response,
        specific_response=home.specific_response,
        delay_mean=home.delay_mean,
        delay_sd=1.0,
    )


def reliable_handling(definition: ADLDefinition) -> dict:
    """Per-step handling durations long enough to register reliably."""
    return {
        step.step_id: max(step.handling_duration, 5.0)
        for step in definition.adl.steps
    }


def create_home_resident(
    system: CoReDA,
    home: HomeSpec,
    routine: Routine,
    compliance: ComplianceModel,
    reliable: dict,
    episode: int,
):
    """The resident for one of the home's guided episodes."""
    return system.create_resident(
        routine=routine,
        dementia=DementiaProfile.from_severity(home.severity),
        compliance=compliance,
        handling_overrides=reliable,
        error_use_duration=5.0,
        name=f"home-{home.home_id}.{episode}",
    )


def harvest_home_report(
    system: CoReDA,
    home: HomeSpec,
    episodes: int,
    completed: int,
    reminders_seen: int,
    reminders_followed: int,
    self_recoveries: int,
) -> HomeReport:
    """Distill a finished home's session into its report.

    Called at the simulated instant the home's last episode completes
    -- both execution modes harvest the same state, so the reports
    are byte-identical between them.
    """
    session = system.session
    minimal = sum(
        1
        for reminder in session.reminders
        if reminder.level is ReminderLevel.MINIMAL
    )
    return HomeReport(
        home_id=home.home_id,
        severity=home.severity,
        episodes=episodes,
        completed=completed,
        reminders=len(session.reminders),
        minimal_reminders=minimal,
        specific_reminders=len(session.reminders) - minimal,
        praises=session.praises,
        caregiver_alerts=system.reminding.caregiver_alerts,
        errors=system.trace.count("resident.error"),
        self_recoveries=self_recoveries,
        reminders_seen=reminders_seen,
        reminders_followed=reminders_followed,
    )


def simulate_home(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    episodes: int,
    training_episodes: int,
    cache: Optional[PolicyCache],
    horizon: float = 3600.0,
) -> HomeReport:
    """Run one home's guided episodes on a private kernel."""
    system = build_home_deployment(
        definition, home, config, training_episodes, cache
    )
    routine = Routine(definition.adl, list(home.routine_ids))
    reliable = reliable_handling(definition)
    compliance = home_compliance(home)
    completed = 0
    reminders_seen = 0
    reminders_followed = 0
    self_recoveries = 0
    for episode in range(episodes):
        resident = create_home_resident(
            system, home, routine, compliance, reliable, episode
        )
        outcome = system.run_episode(resident, horizon=horizon)
        completed += int(outcome.completed)
        reminders_seen += outcome.reminders_seen
        reminders_followed += outcome.reminders_followed
        self_recoveries += outcome.self_recoveries
    return harvest_home_report(
        system,
        home,
        episodes,
        completed,
        reminders_seen,
        reminders_followed,
        self_recoveries,
    )
