"""Simulate one resident-home from its :class:`~repro.fleet.spec.HomeSpec`.

The fleet's innermost loop: rebuild the home's deployment (one
:class:`~repro.core.system.CoReDA` per home, seeded from the home's
SHA-256-derived seed), resolve the trained policy through the shared
:class:`~repro.planning.store.PolicyCache`, run the home's guided
episodes, and distill the outcome into a single
:class:`~repro.fleet.metrics.HomeReport`.  Everything here is a pure
function of the spec -- a home simulates identically whichever shard
or worker process it lands in.
"""

from __future__ import annotations

from typing import Optional

from repro.adls.library import ADLDefinition
from repro.core.adl import ReminderLevel, Routine
from repro.core.config import CoReDAConfig
from repro.core.system import CoReDA
from repro.fleet.metrics import HomeReport
from repro.fleet.spec import HomeSpec
from repro.planning.store import PolicyCache, train_routine_cached
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile

__all__ = ["simulate_home", "train_home_policy"]


def train_home_policy(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache: Optional[PolicyCache],
):
    """Resolve the home's trained policy via the content cache.

    Homes sharing (ADL, routine, planning config, seed class) resolve
    the same key, so only the first resolver trains; the executor
    pre-warms the cache with one wave over the distinct trainings to
    make that first resolver a dedicated cell rather than a race.
    """
    return train_routine_cached(
        definition.adl,
        list(home.routine_ids),
        config.planning,
        home.train_seed,
        training_episodes,
        cache=cache,
    )


def simulate_home(
    definition: ADLDefinition,
    home: HomeSpec,
    config: CoReDAConfig,
    episodes: int,
    training_episodes: int,
    cache: Optional[PolicyCache],
    horizon: float = 3600.0,
) -> HomeReport:
    """Run one home's guided episodes; return its distilled report."""
    cached = train_home_policy(
        definition, home, config, training_episodes, cache
    )
    system = CoReDA(definition, config.with_seed(home.seed))
    system.deploy_predictor(cached.predictor(definition.adl))
    routine = Routine(definition.adl, list(home.routine_ids))
    reliable = {
        step.step_id: max(step.handling_duration, 5.0)
        for step in definition.adl.steps
    }
    compliance = ComplianceModel(
        minimal_response=home.minimal_response,
        specific_response=home.specific_response,
        delay_mean=home.delay_mean,
        delay_sd=1.0,
    )
    completed = 0
    reminders_seen = 0
    reminders_followed = 0
    self_recoveries = 0
    for episode in range(episodes):
        resident = system.create_resident(
            routine=routine,
            dementia=DementiaProfile.from_severity(home.severity),
            compliance=compliance,
            handling_overrides=reliable,
            error_use_duration=5.0,
            name=f"home-{home.home_id}.{episode}",
        )
        outcome = system.run_episode(resident, horizon=horizon)
        completed += int(outcome.completed)
        reminders_seen += outcome.reminders_seen
        reminders_followed += outcome.reminders_followed
        self_recoveries += outcome.self_recoveries
    session = system.session
    minimal = sum(
        1
        for reminder in session.reminders
        if reminder.level is ReminderLevel.MINIMAL
    )
    return HomeReport(
        home_id=home.home_id,
        severity=home.severity,
        episodes=episodes,
        completed=completed,
        reminders=len(session.reminders),
        minimal_reminders=minimal,
        specific_reminders=len(session.reminders) - minimal,
        praises=session.praises,
        caregiver_alerts=system.reminding.caregiver_alerts,
        errors=system.trace.count("resident.error"),
        self_recoveries=self_recoveries,
        reminders_seen=reminders_seen,
        reminders_followed=reminders_followed,
    )
