"""Fleet-scale population simulation: the dense-network workload.

The paper deploys one reminder system per resident; the related
dense-network and AIoT care platforms (arXiv:1510.04240,
arXiv:2207.00804) run thousands of such homes against one backend.
``repro.fleet`` simulates that workload deterministically: a
:class:`~repro.fleet.spec.FleetSpec` expands a synthetic cohort into
per-home cells with SHA-256-derived seeds, the executor shards them
over a persistent worker pool with bounded-window submission, trained
policies are shared through the content-addressed
:class:`~repro.planning.store.PolicyCache`, and caregiver metrics
stream through O(1)-memory reducers.  The whole pipeline inherits the
repo's determinism contract: byte-identical fleet metrics at any
``--jobs``.
"""

from repro.fleet.executor import FleetResult, run_fleet
from repro.fleet.home import simulate_home
from repro.fleet.metrics import FleetMetrics, HomeReport, Welford
from repro.fleet.shard import ShardSimulator, simulate_shard
from repro.fleet.spec import FleetSpec, HomeSpec, distinct_trainings

__all__ = [
    "FleetMetrics",
    "FleetResult",
    "FleetSpec",
    "HomeReport",
    "HomeSpec",
    "ShardSimulator",
    "Welford",
    "distinct_trainings",
    "run_fleet",
    "simulate_home",
    "simulate_shard",
]
