"""The sharded fleet executor: thousands of homes, one care platform.

Execution happens in two waves over one persistent
:class:`~repro.evalx.parallel.WorkerPool`:

1. **Train** -- one cell per *distinct* training (ADL, routine, seed
   class), populating the content-addressed
   :class:`~repro.planning.store.PolicyCache` on disk.  A 10k-home
   fleet with seven routines and four seed classes trains 28
   policies, not 10k.
2. **Simulate** -- one cell per shard of ``shard_size`` homes.  Every
   home resolves its policy with a cache hit, runs its guided
   episodes, and folds into the shard's streaming
   :class:`~repro.fleet.metrics.FleetMetrics` accumulator; only that
   accumulator (plus the worker-side cache hit/miss counters) crosses
   back to the parent.

Wave 2 has two execution modes.  The default **batched** mode runs
every home of a shard on one shared event kernel
(:mod:`repro.fleet.shard`); ``batch_homes=False`` falls back to one
private kernel per home.  The two are byte-identical -- the mode is a
speed knob, not a semantics knob -- and the tests cross-check them.

Both waves go through :func:`repro.evalx.parallel.run_cells`, so they
inherit its ordered-merge contract and bounded-window submission: the
fleet result is byte-identical at any ``--jobs``, and the parent
holds O(shards) futures and O(1) metrics, never O(homes) reports.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adls.library import ADLDefinition, default_registry
from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError
from repro.evalx.parallel import Cell, WorkerPool, run_cells
from repro.fleet.home import HomeRuntime, simulate_home, train_home_policy
from repro.fleet.metrics import FleetMetrics
from repro.fleet.shard import simulate_shard
from repro.fleet.spec import FleetSpec, HomeSpec, distinct_trainings
from repro.planning.action import action_space
from repro.planning.binary import pack_policy_artifact, read_policy_artifact
from repro.planning.shm import (
    PolicyArena,
    activate_local_arena,
    deactivate_local_arena,
    install_worker_registry,
)
from repro.planning.store import (
    ARTIFACT_SUFFIX,
    PolicyCache,
    training_cache_key,
)

__all__ = ["FleetResult", "run_fleet"]

#: Distinguishes concurrent fleet runs within one parent process --
#: arena segment names derive from (pid, run sequence, cache key).
_ARENA_SEQUENCE = itertools.count()


@dataclass
class FleetResult:
    """One fleet run's aggregate outcome."""

    spec: FleetSpec
    metrics: FleetMetrics
    shards: int
    distinct_trainings: int

    def to_dict(self) -> dict:
        """JSON-ready; byte-equal dicts certify byte-equal fleets."""
        return {
            "adl": self.spec.adl_name,
            "homes": self.spec.homes,
            "seed": self.spec.seed,
            "episodes_per_home": self.spec.episodes_per_home,
            "seed_classes": self.spec.seed_classes,
            "shards": self.shards,
            "distinct_trainings": self.distinct_trainings,
            "metrics": self.metrics.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        header = (
            f"Fleet — {self.spec.adl_name}, seed {self.spec.seed}: "
            f"{self.spec.homes} homes in {self.shards} shards, "
            f"{self.distinct_trainings} distinct trainings"
        )
        return header + "\n\n" + self.metrics.to_text()


def _train_cell(
    adl_name: str,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache_dir: str,
) -> Tuple[int, int]:
    """Wave-1 worker: train one distinct routine into the cache."""
    definition = default_registry().get(adl_name)
    cache = PolicyCache(cache_dir)
    train_home_policy(definition, home, config, training_episodes, cache)
    return cache.stats()


def _shard_cell(
    adl_name: str,
    homes: Tuple[HomeSpec, ...],
    config: CoReDAConfig,
    episodes: int,
    training_episodes: int,
    cache_dir: str,
    batch_homes: bool,
    policy_plane: str,
) -> Tuple[FleetMetrics, int, int]:
    """Wave-2 worker: simulate one shard of homes.

    Returns the shard's streaming accumulator **and** the worker-side
    cache counters -- the counters are per-process, so without this
    the parent would report zero hits for every parallel run.

    The shard's :class:`~repro.fleet.home.HomeRuntime` carries the
    policy plane: ``"shm"`` resolves policies through the shared-
    memory arena installed by the pool initializer (falling back to
    the mmap'd sidecar, then JSON), ``"json"`` is the byte-identity
    reference path.
    """
    definition = default_registry().get(adl_name)
    cache = PolicyCache(cache_dir)
    runtime = HomeRuntime(
        definition, config, training_episodes, cache,
        policy_plane=policy_plane,
    )
    metrics = FleetMetrics()
    if batch_homes:
        for report in simulate_shard(
            definition, homes, config, episodes, training_episodes, cache,
            runtime=runtime,
        ):
            metrics.add_home(report)
    else:
        for home in homes:
            metrics.add_home(
                simulate_home(
                    definition, home, config, episodes, training_episodes,
                    cache, runtime=runtime,
                )
            )
    hits, misses = cache.stats()
    return metrics, hits, misses


def _fleet_cache_keys(
    definition: ADLDefinition,
    representatives: Iterable[HomeSpec],
    config: CoReDAConfig,
    training_episodes: int,
) -> List[str]:
    """The content-addressed cache key of every distinct training."""
    return [
        training_cache_key(
            definition.adl.name,
            list(home.routine_ids),
            config.planning,
            home.train_seed,
            training_episodes,
        )
        for home in representatives
    ]


def _publish_policies(
    arena: PolicyArena,
    cache_root: str,
    keys: Iterable[str],
    definition: ADLDefinition,
) -> None:
    """Publish each trained policy's packed artifact into the arena.

    Prefers the binary sidecar wave 1 wrote (validated before
    publishing); a missing or undecodable sidecar is re-packed from
    the canonical JSON document.  A key that cannot be packed at all
    is simply not published -- the workers fall back to JSON for it,
    trading speed, never correctness.
    """
    root = Path(cache_root)
    for key in keys:
        payload: Optional[bytes] = None
        try:
            payload = (root / f"{key}{ARTIFACT_SUFFIX}").read_bytes()
            read_policy_artifact(payload)
        except (OSError, CoReDAError):
            payload = None
        if payload is None:
            try:
                document = json.loads(
                    (root / f"{key}.json").read_text(encoding="utf-8")
                )
                payload = pack_policy_artifact(
                    document, action_space(definition.adl)
                )
            except (OSError, ValueError, CoReDAError):
                continue
        arena.publish(key, payload)


def run_fleet(
    spec: FleetSpec,
    jobs: int = 1,
    config: Optional[CoReDAConfig] = None,
    cache_dir: Optional[str] = None,
    window: Optional[int] = None,
    batch_homes: bool = True,
    policy_plane: str = "shm",
) -> FleetResult:
    """Run a whole fleet; byte-identical result at any ``jobs``.

    ``cache_dir`` shares trained policies across runs (and with the
    ``repro report`` cache); without it a private cache directory is
    created for the run and removed afterwards -- policy sharing
    *within* the fleet works either way.  ``batch_homes`` selects the
    batched shard kernel (default) or the per-home reference path;
    both produce the same result byte for byte.

    ``policy_plane`` selects how wave-2 workers restore trained
    policies: ``"shm"`` (default) publishes each distinct training's
    binary artifact into a shared-memory arena once and lets every
    worker serve it zero-copy; ``"json"`` is the reference path
    through per-worker JSON decoding.  The plane is a speed knob, not
    a semantics knob -- metrics and cache accounting are byte-
    identical either way, and the tests pin both.
    """
    if policy_plane not in ("shm", "json"):
        raise CoReDAError(f"unknown policy plane {policy_plane!r}")
    definition = default_registry().get(spec.adl_name)
    if config is None:
        config = CoReDAConfig(seed=spec.seed)
    homes = spec.expand(definition)
    shards = spec.shards(homes)
    representatives = distinct_trainings(homes)
    own_cache = cache_dir is None
    if own_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-fleet-cache-")
    metrics = FleetMetrics()
    arena: Optional[PolicyArena] = None
    pool_kwargs: Dict[str, object] = {}
    cache_keys: List[str] = []
    if policy_plane == "shm":
        cache_keys = _fleet_cache_keys(
            definition, representatives, config, spec.training_episodes
        )
        arena = PolicyArena(
            tag=f"{os.getpid()}.{next(_ARENA_SEQUENCE)}"
        )
        # Segment names are deterministic in the cache keys, so the
        # worker registry exists before wave 1 trains anything and
        # rides in the pool initializer -- cell payloads stay scalar.
        pool_kwargs = {
            "initializer": install_worker_registry,
            "initargs": (
                {key: arena.segment_name(key) for key in cache_keys},
            ),
        }
    try:
        with WorkerPool(jobs, **pool_kwargs) as pool:
            train_cells = [
                Cell(
                    _train_cell,
                    (
                        spec.adl_name,
                        home,
                        config,
                        spec.training_episodes,
                        cache_dir,
                    ),
                    label=f"fleet.train[{index}]",
                )
                for index, home in enumerate(representatives)
            ]
            train_stats, _ = run_cells(
                train_cells, jobs=jobs, window=window, pool=pool
            )
            if arena is not None:
                _publish_policies(arena, cache_dir, cache_keys, definition)
                activate_local_arena(arena)
            shard_cells = [
                Cell(
                    _shard_cell,
                    (
                        spec.adl_name,
                        shard,
                        config,
                        spec.episodes_per_home,
                        spec.training_episodes,
                        cache_dir,
                        batch_homes,
                        policy_plane,
                    ),
                    label=f"fleet.shard[{index}]",
                )
                for index, shard in enumerate(shards)
            ]
            shard_results, _ = run_cells(
                shard_cells, jobs=jobs, window=window, pool=pool
            )
    finally:
        if arena is not None:
            deactivate_local_arena(arena)
            arena.close()
        if own_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)
    for hits, misses in train_stats:
        metrics.add_cache_stats(hits, misses)
    for shard_metrics, hits, misses in shard_results:
        metrics.merge(shard_metrics)
        metrics.add_cache_stats(hits, misses)
    return FleetResult(
        spec=spec,
        metrics=metrics,
        shards=len(shards),
        distinct_trainings=len(representatives),
    )
