"""The sharded fleet executor: thousands of homes, one care platform.

Execution happens in two waves over one persistent
:class:`~repro.evalx.parallel.WorkerPool`:

1. **Train** -- one cell per *distinct* training (ADL, routine, seed
   class), populating the content-addressed
   :class:`~repro.planning.store.PolicyCache` on disk.  A 10k-home
   fleet with seven routines and four seed classes trains 28
   policies, not 10k.
2. **Simulate** -- one cell per shard of ``shard_size`` homes.  Every
   home resolves its policy with a cache hit, runs its guided
   episodes, and folds into the shard's streaming
   :class:`~repro.fleet.metrics.FleetMetrics` accumulator; only that
   accumulator (plus the worker-side cache hit/miss counters) crosses
   back to the parent.

Wave 2 has two execution modes.  The default **batched** mode runs
every home of a shard on one shared event kernel
(:mod:`repro.fleet.shard`); ``batch_homes=False`` falls back to one
private kernel per home.  The two are byte-identical -- the mode is a
speed knob, not a semantics knob -- and the tests cross-check them.

Both waves go through :func:`repro.evalx.parallel.run_cells`, so they
inherit its ordered-merge contract and bounded-window submission: the
fleet result is byte-identical at any ``--jobs``, and the parent
holds O(shards) futures and O(1) metrics, never O(homes) reports.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adls.library import default_registry
from repro.core.config import CoReDAConfig
from repro.evalx.parallel import Cell, WorkerPool, run_cells
from repro.fleet.home import simulate_home, train_home_policy
from repro.fleet.metrics import FleetMetrics
from repro.fleet.shard import simulate_shard
from repro.fleet.spec import FleetSpec, HomeSpec, distinct_trainings
from repro.planning.store import PolicyCache

__all__ = ["FleetResult", "run_fleet"]


@dataclass
class FleetResult:
    """One fleet run's aggregate outcome."""

    spec: FleetSpec
    metrics: FleetMetrics
    shards: int
    distinct_trainings: int

    def to_dict(self) -> dict:
        """JSON-ready; byte-equal dicts certify byte-equal fleets."""
        return {
            "adl": self.spec.adl_name,
            "homes": self.spec.homes,
            "seed": self.spec.seed,
            "episodes_per_home": self.spec.episodes_per_home,
            "seed_classes": self.spec.seed_classes,
            "shards": self.shards,
            "distinct_trainings": self.distinct_trainings,
            "metrics": self.metrics.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        header = (
            f"Fleet — {self.spec.adl_name}, seed {self.spec.seed}: "
            f"{self.spec.homes} homes in {self.shards} shards, "
            f"{self.distinct_trainings} distinct trainings"
        )
        return header + "\n\n" + self.metrics.to_text()


def _train_cell(
    adl_name: str,
    home: HomeSpec,
    config: CoReDAConfig,
    training_episodes: int,
    cache_dir: str,
) -> Tuple[int, int]:
    """Wave-1 worker: train one distinct routine into the cache."""
    definition = default_registry().get(adl_name)
    cache = PolicyCache(cache_dir)
    train_home_policy(definition, home, config, training_episodes, cache)
    return cache.stats()


def _shard_cell(
    adl_name: str,
    homes: Tuple[HomeSpec, ...],
    config: CoReDAConfig,
    episodes: int,
    training_episodes: int,
    cache_dir: str,
    batch_homes: bool,
) -> Tuple[FleetMetrics, int, int]:
    """Wave-2 worker: simulate one shard of homes.

    Returns the shard's streaming accumulator **and** the worker-side
    cache counters -- the counters are per-process, so without this
    the parent would report zero hits for every parallel run.
    """
    definition = default_registry().get(adl_name)
    cache = PolicyCache(cache_dir)
    metrics = FleetMetrics()
    if batch_homes:
        for report in simulate_shard(
            definition, homes, config, episodes, training_episodes, cache
        ):
            metrics.add_home(report)
    else:
        for home in homes:
            metrics.add_home(
                simulate_home(
                    definition, home, config, episodes, training_episodes,
                    cache,
                )
            )
    hits, misses = cache.stats()
    return metrics, hits, misses


def run_fleet(
    spec: FleetSpec,
    jobs: int = 1,
    config: Optional[CoReDAConfig] = None,
    cache_dir: Optional[str] = None,
    window: Optional[int] = None,
    batch_homes: bool = True,
) -> FleetResult:
    """Run a whole fleet; byte-identical result at any ``jobs``.

    ``cache_dir`` shares trained policies across runs (and with the
    ``repro report`` cache); without it a private cache directory is
    created for the run and removed afterwards -- policy sharing
    *within* the fleet works either way.  ``batch_homes`` selects the
    batched shard kernel (default) or the per-home reference path;
    both produce the same result byte for byte.
    """
    definition = default_registry().get(spec.adl_name)
    if config is None:
        config = CoReDAConfig(seed=spec.seed)
    homes = spec.expand(definition)
    shards = spec.shards(homes)
    representatives = distinct_trainings(homes)
    own_cache = cache_dir is None
    if own_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-fleet-cache-")
    metrics = FleetMetrics()
    try:
        with WorkerPool(jobs) as pool:
            train_cells = [
                Cell(
                    _train_cell,
                    (
                        spec.adl_name,
                        home,
                        config,
                        spec.training_episodes,
                        cache_dir,
                    ),
                    label=f"fleet.train[{index}]",
                )
                for index, home in enumerate(representatives)
            ]
            train_stats, _ = run_cells(
                train_cells, jobs=jobs, window=window, pool=pool
            )
            shard_cells = [
                Cell(
                    _shard_cell,
                    (
                        spec.adl_name,
                        shard,
                        config,
                        spec.episodes_per_home,
                        spec.training_episodes,
                        cache_dir,
                        batch_homes,
                    ),
                    label=f"fleet.shard[{index}]",
                )
                for index, shard in enumerate(shards)
            ]
            shard_results, _ = run_cells(
                shard_cells, jobs=jobs, window=window, pool=pool
            )
    finally:
        if own_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)
    for hits, misses in train_stats:
        metrics.add_cache_stats(hits, misses)
    for shard_metrics, hits, misses in shard_results:
        metrics.merge(shard_metrics)
        metrics.add_cache_stats(hits, misses)
    return FleetResult(
        spec=spec,
        metrics=metrics,
        shards=len(shards),
        distinct_trainings=len(representatives),
    )
