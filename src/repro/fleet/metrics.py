"""Streaming caregiver metrics: O(1) memory at any fleet size.

A 10k-home fleet must not materialize 10k
:class:`~repro.reporting.caregiver.CaregiverReport` objects in the
parent process.  Instead each worker folds its shard's homes into one
:class:`FleetMetrics` accumulator (counts plus Welford moment
accumulators), ships that single object back, and the parent merges
the shard accumulators in submission order.  Merging in a fixed order
matters: Welford combination is exact for counts and means but not
associative in floating point, so the shard partition and merge order
are functions of the spec alone -- never of the worker count -- which
is what keeps fleet metrics byte-identical at any ``--jobs``.
"""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["Welford", "HomeReport", "FleetMetrics"]


class Welford:
    """Streaming count/mean/sd (Welford's online algorithm).

    ``add`` is O(1) per observation; ``merge`` combines two
    accumulators with Chan's parallel update, so shard-level moments
    fold into fleet-level moments without revisiting any home.
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "Welford") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def sd(self) -> Optional[float]:
        """Sample standard deviation; ``None`` below two observations."""
        if self.count < 2:
            return None
        return math.sqrt(self.m2 / (self.count - 1))

    def as_dict(self) -> dict:
        sd = self.sd
        return {
            "count": self.count,
            "mean": round(self.mean, 9),
            "sd": None if sd is None else round(sd, 9),
        }


class HomeReport:
    """One home's simulation outcome, before it melts into the fleet.

    The per-home hot-path record: one is produced and consumed per
    home, inside the worker, and never leaves the shard.
    """

    __slots__ = (
        "home_id",
        "severity",
        "episodes",
        "completed",
        "reminders",
        "minimal_reminders",
        "specific_reminders",
        "praises",
        "caregiver_alerts",
        "errors",
        "self_recoveries",
        "reminders_seen",
        "reminders_followed",
    )

    def __init__(
        self,
        home_id: int,
        severity: float,
        episodes: int,
        completed: int,
        reminders: int,
        minimal_reminders: int,
        specific_reminders: int,
        praises: int,
        caregiver_alerts: int,
        errors: int,
        self_recoveries: int,
        reminders_seen: int,
        reminders_followed: int,
    ) -> None:
        self.home_id = home_id
        self.severity = severity
        self.episodes = episodes
        self.completed = completed
        self.reminders = reminders
        self.minimal_reminders = minimal_reminders
        self.specific_reminders = specific_reminders
        self.praises = praises
        self.caregiver_alerts = caregiver_alerts
        self.errors = errors
        self.self_recoveries = self_recoveries
        self.reminders_seen = reminders_seen
        self.reminders_followed = reminders_followed


class FleetMetrics:
    """The streaming fleet-level aggregate of many :class:`HomeReport` s.

    Also carries the worker-side :class:`~repro.planning.store.PolicyCache`
    hit/miss counters: cache stats are per-process, so every shard
    returns its own and the parent sums them here -- the parent's own
    cache object never saw the lookups.
    """

    def __init__(self) -> None:
        self.homes = 0
        self.episodes = 0
        self.completed = 0
        self.reminders = 0
        self.minimal_reminders = 0
        self.specific_reminders = 0
        self.praises = 0
        self.caregiver_alerts = 0
        self.errors = 0
        self.self_recoveries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.severity = Welford()
        self.reminders_per_episode = Welford()
        self.compliance = Welford()

    def add_home(self, report: HomeReport) -> None:
        """Fold one home in (worker side, O(1) memory)."""
        self.homes += 1
        self.episodes += report.episodes
        self.completed += report.completed
        self.reminders += report.reminders
        self.minimal_reminders += report.minimal_reminders
        self.specific_reminders += report.specific_reminders
        self.praises += report.praises
        self.caregiver_alerts += report.caregiver_alerts
        self.errors += report.errors
        self.self_recoveries += report.self_recoveries
        self.severity.add(report.severity)
        self.reminders_per_episode.add(report.reminders / report.episodes)
        if report.reminders_seen:
            self.compliance.add(
                report.reminders_followed / report.reminders_seen
            )

    def add_cache_stats(self, hits: int, misses: int) -> None:
        """Fold one worker's cache counters in (parent side)."""
        self.cache_hits += int(hits)
        self.cache_misses += int(misses)

    def merge(self, other: "FleetMetrics") -> None:
        """Fold a shard accumulator in (parent side, submission order)."""
        self.homes += other.homes
        self.episodes += other.episodes
        self.completed += other.completed
        self.reminders += other.reminders
        self.minimal_reminders += other.minimal_reminders
        self.specific_reminders += other.specific_reminders
        self.praises += other.praises
        self.caregiver_alerts += other.caregiver_alerts
        self.errors += other.errors
        self.self_recoveries += other.self_recoveries
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.severity.merge(other.severity)
        self.reminders_per_episode.merge(other.reminders_per_episode)
        self.compliance.merge(other.compliance)

    def to_dict(self) -> dict:
        """A JSON-ready summary; equal dicts mean equal fleets."""
        return {
            "homes": self.homes,
            "episodes": self.episodes,
            "completed": self.completed,
            "completion_rate": (
                round(self.completed / self.episodes, 9)
                if self.episodes
                else None
            ),
            "reminders": self.reminders,
            "minimal_reminders": self.minimal_reminders,
            "specific_reminders": self.specific_reminders,
            "praises": self.praises,
            "caregiver_alerts": self.caregiver_alerts,
            "errors": self.errors,
            "self_recoveries": self.self_recoveries,
            "severity": self.severity.as_dict(),
            "reminders_per_episode": self.reminders_per_episode.as_dict(),
            "compliance": self.compliance.as_dict(),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "trainings": self.cache_misses,
            },
        }

    def to_text(self) -> str:
        """Render the fleet summary for the care platform's console."""
        rpe = self.reminders_per_episode
        compliance = self.compliance
        lines: List[str] = [
            f"Fleet summary — {self.homes} homes, {self.episodes} episodes",
            "",
            f"  completed episodes:     {self.completed}/{self.episodes}",
            f"  reminders given:        {self.reminders} "
            f"({rpe.mean:.2f} ± {rpe.sd or 0.0:.2f} per episode per home)",
            f"    minimal / specific:   {self.minimal_reminders} / "
            f"{self.specific_reminders}",
            f"  praise given:           {self.praises}",
            f"  caregiver alerts:       {self.caregiver_alerts}",
            f"  resident errors:        {self.errors} "
            f"({self.self_recoveries} self-recovered)",
        ]
        if compliance.count:
            lines.append(
                f"  reminder compliance:    {compliance.mean:.0%} mean over "
                f"{compliance.count} homes"
            )
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            lines.append(
                f"  policy cache:           {self.cache_hits}/{lookups} hits "
                f"({self.cache_misses} trainings)"
            )
        return "\n".join(lines)
