"""Fleet specification: a cohort expanded into per-home cells.

The paper's NPO cohort is 25 residents; the dense-network assistive
systems in the related work (arXiv:1510.04240, arXiv:2207.00804)
assume thousands of homes feeding one care platform.  A
:class:`FleetSpec` scales the cohort generator up to that workload:
it expands a :func:`repro.resident.population.generate_population`
cohort into :class:`HomeSpec` cells -- one per resident-home -- each
carrying everything a worker process needs to simulate the home in
isolation.

Two seed families keep the fleet deterministic *and* shareable:

* the **home seed** drives the home's live simulation (sensor noise,
  resident errors, compliance draws).  It is SHA-256-derived from the
  fleet seed and the home index alone, so re-sharding a fleet (or
  changing ``--jobs``) never moves any home's random stream.
* the **training seed** is drawn from a small pool of
  ``seed_classes`` values.  Homes with the same (ADL, routine,
  planning config, seed class) share one
  :class:`~repro.planning.store.PolicyCache` entry, so a 10k-home
  fleet trains only its distinct routines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.adls.library import ADLDefinition
from repro.resident.population import generate_population
from repro.sim.random import RandomStreams, derive_seed

__all__ = ["HomeSpec", "FleetSpec", "distinct_trainings"]


@dataclass(frozen=True)
class HomeSpec:
    """One resident-home as a pure, picklable simulation cell.

    Deliberately scalar-only (no ADL or Routine objects): a million
    ``HomeSpec`` s must pickle cheaply to worker processes, which
    rebuild the heavy objects from the registry once per shard.
    """

    home_id: int
    adl_name: str
    routine_ids: Tuple[int, ...]
    severity: float
    age: int
    minimal_response: float
    specific_response: float
    delay_mean: float
    seed: int
    train_seed: int

    @property
    def training_key(self) -> Tuple[str, Tuple[int, ...], int]:
        """What determines this home's shared policy (config aside)."""
        return (self.adl_name, self.routine_ids, self.train_seed)


@dataclass(frozen=True)
class FleetSpec:
    """The declarative description of one fleet run."""

    adl_name: str = "tea-making"
    homes: int = 1000
    seed: int = 0
    episodes_per_home: int = 1
    training_episodes: int = 120
    seed_classes: int = 4
    shard_size: int = 25
    min_age: int = 72
    max_age: int = 91
    max_severity: float = 0.8

    def __post_init__(self) -> None:
        if self.homes <= 0:
            raise ValueError("homes must be positive")
        if self.episodes_per_home <= 0:
            raise ValueError("episodes_per_home must be positive")
        if self.training_episodes <= 0:
            raise ValueError("training_episodes must be positive")
        if self.seed_classes <= 0:
            raise ValueError("seed_classes must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")

    def home_seed(self, home_id: int) -> int:
        """The live-simulation seed of home ``home_id``.

        A function of the fleet seed and the home index only -- never
        of the shard layout or the worker count.
        """
        return derive_seed(self.seed, f"fleet.home[{home_id}]")

    def train_seed(self, home_id: int) -> int:
        """The training seed class assigned to home ``home_id``."""
        return derive_seed(
            self.seed, f"fleet.train[{home_id % self.seed_classes}]"
        )

    def expand(self, definition: ADLDefinition) -> List[HomeSpec]:
        """Expand the cohort into one :class:`HomeSpec` per home."""
        profiles = generate_population(
            definition.adl,
            self.homes,
            RandomStreams(derive_seed(self.seed, f"fleet.{self.adl_name}")),
            min_age=self.min_age,
            max_age=self.max_age,
            max_severity=self.max_severity,
        )
        return [
            HomeSpec(
                home_id=home_id,
                adl_name=self.adl_name,
                routine_ids=tuple(
                    int(step) for step in profile.routine.step_ids
                ),
                severity=profile.severity,
                age=profile.age,
                minimal_response=profile.compliance.minimal_response,
                specific_response=profile.compliance.specific_response,
                delay_mean=profile.compliance.delay_mean,
                seed=self.home_seed(home_id),
                train_seed=self.train_seed(home_id),
            )
            for home_id, profile in enumerate(profiles)
        ]

    def shards(self, homes: List[HomeSpec]) -> List[Tuple[HomeSpec, ...]]:
        """Contiguous shards of at most ``shard_size`` homes.

        The partition depends only on ``shard_size``, never on the
        worker count, so the shard-merge order (and with it every
        floating-point reduction) is identical at any ``--jobs``.
        """
        return [
            tuple(homes[start:start + self.shard_size])
            for start in range(0, len(homes), self.shard_size)
        ]


def distinct_trainings(homes: List[HomeSpec]) -> List[HomeSpec]:
    """One representative home per distinct training, in fleet order.

    The fleet executor trains these once (wave 1) so that every home
    cell afterwards (wave 2) resolves its policy with a cache hit:
    trainings scale with routine diversity, not fleet size.
    """
    seen = set()
    representatives = []
    for home in homes:
        if home.training_key not in seen:
            seen.add(home.training_key)
            representatives.append(home)
    return representatives
