"""The ADL / step / tool data model.

Terminology follows the paper exactly:

* A **tool** is a physical object with one PAVENET node attached; the
  node's ``uid`` doubles as the *ToolID*.
* An **ADL step** is identified by the *StepID*, "the ID of the tool
  which is mainly used in this step".  StepID ``0`` is reserved for
  "nothing is done for a long time" (idle).
* An **ADL** is an ordered canonical sequence of steps; a user's
  personal **routine** may order the steps differently (that is the
  whole point of learning per-user policies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import RoutineError, UnknownStepError, UnknownToolError

__all__ = [
    "IDLE_STEP_ID",
    "SensorType",
    "ReminderLevel",
    "Tool",
    "ADLStep",
    "ADL",
    "Routine",
]

#: StepID reserved by the paper for "nothing is done for a long time".
IDLE_STEP_ID = 0


class SensorType(enum.Enum):
    """Sensor modalities available on a PAVENET node (paper Table 1)."""

    ACCELEROMETER = "3-axis accelerometer"
    PRESSURE = "pressure"
    BRIGHTNESS = "brightness"
    TEMPERATURE = "temperature"
    MOTION = "motion"


class ReminderLevel(enum.Enum):
    """The two prompt intensities of the reminding subsystem.

    ``MINIMAL`` gives a short message and fewer LED blinks; the reward
    function prefers it (100 vs 50) so that users "exercise their
    brain instead of depending on the system".
    """

    MINIMAL = "minimal"
    SPECIFIC = "specific"


@dataclass(frozen=True)
class Tool:
    """A physical object instrumented with one PAVENET node.

    ``tool_id`` is the PAVENET uid and must be a positive integer
    (StepID 0 is reserved for idle).
    """

    tool_id: int
    name: str
    sensor: SensorType
    picture: str = ""

    def __post_init__(self) -> None:
        if self.tool_id <= 0:
            raise ValueError(
                f"tool_id must be positive (0 is the idle StepID); "
                f"got {self.tool_id} for {self.name!r}"
            )

    def __str__(self) -> str:
        return f"{self.name}#{self.tool_id}"


@dataclass(frozen=True)
class ADLStep:
    """One step of an ADL, bound to the tool mainly used in it.

    ``typical_duration`` / ``duration_sd`` parameterize the total
    dwell in the step (until the next tool is picked up);
    ``handling_duration`` is the portion actually spent manipulating
    the tool, i.e. the window in which the sensor sees activity.  The
    sensing evaluation shows (as in the paper's Table 3) that *short*
    handling windows are the hardest to detect.
    """

    name: str
    tool: Tool
    typical_duration: float = 8.0
    duration_sd: float = 1.5
    handling_duration: float = 4.0

    @property
    def step_id(self) -> int:
        """StepID == ToolID of the tool mainly used in this step."""
        return self.tool.tool_id

    def __str__(self) -> str:
        return f"{self.name} (step {self.step_id})"


class ADL:
    """An Activity of Daily Living: named, with an ordered canonical routine.

    The canonical step order is the population-typical way to perform
    the activity (e.g. the four tea-making steps of the paper's
    Figure 1).  Individual users may deviate; see :class:`Routine`.
    """

    def __init__(self, name: str, steps: Sequence[ADLStep]) -> None:
        if not steps:
            raise RoutineError(f"ADL {name!r} must have at least one step")
        self.name = name
        self.steps: Tuple[ADLStep, ...] = tuple(steps)
        self._by_step_id: Dict[int, ADLStep] = {}
        self._by_tool_name: Dict[str, ADLStep] = {}
        for step in self.steps:
            if step.step_id in self._by_step_id:
                raise RoutineError(
                    f"ADL {name!r}: duplicate StepID {step.step_id} "
                    f"({step.name!r} vs {self._by_step_id[step.step_id].name!r})"
                )
            self._by_step_id[step.step_id] = step
            self._by_tool_name[step.tool.name] = step

    @property
    def tools(self) -> List[Tool]:
        """Tools used by this ADL, in canonical step order."""
        return [step.tool for step in self.steps]

    @property
    def step_ids(self) -> List[int]:
        """StepIDs in canonical order."""
        return [step.step_id for step in self.steps]

    @property
    def terminal_step_id(self) -> int:
        """StepID of the final step of the canonical routine."""
        return self.steps[-1].step_id

    def step(self, step_id: int) -> ADLStep:
        """Look a step up by StepID."""
        try:
            return self._by_step_id[step_id]
        except KeyError:
            raise UnknownStepError(
                f"ADL {self.name!r} has no step with id {step_id}"
            ) from None

    def tool(self, tool_id: int) -> Tool:
        """Look a tool up by ToolID (== StepID)."""
        return self.step(tool_id).tool

    def tool_by_name(self, name: str) -> Tool:
        """Look a tool up by its human-readable name."""
        try:
            return self._by_tool_name[name].tool
        except KeyError:
            raise UnknownToolError(
                f"ADL {self.name!r} has no tool named {name!r}"
            ) from None

    def has_step(self, step_id: int) -> bool:
        """True if ``step_id`` belongs to this ADL."""
        return step_id in self._by_step_id

    def canonical_routine(self) -> "Routine":
        """The population-typical routine (canonical step order)."""
        return Routine(self, self.step_ids)

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        names = ", ".join(s.name for s in self.steps)
        return f"ADL({self.name!r}: {names})"


class Routine:
    """One user's personal way through an ADL: an ordered StepID list.

    A routine must visit steps of its ADL only, must not repeat a
    step, and must be non-empty.  (Multi-routine users are modelled as
    *sets* of Routine objects; see ``repro.planning.multi_routine``.)
    """

    def __init__(self, adl: ADL, step_ids: Iterable[int]) -> None:
        self.adl = adl
        self.step_ids: Tuple[int, ...] = tuple(step_ids)
        if not self.step_ids:
            raise RoutineError(f"routine for {adl.name!r} is empty")
        seen = set()
        for sid in self.step_ids:
            if not adl.has_step(sid):
                raise RoutineError(
                    f"routine for {adl.name!r} uses unknown StepID {sid}"
                )
            if sid in seen:
                raise RoutineError(
                    f"routine for {adl.name!r} repeats StepID {sid}"
                )
            seen.add(sid)

    @property
    def terminal_step_id(self) -> int:
        """The StepID that completes this routine."""
        return self.step_ids[-1]

    @property
    def first_step_id(self) -> int:
        """The StepID that starts this routine."""
        return self.step_ids[0]

    def next_step_id(self, step_id: int) -> Optional[int]:
        """StepID after ``step_id``, or ``None`` if terminal.

        Raises :class:`UnknownStepError` if ``step_id`` is not part of
        the routine at all.
        """
        try:
            index = self.step_ids.index(step_id)
        except ValueError:
            raise UnknownStepError(
                f"StepID {step_id} is not part of this routine "
                f"({self.step_ids})"
            ) from None
        if index + 1 >= len(self.step_ids):
            return None
        return self.step_ids[index + 1]

    def position(self, step_id: int) -> int:
        """0-based position of ``step_id`` within the routine."""
        try:
            return self.step_ids.index(step_id)
        except ValueError:
            raise UnknownStepError(
                f"StepID {step_id} is not part of this routine"
            ) from None

    def contains(self, step_id: int) -> bool:
        """True if the routine visits ``step_id``."""
        return step_id in self.step_ids

    def steps(self) -> List[ADLStep]:
        """The ADLStep objects in routine order."""
        return [self.adl.step(sid) for sid in self.step_ids]

    def __len__(self) -> int:
        return len(self.step_ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Routine):
            return NotImplemented
        return self.adl.name == other.adl.name and self.step_ids == other.step_ids

    def __hash__(self) -> int:
        return hash((self.adl.name, self.step_ids))

    def __repr__(self) -> str:
        return f"Routine({self.adl.name!r}, {list(self.step_ids)})"
