"""The CoReDA orchestrator: Figure 2's three subsystems, wired.

Typical lifecycle::

    from repro import CoReDA, CoReDAConfig
    from repro.adls import default_registry

    definition = default_registry().get("tea-making")
    system = CoReDA.build(definition, CoReDAConfig(seed=7))

    routine = definition.adl.canonical_routine()
    system.train_offline(routine, episodes=120)   # learn the routine
    system.start()                                # boot the network

    resident = system.create_resident(routine)
    outcome = system.run_episode(resident)        # live guided episode

Training is offline (from logged step sequences, like the paper's 120
samples); deployment is online (the trained policy drives prompts in
simulated real time).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.adls.library import ADLDefinition
from repro.core.adl import Routine
from repro.core.bus import EventBus
from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError
from repro.core.session import SessionLog
from repro.planning.online import OnlineAdaptation
from repro.planning.predictor import NextStepPredictor
from repro.planning.subsystem import PlanningSubsystem
from repro.planning.trainer import RoutineTrainer, TrainingResult
from repro.reminding.display import Display
from repro.reminding.led import LedController
from repro.reminding.subsystem import RemindingSubsystem
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile, ScriptedError
from repro.resident.model import EpisodeOutcome, Resident
from repro.resident.routines import training_episodes
from repro.sensing.subsystem import SensingSubsystem
from repro.sensors.network import SensorNetwork
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.tracing import TraceRecorder

__all__ = ["CoReDA"]


class CoReDA:
    """The Context-aware Reminding system for Daily Activities."""

    def __init__(
        self,
        definition: ADLDefinition,
        config: Optional[CoReDAConfig] = None,
        sim: Optional[Simulator] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        """Build a deployment for one ADL.

        ``sim`` / ``streams`` / ``trace`` may be shared across several
        systems (a :class:`~repro.core.home.CareHome` runs multiple
        ADLs in one simulated world); each system still gets its own
        event bus and sensor network, so deployments cannot cross-talk.
        """
        self.definition = definition
        self.adl = definition.adl
        self.config = config if config is not None else CoReDAConfig()
        self.sim = sim if sim is not None else Simulator(
            backend=self.config.sim.kernel_backend,
            bucket_width=self.config.sim.bucket_width,
        )
        if streams is None:
            streams = RandomStreams(self.config.seed)
        self.streams = streams.fork(f"system.{self.adl.name}")
        self.trace = trace if trace is not None else TraceRecorder()
        self.bus = EventBus()
        self.network = SensorNetwork(
            sim=self.sim,
            adl=self.adl,
            sensing_config=self.config.sensing,
            radio_config=self.config.radio,
            streams=self.streams,
            trace=self.trace,
            profiles=definition.signal_profiles,
        )
        self.sensing = SensingSubsystem(
            sim=self.sim,
            adl=self.adl,
            bus=self.bus,
            config=self.config.sensing,
            base_station=self.network.base_station,
            trace=self.trace,
        )
        self.display = Display(self.sim, bus=self.bus, trace=self.trace)
        self.leds = LedController(
            self.sim, self.network.base_station, self.config.reminding, bus=self.bus
        )
        self.session = SessionLog().attach(self.bus)
        self.training: Optional[TrainingResult] = None
        self.predictor: Optional[NextStepPredictor] = None
        self.planning: Optional[PlanningSubsystem] = None
        self.reminding: Optional[RemindingSubsystem] = None
        self.adaptation: Optional[OnlineAdaptation] = None
        self._started = False

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(
        cls,
        definition: ADLDefinition,
        config: Optional[CoReDAConfig] = None,
    ) -> "CoReDA":
        """Construct a system for one ADL deployment."""
        return cls(definition, config)

    # ------------------------------------------------------------------
    # training

    def train_offline(
        self,
        routine: Optional[Routine] = None,
        episodes: int = 120,
        episode_log: Optional[Sequence[Sequence[int]]] = None,
        criteria: Sequence[float] = (0.95, 0.98),
        require_converged: bool = True,
    ) -> TrainingResult:
        """Learn the user's routine and deploy planning + reminding.

        Either pass ``episode_log`` (recorded step sequences) or a
        ``routine`` from which ``episodes`` clean samples are
        generated, mirroring the paper's 120 training samples.
        """
        if episode_log is None:
            if routine is None:
                routine = self.adl.canonical_routine()
            episode_log = training_episodes(routine, episodes)
        trainer = RoutineTrainer(
            self.adl,
            self.config.planning,
            rng=self.streams.get(f"planning.training.{self.adl.name}"),
        )
        self.training = trainer.train(episode_log, routine=routine, criteria=criteria)
        self.predictor = NextStepPredictor.from_training(
            self.training,
            criterion=criteria[0],
            require_converged=require_converged,
        )
        self._deploy()
        return self.training

    def deploy_predictor(self, predictor: NextStepPredictor) -> None:
        """Deploy an externally trained or restored policy.

        The fleet layer trains each distinct routine once through the
        content-addressed :class:`~repro.planning.store.PolicyCache`
        and hands the restored predictor straight to the live planning
        and reminding subsystems -- many homes, one training.  Online
        adaptation stays unavailable (it needs the live learner that
        only :meth:`train_offline` keeps).
        """
        self.predictor = predictor
        self._deploy()

    def _deploy(self) -> None:
        if self.predictor is None:
            raise CoReDAError("cannot deploy before training")
        self.planning = PlanningSubsystem(
            sim=self.sim,
            adl=self.adl,
            bus=self.bus,
            predictor=self.predictor,
            stall_timeout_for=self.stall_timeout_for,
            trace=self.trace,
        )
        self.reminding = RemindingSubsystem(
            sim=self.sim,
            adl=self.adl,
            bus=self.bus,
            config=self.config.reminding,
            display=self.display,
            leds=self.leds,
            trace=self.trace,
        )

    def observe_episode(
        self, resident: Resident, horizon: float = 1800.0
    ) -> EpisodeOutcome:
        """Run one episode with sensing only (no guidance).

        The field-training flow: before any policy exists, the system
        just watches -- the resident performs the activity unaided and
        every detection lands in the usage history.  Raises
        :class:`CoReDAError` on a stuck episode, like
        :meth:`run_episode`.
        """
        self.start()
        process = resident.start_episode()
        deadline = self.sim.now + horizon
        while not process.done and self.sim.now < deadline:
            next_time = self.sim.peek()
            if next_time is None or next_time > deadline:
                break
            self.sim.step()
        if not process.done:
            raise CoReDAError(
                f"observed episode did not complete within {horizon}s"
            )
        self.sensing.reset_episode()
        if self.planning is not None:
            self.planning.reset_episode()
        assert resident.outcome is not None
        return resident.outcome

    def train_from_history(
        self,
        idle_gap: Optional[float] = None,
        repair: bool = True,
        min_episodes: int = 120,
        criteria: Sequence[float] = (0.95, 0.98),
        require_converged: bool = True,
    ) -> TrainingResult:
        """Field training: learn from the system's own usage history.

        Segments the continuous detection stream into episodes at
        idle gaps, infers the user's routine as the modal complete
        episode, optionally repairs gappy episodes against it with
        the routine HMM, replicates the training set to the paper's
        budget if fewer episodes were observed, and trains.
        """
        from repro.recognition.repair import EpisodeRepairer
        from repro.sensing.segmentation import infer_routine, segment_episodes

        if idle_gap is None:
            idle_gap = self.config.sensing.idle_timeout
        episodes = segment_episodes(self.sensing.history, idle_gap=idle_gap)
        if not episodes:
            raise CoReDAError("usage history contains no episodes yet")
        routine, support = infer_routine(self.adl, episodes)
        if repair:
            episodes = EpisodeRepairer(routine).repair_all(episodes)
        # The paper trains on 120 samples; if the home observed fewer,
        # replicate the log to give the ε schedule room to decay.
        log = list(episodes)
        while len(log) < max(min_episodes, 1):
            log.extend(episodes)
        return self.train_offline(
            routine=routine,
            episode_log=log,
            criteria=criteria,
            require_converged=require_converged,
        )

    def enable_online_adaptation(self, epsilon: float = 0.1) -> OnlineAdaptation:
        """Turn on the paper's "learning update all the while" mode.

        The deployed predictor reads the offline learner's Q-table;
        after this call every completed live episode is replayed
        through that same learner, so the system keeps tracking the
        user's *current* routine.  Returns the adaptation object (its
        ``recent_accuracy`` is the drift signal).
        """
        if self.training is None:
            raise CoReDAError("train_offline must run before online adaptation")
        self.adaptation = OnlineAdaptation(
            adl=self.adl,
            learner=self.training.learner,
            config=self.config.planning,
            rng=self.streams.get("planning.online"),
            epsilon=epsilon,
        ).attach(self.bus)
        return self.adaptation

    # ------------------------------------------------------------------
    # deployment

    def start(self) -> None:
        """Boot the sensor network (idempotent)."""
        if not self._started:
            self.network.start()
            self._started = True

    def stall_timeout_for(self, step_id: int) -> float:
        """Per-step stall timeout (paper footnote 1).

        Prefers measured dwell statistics from the usage history; if a
        step has too few observations, falls back to the ADL
        definition's duration model; the fixed configured timeout is
        the final fallback (and the only one used when
        ``statistical_timeout`` is off).
        """
        cfg = self.config.reminding
        if not cfg.statistical_timeout:
            return cfg.stall_timeout
        stats = self.sensing.history.dwell_stats().get(step_id)
        if stats is not None and stats.count >= 5:
            return max(stats.timeout(cfg.stall_sd_factor), 5.0)
        if self.adl.has_step(step_id):
            step = self.adl.step(step_id)
            return max(
                step.typical_duration + cfg.stall_sd_factor * step.duration_sd,
                5.0,
            )
        return cfg.stall_timeout

    def create_resident(
        self,
        routine: Optional[Routine] = None,
        dementia: Optional[DementiaProfile] = None,
        compliance: Optional[ComplianceModel] = None,
        error_script: Optional[Dict[int, ScriptedError]] = None,
        dwell_overrides: Optional[Dict[int, float]] = None,
        handling_overrides: Optional[Dict[int, float]] = None,
        error_use_duration: float = 3.0,
        name: str = "resident",
    ) -> Resident:
        """A resident wired to this system's network and bus."""
        if routine is None:
            routine = self.adl.canonical_routine()
        return Resident(
            sim=self.sim,
            routine=routine,
            network=self.network,
            bus=self.bus,
            rng=self.streams.get(f"resident.{name}"),
            dementia=dementia,
            compliance=compliance,
            error_script=error_script,
            dwell_overrides=dwell_overrides,
            handling_overrides=handling_overrides,
            error_use_duration=error_use_duration,
            name=name,
            trace=self.trace,
        )

    def run_episode(
        self, resident: Resident, horizon: float = 1800.0
    ) -> EpisodeOutcome:
        """Run one live guided episode to completion.

        Raises :class:`CoReDAError` if the resident has not finished
        within ``horizon`` simulated seconds (a deadlock in the
        guidance loop, which tests treat as a failure).
        """
        if self.planning is None:
            raise CoReDAError("train_offline must run before live episodes")
        self.start()
        process = resident.start_episode()
        deadline = self.sim.now + horizon
        while not process.done and self.sim.now < deadline:
            next_time = self.sim.peek()
            if next_time is None or next_time > deadline:
                break
            self.sim.step()
        if not process.done:
            raise CoReDAError(
                f"episode did not complete within {horizon}s of simulated time"
            )
        self.planning.reset_episode()
        self.sensing.reset_episode()
        assert resident.outcome is not None
        return resident.outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        trained = self.training is not None
        return f"CoReDA({self.adl.name!r}, trained={trained})"
