"""Exception hierarchy for the CoReDA reproduction.

Every error raised by the library derives from :class:`CoReDAError`,
so callers can catch one base class at API boundaries.
"""

from __future__ import annotations

__all__ = [
    "CoReDAError",
    "ConfigurationError",
    "UnknownToolError",
    "UnknownADLError",
    "UnknownStepError",
    "NotConvergedError",
    "RoutineError",
]


class CoReDAError(Exception):
    """Base class for all library errors."""


class ConfigurationError(CoReDAError):
    """An invalid or inconsistent configuration value."""


class UnknownToolError(CoReDAError, KeyError):
    """A tool id / name that is not registered for the ADL in question."""


class UnknownADLError(CoReDAError, KeyError):
    """An ADL name not present in the registry."""


class UnknownStepError(CoReDAError, KeyError):
    """A step id that does not belong to the ADL in question."""


class NotConvergedError(CoReDAError):
    """Learning did not reach the requested convergence criterion.

    Raised e.g. when a predictor is asked for guaranteed-precision
    predictions before the planning subsystem's policy converged.
    """


class RoutineError(CoReDAError):
    """A malformed routine (empty, unknown steps, no terminal step)."""
