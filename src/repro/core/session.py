"""Session logging: per-episode records of a live deployment.

Subscribes to the bus and aggregates what caregivers would care
about: completions, reminders per episode, praises, caregiver alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.bus import EventBus
from repro.core.events import (
    EpisodeCompletedEvent,
    PraiseEvent,
    ReminderEvent,
)

__all__ = ["EpisodeRecord", "SessionLog"]


@dataclass(frozen=True)
class EpisodeRecord:
    """Summary of one completed episode."""

    time: float
    adl_name: str
    steps_taken: int
    reminders_issued: int


@dataclass
class SessionLog:
    """Rolling aggregate over a deployment session."""

    episodes: List[EpisodeRecord] = field(default_factory=list)
    reminders: List[ReminderEvent] = field(default_factory=list)
    praises: int = 0

    def attach(self, bus: EventBus) -> "SessionLog":
        """Subscribe to the session's event bus; returns self."""
        bus.subscribe(EpisodeCompletedEvent, self._on_completed)
        bus.subscribe(ReminderEvent, self._on_reminder)
        bus.subscribe(PraiseEvent, self._on_praise)
        return self

    def _on_completed(self, event: EpisodeCompletedEvent) -> None:
        self.episodes.append(
            EpisodeRecord(
                time=event.time,
                adl_name=event.adl_name,
                steps_taken=event.steps_taken,
                reminders_issued=event.reminders_issued,
            )
        )

    def _on_reminder(self, event: ReminderEvent) -> None:
        self.reminders.append(event)

    def _on_praise(self, event: PraiseEvent) -> None:
        self.praises += 1

    @property
    def completions(self) -> int:
        """Episodes completed during the session."""
        return len(self.episodes)

    def reminders_per_episode(self) -> float:
        """Mean reminders per completed episode (0.0 if none)."""
        if not self.episodes:
            return 0.0
        return sum(e.reminders_issued for e in self.episodes) / len(self.episodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionLog(episodes={len(self.episodes)}, "
            f"reminders={len(self.reminders)}, praises={self.praises})"
        )
