"""Typed events exchanged between CoReDA subsystems.

Figure 2 of the paper shows three subsystems connected by streams of
tool ids, step ids and prompts.  We make each message an immutable
dataclass so the event bus stays self-describing and traceable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.adl import ReminderLevel

__all__ = [
    "TriggerReason",
    "SensorFrameEvent",
    "ToolUsageEvent",
    "StepEvent",
    "PromptRequestEvent",
    "ReminderEvent",
    "PraiseEvent",
    "LEDCommandEvent",
    "DisplayEvent",
    "EpisodeCompletedEvent",
]


class TriggerReason(enum.Enum):
    """The two reminder-trigger situations named in the paper."""

    STALL = "user did not use the expected tool for a certain moment"
    WRONG_TOOL = "user incorrectly used another tool"


@dataclass(frozen=True)
class SensorFrameEvent:
    """A radio frame from a PAVENET node reaching the base station."""

    time: float
    node_uid: int
    sequence: int


@dataclass(frozen=True)
class ToolUsageEvent:
    """The sensing subsystem decided a tool is being used."""

    time: float
    tool_id: int


@dataclass(frozen=True)
class StepEvent:
    """A change of the user's current ADL step (StepID 0 = idle)."""

    time: float
    step_id: int
    previous_step_id: int


@dataclass(frozen=True)
class PromptRequestEvent:
    """The planning subsystem asks the reminding subsystem to prompt.

    ``tool_id`` is the tool that should be used next; ``level`` the
    reminding level the learned policy selected.
    """

    time: float
    tool_id: int
    level: ReminderLevel
    reason: TriggerReason
    wrong_tool_id: Optional[int] = None


@dataclass(frozen=True)
class ReminderEvent:
    """A reminder actually delivered to the user (display + LEDs)."""

    time: float
    tool_id: int
    level: ReminderLevel
    reason: TriggerReason
    message: str
    picture: str
    wrong_tool_id: Optional[int] = None


@dataclass(frozen=True)
class PraiseEvent:
    """Praise after the user correctly followed a prompt."""

    time: float
    step_id: int
    message: str


@dataclass(frozen=True)
class LEDCommandEvent:
    """A blink command sent down to a node's LEDs."""

    time: float
    node_uid: int
    color: str
    blinks: int


@dataclass(frozen=True)
class DisplayEvent:
    """Text and/or picture shown on the care-home display."""

    time: float
    text: str
    picture: str = ""


@dataclass(frozen=True)
class EpisodeCompletedEvent:
    """The terminal step of the current ADL routine was reached."""

    time: float
    adl_name: str
    steps_taken: int
    reminders_issued: int
