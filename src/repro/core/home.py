"""A care-home deployment: several ADLs, one simulated world.

A real CoReDA installation does not guide a single activity -- the
same resident brushes their teeth, dresses and makes tea over one
day.  :class:`CareHome` composes one :class:`~repro.core.system.CoReDA`
per ADL over a *shared* simulator, random-stream family and trace, so
simulated time flows continuously across activities while each
deployment keeps its own radio network and event bus (tool uid
spaces are globally unique across the shipped ADLs, so nothing can
cross-talk even in principle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adls.library import ADLDefinition
from repro.core.config import CoReDAConfig
from repro.core.errors import CoReDAError, UnknownADLError
from repro.core.system import CoReDA
from repro.reporting.caregiver import CaregiverReport
from repro.resident.compliance import ComplianceModel
from repro.resident.dementia import DementiaProfile
from repro.resident.model import EpisodeOutcome
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.tracing import TraceRecorder

__all__ = ["ScheduledActivity", "DayResult", "CareHome"]


@dataclass(frozen=True)
class ScheduledActivity:
    """One entry of a resident's daily schedule."""

    adl_name: str
    #: Simulated clock time (seconds from day start) to begin at; the
    #: home waits if the previous activity is still running.
    start_at: float = 0.0


@dataclass
class DayResult:
    """Outcomes of one scheduled day."""

    outcomes: List[Tuple[str, EpisodeOutcome]]

    @property
    def completed(self) -> int:
        return sum(1 for _, outcome in self.outcomes if outcome.completed)

    @property
    def total_reminders(self) -> int:
        return sum(outcome.reminders_seen for _, outcome in self.outcomes)


class CareHome:
    """Multiple ADL deployments sharing one simulated world."""

    def __init__(
        self,
        definitions: Sequence[ADLDefinition],
        config: Optional[CoReDAConfig] = None,
    ) -> None:
        if not definitions:
            raise ValueError("a care home needs at least one ADL deployment")
        self.config = config if config is not None else CoReDAConfig()
        self.sim = Simulator(
            backend=self.config.sim.kernel_backend,
            bucket_width=self.config.sim.bucket_width,
        )
        self.streams = RandomStreams(self.config.seed)
        self.trace = TraceRecorder()
        self.systems: Dict[str, CoReDA] = {}
        for definition in definitions:
            self.systems[definition.adl.name] = CoReDA(
                definition,
                self.config,
                sim=self.sim,
                streams=self.streams,
                trace=self.trace,
            )

    def system(self, adl_name: str) -> CoReDA:
        """The deployment for one ADL."""
        try:
            return self.systems[adl_name]
        except KeyError:
            raise UnknownADLError(
                f"no deployment for {adl_name!r}; have {sorted(self.systems)}"
            ) from None

    def train_all(self, episodes: int = 120) -> None:
        """Learn the (canonical) routine of every deployed ADL.

        Training runs in deployment (insertion) order -- made explicit
        with ``list`` per DET003.  Order cannot leak between systems
        anyway: each forks its own stream family off the ADL name.
        """
        for system in list(self.systems.values()):
            system.train_offline(episodes=episodes)

    def run_day(
        self,
        schedule: Sequence[ScheduledActivity],
        dementia: Optional[DementiaProfile] = None,
        compliance: Optional[ComplianceModel] = None,
        horizon_per_activity: float = 3600.0,
    ) -> DayResult:
        """Run a resident through a daily schedule of activities.

        Activities run in schedule order on the shared clock; each
        starts at its ``start_at`` mark or as soon as the previous
        activity finished, whichever is later.
        """
        if any(system.training is None
               for system in list(self.systems.values())):
            raise CoReDAError("train_all must run before a scheduled day")
        outcomes: List[Tuple[str, EpisodeOutcome]] = []
        for index, activity in enumerate(sorted(schedule, key=lambda a: a.start_at)):
            system = self.system(activity.adl_name)
            if activity.start_at > self.sim.now:
                self.sim.run_until(activity.start_at)
            reliable = {
                step.step_id: max(step.handling_duration, 5.0)
                for step in system.adl.steps
            }
            resident = system.create_resident(
                dementia=dementia,
                compliance=compliance,
                handling_overrides=reliable,
                name=f"day.{index}.{activity.adl_name}",
            )
            outcome = system.run_episode(resident, horizon=horizon_per_activity)
            outcomes.append((activity.adl_name, outcome))
        return DayResult(outcomes=outcomes)

    def run_concurrently(
        self,
        adl_names: Sequence[str],
        dementia: Optional[DementiaProfile] = None,
        compliance: Optional[ComplianceModel] = None,
        horizon: float = 3600.0,
    ) -> DayResult:
        """Run one episode of each named ADL *simultaneously*.

        Models a shared home: different residents (or rooms) perform
        different activities at the same simulated time.  Each
        deployment's bus and radio are private, so guidance streams
        cannot cross-talk -- which the concurrency tests assert.
        """
        if any(system.training is None
               for system in list(self.systems.values())):
            raise CoReDAError("train_all must run before concurrent episodes")
        processes = []
        for index, adl_name in enumerate(adl_names):
            system = self.system(adl_name)
            system.start()
            reliable = {
                step.step_id: max(step.handling_duration, 5.0)
                for step in system.adl.steps
            }
            resident = system.create_resident(
                dementia=dementia,
                compliance=compliance,
                handling_overrides=reliable,
                name=f"concurrent.{index}.{adl_name}",
            )
            processes.append((adl_name, resident, resident.start_episode()))
        deadline = self.sim.now + horizon
        while any(not process.done for *_, process in processes):
            next_time = self.sim.peek()
            if next_time is None or next_time > deadline:
                break
            self.sim.step()
        outcomes: List[Tuple[str, EpisodeOutcome]] = []
        for adl_name, resident, process in processes:
            if not process.done or resident.outcome is None:
                raise CoReDAError(
                    f"concurrent episode of {adl_name!r} did not finish "
                    f"within {horizon}s"
                )
            system = self.system(adl_name)
            system.planning.reset_episode()
            system.sensing.reset_episode()
            outcomes.append((adl_name, resident.outcome))
        return DayResult(outcomes=outcomes)

    def caregiver_reports(self) -> List[CaregiverReport]:
        """One report per deployed ADL, in ADL-name order."""
        reports = []
        for name in sorted(self.systems):
            system = self.systems[name]
            alerts = (
                system.reminding.caregiver_alerts
                if system.reminding is not None
                else 0
            )
            reports.append(
                CaregiverReport.from_session(
                    system.session, system.adl, caregiver_alerts=alerts
                )
            )
        return reports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CareHome(adls={sorted(self.systems)}, t={self.sim.now:.0f}s)"
