"""A typed publish/subscribe event bus.

Subsystems communicate exclusively through the bus, mirroring the
loose coupling of the paper's Figure 2 architecture: the sensing
subsystem publishes :class:`~repro.core.events.ToolUsageEvent` and
:class:`~repro.core.events.StepEvent`, the planning subsystem consumes
steps and publishes prompt requests, the reminding subsystem consumes
prompt requests and publishes reminders / LED commands.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Type, TypeVar

__all__ = ["EventBus"]

E = TypeVar("E")


class EventBus:
    """Dispatches dataclass events to handlers registered per type.

    Exact-type dispatch only (no subclass walking): event types here
    are flat dataclasses, and exactness keeps dispatch O(1) and
    unambiguous.  Handlers registered while an event is being
    published do not receive that event.
    """

    def __init__(self) -> None:
        self._handlers: Dict[type, List[Callable[[Any], None]]] = defaultdict(list)
        self._published = 0

    def subscribe(
        self, event_type: Type[E], handler: Callable[[E], None]
    ) -> Callable[[], None]:
        """Register ``handler`` for ``event_type``; returns unsubscriber."""
        self._handlers[event_type].append(handler)

        def unsubscribe() -> None:
            try:
                self._handlers[event_type].remove(handler)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: Any) -> int:
        """Deliver ``event`` to all handlers of its exact type.

        Returns the number of handlers invoked, which tests use to
        assert wiring (a published-but-unheard event usually means a
        subsystem was not connected).
        """
        handlers = list(self._handlers.get(type(event), ()))
        for handler in handlers:
            handler(event)
        self._published += 1
        return len(handlers)

    @property
    def events_published(self) -> int:
        """Total number of publish calls (for diagnostics)."""
        return self._published

    def handler_count(self, event_type: type) -> int:
        """How many handlers are registered for ``event_type``."""
        return len(self._handlers.get(event_type, ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {t.__name__: len(h) for t, h in self._handlers.items() if h}
        return f"EventBus({kinds})"
